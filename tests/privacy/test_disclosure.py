"""Tests for disclosure risk and the background-knowledge attack (Section V-A)."""

import numpy as np
import pytest

from repro.anonymize.anonymizer import anonymize
from repro.exceptions import PrivacyModelError
from repro.knowledge.prior import kernel_prior
from repro.privacy.disclosure import (
    BackgroundKnowledgeAttack,
    count_vulnerable_tuples,
    tuple_disclosure_risks,
    worst_case_disclosure_risk,
)
from repro.privacy.measures import sensitive_distance_measure
from repro.privacy.models import BTPrivacy, DistinctLDiversity


@pytest.fixture(scope="module")
def releases(small_adult_module):
    table = small_adult_module
    bt = anonymize(table, BTPrivacy(0.3, 0.25), k=3).release
    ld = anonymize(table, DistinctLDiversity(3), k=3).release
    return table, bt, ld


@pytest.fixture(scope="module")
def small_adult_module():
    from repro.data.adult import generate_adult

    return generate_adult(1_000, seed=11)


def test_risks_cover_every_tuple(releases):
    table, bt, _ = releases
    priors = kernel_prior(table, 0.3)
    measure = sensitive_distance_measure(table)
    risks = tuple_disclosure_risks(priors, table.sensitive_codes(), bt.groups, measure)
    assert risks.shape == (table.n_rows,)
    assert np.all(risks >= -1e-12)
    assert np.all(np.isfinite(risks))


def test_bt_release_bounds_worst_case_risk(releases):
    """A (B,t)-private release holds the matched adversary below t (Definition 1)."""
    table, bt, _ = releases
    priors = kernel_prior(table, 0.3)
    measure = sensitive_distance_measure(table)
    worst = worst_case_disclosure_risk(priors, table.sensitive_codes(), bt.groups, measure)
    assert worst <= 0.25 + 1e-9


def test_l_diversity_release_exceeds_threshold(releases):
    """l-diversity does not bound the kernel adversary's gain (the paper's motivation)."""
    table, _, ld = releases
    priors = kernel_prior(table, 0.3)
    measure = sensitive_distance_measure(table)
    worst = worst_case_disclosure_risk(priors, table.sensitive_codes(), ld.groups, measure)
    assert worst > 0.25


def test_count_vulnerable_tuples_threshold_behaviour():
    risks = np.array([0.1, 0.2, 0.3, 0.4])
    assert count_vulnerable_tuples(risks, 0.25) == 2
    assert count_vulnerable_tuples(risks, 0.0) == 4
    assert count_vulnerable_tuples(risks, 1.0) == 0
    with pytest.raises(PrivacyModelError):
        count_vulnerable_tuples(risks, -0.1)


def test_attack_shapes_match_figure_1(releases):
    """The headline comparison: far fewer vulnerable tuples under (B,t)-privacy."""
    table, bt, ld = releases
    attack = BackgroundKnowledgeAttack(table, 0.3)
    bt_outcome = attack.attack(bt.groups, 0.25)
    ld_outcome = attack.attack(ld.groups, 0.25)
    assert bt_outcome.vulnerable_tuples == 0
    assert ld_outcome.vulnerable_tuples > 0.1 * table.n_rows
    assert ld_outcome.vulnerability_rate() > bt_outcome.vulnerability_rate()


def test_bt_release_wins_for_every_adversary(releases):
    """Figure 1(a)'s core claim: the (B,t)-private table has (far) fewer vulnerable
    tuples than the l-diverse table for adversaries of every knowledge level."""
    table, bt, ld = releases
    for b_prime in (0.2, 0.3, 0.4, 0.5):
        attack = BackgroundKnowledgeAttack(table, b_prime)
        bt_outcome = attack.attack(bt.groups, 0.25)
        ld_outcome = attack.attack(ld.groups, 0.25)
        assert bt_outcome.vulnerable_tuples < ld_outcome.vulnerable_tuples


def test_attack_result_fields(releases):
    table, bt, _ = releases
    outcome = BackgroundKnowledgeAttack(table, 0.4).attack(bt.groups, 0.2)
    assert outcome.adversary_b == 0.4
    assert outcome.threshold == 0.2
    assert outcome.risks.shape == (table.n_rows,)
    assert outcome.worst_case_risk == pytest.approx(outcome.risks.max())


def test_exact_method_on_small_release(small_adult_module):
    """The attack can also use exact inference when groups are small."""
    table = small_adult_module.select(np.arange(60))
    release = anonymize(table, DistinctLDiversity(2), k=2).release
    attack = BackgroundKnowledgeAttack(table, 0.3, method="exact")
    outcome = attack.attack(release.groups, 0.25)
    assert outcome.risks.shape == (table.n_rows,)


def test_vulnerability_rate_of_empty_result_is_zero():
    from repro.privacy.disclosure import AttackResult

    empty = AttackResult(
        adversary_b=0.3,
        threshold=0.2,
        risks=np.array([]),
        vulnerable_tuples=0,
        worst_case_risk=0.0,
    )
    assert empty.vulnerability_rate() == 0.0


def test_max_risk_of_empty_vector_is_zero():
    from repro.privacy.disclosure import max_risk

    assert max_risk(np.array([])) == 0.0
    assert max_risk(np.array([0.2, 0.7, 0.1])) == 0.7


def test_attack_and_worst_case_share_one_risks_path(releases):
    table, bt, _ = releases
    attack = BackgroundKnowledgeAttack(table, 0.3)
    outcome = attack.attack(bt.groups, 0.25)
    worst = worst_case_disclosure_risk(
        attack.priors, table.sensitive_codes(), bt.groups, attack.measure
    )
    assert outcome.worst_case_risk == worst
    assert outcome.vulnerability_rate() == outcome.vulnerable_tuples / table.n_rows
