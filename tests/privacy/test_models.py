"""Tests for the privacy models (k-anonymity, l-diversity, t-closeness, (B,t))."""

import numpy as np
import pytest

from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import PrivacyModelError
from repro.privacy.models import (
    BTPrivacy,
    CompositeModel,
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    ProbabilisticLDiversity,
    SkylineBTPrivacy,
    TCloseness,
)


@pytest.fixture()
def simple_table():
    schema = Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])
    return MicrodataTable.from_columns(
        schema,
        {
            "Age": [20, 21, 22, 23, 60, 61, 62, 63],
            "Sex": ["M", "M", "F", "F", "M", "M", "F", "F"],
            "Disease": ["Flu", "Flu", "Cancer", "HIV", "Flu", "Cancer", "Cancer", "HIV"],
        },
    )


def test_k_anonymity(simple_table):
    model = KAnonymity(3)
    model.prepare(simple_table)
    assert model.is_satisfied(np.arange(3))
    assert not model.is_satisfied(np.arange(2))
    assert model.describe() == "k=3"
    with pytest.raises(PrivacyModelError):
        KAnonymity(0)


def test_distinct_l_diversity(simple_table):
    model = DistinctLDiversity(3)
    model.prepare(simple_table)
    assert model.is_satisfied(np.array([1, 2, 3]))  # Flu, Cancer, HIV
    assert not model.is_satisfied(np.array([0, 1]))  # Flu, Flu
    with pytest.raises(PrivacyModelError):
        DistinctLDiversity(0)


def test_unprepared_model_raises(simple_table):
    model = DistinctLDiversity(2)
    with pytest.raises(PrivacyModelError):
        model.is_satisfied(np.arange(2))


def test_empty_group_rejected(simple_table):
    model = DistinctLDiversity(2)
    model.prepare(simple_table)
    with pytest.raises(PrivacyModelError):
        model.is_satisfied(np.array([], dtype=int))


def test_probabilistic_l_diversity(simple_table):
    model = ProbabilisticLDiversity(2)
    model.prepare(simple_table)
    # Group with 2 Flu out of 4 -> max frequency 0.5 <= 1/2.
    assert model.is_satisfied(np.array([0, 1, 2, 3]))
    # Group with 2 Flu out of 3 -> 0.66 > 0.5.
    assert not model.is_satisfied(np.array([0, 1, 2]))


def test_entropy_l_diversity(simple_table):
    model = EntropyLDiversity(3)
    model.prepare(simple_table)
    # Three equally frequent values: entropy = log 3 exactly.
    assert model.is_satisfied(np.array([1, 2, 3]))
    # Skewed group: entropy below log 3.
    assert not model.is_satisfied(np.array([0, 1, 2]))


def test_t_closeness_accepts_whole_table_and_rejects_skew(simple_table):
    model = TCloseness(0.1, use_hierarchy=False)
    model.prepare(simple_table)
    assert model.is_satisfied(np.arange(simple_table.n_rows))
    assert not model.is_satisfied(np.array([0, 1]))  # all-Flu group is far from overall


def test_t_closeness_threshold_monotonicity(simple_table):
    strict = TCloseness(0.05, use_hierarchy=False)
    loose = TCloseness(0.9, use_hierarchy=False)
    strict.prepare(simple_table)
    loose.prepare(simple_table)
    group = np.array([0, 1, 4])
    assert loose.is_satisfied(group)
    assert not strict.is_satisfied(group)


def test_t_closeness_parameter_validation():
    with pytest.raises(PrivacyModelError):
        TCloseness(-0.1)
    with pytest.raises(PrivacyModelError):
        TCloseness(1.5)


def test_t_closeness_uses_hierarchy_when_available(small_adult):
    flat = TCloseness(0.2, use_hierarchy=False)
    tree = TCloseness(0.2, use_hierarchy=True)
    flat.prepare(small_adult)
    tree.prepare(small_adult)
    group = np.arange(40)
    # Hierarchical EMD never exceeds the variational distance, so the
    # hierarchy-aware check is at least as permissive.
    assert (not flat.is_satisfied(group)) or tree.is_satisfied(group)


def test_bt_privacy_whole_table_is_safe(small_adult):
    model = BTPrivacy(0.3, 0.2)
    model.prepare(small_adult)
    assert model.is_satisfied(np.arange(small_adult.n_rows))
    assert model.group_risk(np.arange(small_adult.n_rows)) < 0.05


def test_bt_privacy_small_group_risky(small_adult):
    model = BTPrivacy(0.3, 0.05)
    model.prepare(small_adult)
    risks = [model.group_risk(np.arange(start, start + 4)) for start in range(0, 40, 4)]
    assert max(risks) > 0.05


def test_bt_privacy_group_risk_monotone_in_group_size(small_adult):
    """Splitting the table into smaller groups can only help the adversary."""
    model = BTPrivacy(0.3, 0.2)
    model.prepare(small_adult)
    whole = model.group_risk(np.arange(small_adult.n_rows))
    half = model.group_risk(np.arange(small_adult.n_rows // 2))
    tiny = model.group_risk(np.arange(5))
    assert whole <= half + 0.05
    assert half <= tiny + 0.25


def test_bt_privacy_parameter_validation():
    with pytest.raises(PrivacyModelError):
        BTPrivacy(0.3, 1.5)
    with pytest.raises(PrivacyModelError):
        BTPrivacy(0.3, 0.2, inference="quantum")


def test_bt_privacy_requires_prepare(small_adult):
    model = BTPrivacy(0.3, 0.2)
    with pytest.raises(PrivacyModelError):
        model.group_risk(np.arange(10))
    with pytest.raises(PrivacyModelError):
        model.priors


def test_bt_privacy_set_priors_reuses_estimation(small_adult, small_adult_priors):
    model = BTPrivacy(0.3, 0.2)
    model.set_priors(
        small_adult_priors, small_adult.sensitive_codes(), small_adult.sensitive_domain().size
    )
    model.prepare(small_adult)  # must not overwrite the injected priors
    assert model.priors is small_adult_priors


def test_bt_privacy_exact_inference_path(small_adult):
    model = BTPrivacy(0.3, 0.5, inference="exact")
    model.prepare(small_adult)
    assert isinstance(model.group_risk(np.arange(6)), float)


def test_bt_privacy_describe(small_adult):
    assert "b=0.3" in BTPrivacy(0.3, 0.2).describe()
    assert "t=0.2" in BTPrivacy(0.3, 0.2).describe()


def test_skyline_bt_privacy(small_adult):
    skyline = SkylineBTPrivacy([(0.3, 0.25), (0.5, 0.15)])
    skyline.prepare(small_adult)
    whole = np.arange(small_adult.n_rows)
    assert skyline.is_satisfied(whole)
    # The skyline is at least as strict as each of its points.
    single = BTPrivacy(0.3, 0.25)
    single.prepare(small_adult)
    group = np.arange(12)
    if skyline.is_satisfied(group):
        assert single.is_satisfied(group)
    assert ";" in skyline.describe()


def test_skyline_requires_points():
    with pytest.raises(PrivacyModelError):
        SkylineBTPrivacy([])


def test_composite_model(simple_table):
    composite = CompositeModel([KAnonymity(3), DistinctLDiversity(3)])
    composite.prepare(simple_table)
    assert composite.is_satisfied(np.array([1, 2, 3]))
    assert not composite.is_satisfied(np.array([2, 3]))  # diverse but too small
    assert not composite.is_satisfied(np.array([0, 1, 4]))  # big enough but not diverse
    assert "k-anonymity" in composite.describe()
    with pytest.raises(PrivacyModelError):
        CompositeModel([])


def test_bt_risk_cache_is_bounded(small_adult):
    model = BTPrivacy(0.3, 0.25)
    model.prepare(small_adult)
    model._risk_cache_limit = 5
    rng = np.random.default_rng(0)
    for _ in range(20):
        model.group_risk(np.sort(rng.choice(small_adult.n_rows, size=4, replace=False)))
    assert len(model._risk_cache) <= 5


def test_update_priors_remap_keeps_clean_memos_and_flags_dirty_rows():
    """The deletion/correction arm of BTPrivacy.update_priors: risk memos of
    groups whose members all survive clean are remapped to the new indices,
    rows whose prior or sensitive code changed come back dirty."""
    import numpy as np

    from repro.data.examples import table_i_patients
    from repro.privacy.models import BTPrivacy

    table = table_i_patients()
    model = BTPrivacy(0.3, 0.5)
    model.prepare(table)
    clean_group = np.asarray([0, 1], dtype=np.int64)
    doomed_group = np.asarray([2, 3], dtype=np.int64)
    model.group_risks([clean_group, doomed_group])
    assert model.risk_evaluations == 2

    # Pretend nothing changed for the surviving rows: identical priors and
    # codes remapped through the identity.  Every row must come back clean
    # and both memos must survive (re-checks are cache hits).
    identity = np.arange(table.n_rows, dtype=np.int64)
    dirty = model.update_priors(
        model.priors, table.sensitive_codes(), table.sensitive_domain().size,
        previous_of=identity,
    )
    assert not dirty.any()
    hits_before = model.risk_cache_hits
    model.group_risks([clean_group, doomed_group])
    assert model.risk_cache_hits == hits_before + 2

    # Delete row 2: indices shift; the clean group's memo is remapped to the
    # new index space, the group containing the deleted row is dropped.
    kept = np.asarray(
        [i for i in range(table.n_rows) if i != 2], dtype=np.int64
    )
    shrunk = table.select(kept)
    from repro.knowledge.prior import kernel_prior

    priors = kernel_prior(shrunk, 0.3)
    dirty = model.update_priors(
        priors, shrunk.sensitive_codes(), shrunk.sensitive_domain().size,
        previous_of=kept,
    )
    assert dirty.shape == (shrunk.n_rows,)
    if not dirty[clean_group].any():
        hits_before = model.risk_cache_hits
        model.group_risks([clean_group])  # rows 0, 1 keep their indices
        assert model.risk_cache_hits == hits_before + 1


def test_stream_replace_masks_for_group_local_models():
    import numpy as np

    from repro.data.examples import table_i_patients
    from repro.privacy.models import DistinctLDiversity, KAnonymity

    table = table_i_patients()
    k_model = KAnonymity(2)
    k_model.prepare(table)
    l_model = DistinctLDiversity(2)
    l_model.prepare(table)

    kept = np.arange(1, table.n_rows, dtype=np.int64)  # drop row 0
    shrunk = table.select(kept)
    assert not k_model.stream_replace(shrunk, kept).any()
    assert not l_model.stream_replace(shrunk, kept).any()

    # An in-place sensitive correction marks exactly the corrected row.
    identity = np.arange(shrunk.n_rows, dtype=np.int64)
    values = shrunk.sensitive_values().tolist()
    replacement = next(v for v in set(values) if v != values[0])
    corrected = shrunk.replace_rows([0], {
        name: [shrunk.row(0)[name]] if name != shrunk.sensitive_name else [replacement]
        for name in shrunk.schema.names
    })
    mask = l_model.stream_replace(corrected, identity)
    assert mask[0] and mask.sum() == 1
