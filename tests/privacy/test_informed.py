"""Tests for the informed adversary (instance-level background knowledge)."""

import numpy as np
import pytest

from repro.anonymize.anonymizer import anonymize
from repro.data.adult import generate_adult
from repro.exceptions import PrivacyModelError
from repro.privacy.informed import InformedAdversary
from repro.privacy.models import BTPrivacy, DistinctLDiversity


@pytest.fixture(scope="module")
def setting():
    table = generate_adult(600, seed=19)
    release = anonymize(table, DistinctLDiversity(3), k=3).release
    return table, release


def test_parameter_validation(setting):
    table, _ = setting
    with pytest.raises(PrivacyModelError):
        InformedAdversary(table, 0.3, np.array([table.n_rows + 5]))
    with pytest.raises(PrivacyModelError):
        InformedAdversary(table, 0.3, np.array([0]), method="psychic")
    with pytest.raises(PrivacyModelError):
        InformedAdversary.with_random_knowledge(table, 0.3, 1.5)


def test_known_tuples_get_point_mass_posterior(setting):
    table, release = setting
    adversary = InformedAdversary(table, 0.3, np.array([0, 5, 10]))
    posterior = adversary.posterior_for_groups(release.groups)
    codes = table.sensitive_codes()
    for index in (0, 5, 10):
        assert posterior[index, codes[index]] == pytest.approx(1.0)
    assert np.allclose(posterior.sum(axis=1), 1.0)


def test_no_knowledge_matches_plain_attack(setting):
    """With an empty known set the informed adversary is exactly Adv(B)."""
    table, release = setting
    from repro.privacy.disclosure import BackgroundKnowledgeAttack

    informed = InformedAdversary(table, 0.3, np.array([], dtype=int))
    plain = BackgroundKnowledgeAttack(table, 0.3)
    informed_outcome = informed.attack(release.groups, 0.25)
    plain_outcome = plain.attack(release.groups, 0.25)
    assert informed_outcome.vulnerable_tuples == plain_outcome.vulnerable_tuples
    assert informed_outcome.worst_case_risk == pytest.approx(plain_outcome.worst_case_risk)


def test_knowledge_of_others_increases_breaches_on_l_diversity(setting):
    """Knowing some individuals' values sharpens inference about the rest."""
    table, release = setting
    none_known = InformedAdversary.with_random_knowledge(table, 0.3, 0.0, seed=4)
    many_known = InformedAdversary.with_random_knowledge(table, 0.3, 0.3, seed=4)
    base = none_known.attack(release.groups, 0.25)
    informed = many_known.attack(release.groups, 0.25)
    # The known tuples themselves are excluded from the count, yet the extra
    # conditioning still breaches at least roughly as many *other* tuples.
    assert informed.vulnerable_tuples >= 0.5 * base.vulnerable_tuples
    assert informed.n_known == int(round(0.3 * table.n_rows))


def test_bt_release_degrades_gracefully(setting):
    """(B,t)-privacy is defined against Adv(B); instance-level knowledge may add
    some breaches but the worst-case gain stays bounded (no collapse to 1)."""
    table, _ = setting
    release = anonymize(table, BTPrivacy(0.3, 0.25), k=3).release
    adversary = InformedAdversary.with_random_knowledge(table, 0.3, 0.2, seed=8)
    outcome = adversary.attack(release.groups, 0.25)
    assert outcome.worst_case_risk <= 0.9
    assert outcome.vulnerable_tuples <= 0.2 * table.n_rows


def test_fully_informed_adversary_learns_nothing_new(setting):
    """If the adversary already knows everyone, the release discloses nothing."""
    table, release = setting
    adversary = InformedAdversary(table, 0.3, np.arange(table.n_rows))
    outcome = adversary.attack(release.groups, 0.0)
    assert outcome.vulnerable_tuples == 0
    assert outcome.worst_case_risk == 0.0


def test_groups_must_not_overlap(setting):
    table, _ = setting
    adversary = InformedAdversary(table, 0.3, np.array([1]))
    with pytest.raises(PrivacyModelError):
        adversary.posterior_for_groups([np.array([0, 1, 2]), np.array([2, 3, 4])])


def test_exact_method_small_groups(setting):
    table, _ = setting
    small = table.select(np.arange(40))
    release = anonymize(small, DistinctLDiversity(2), k=2).release
    adversary = InformedAdversary(small, 0.3, np.array([0, 1]), method="exact")
    outcome = adversary.attack(release.groups, 0.25)
    assert outcome.risks.shape == (small.n_rows,)
