"""Tests for distance measures between distributions (Section IV-B)."""

import numpy as np
import pytest

from repro.data.distance import attribute_distance_matrix
from repro.exceptions import PrivacyModelError
from repro.privacy.measures import (
    EMDDistance,
    HierarchicalEMD,
    JSDivergence,
    KLDivergence,
    SmoothedJSDivergence,
    emd_distance,
    js_divergence,
    kl_divergence,
    sensitive_distance_measure,
    smooth_distribution,
    smoothed_js_divergence,
    total_variation,
)


def test_kl_divergence_basics():
    p = np.array([0.5, 0.5])
    q = np.array([0.9, 0.1])
    assert kl_divergence(p, p) == pytest.approx(0.0)
    assert kl_divergence(p, q) > 0.0
    assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))


def test_kl_divergence_undefined_with_zero_probability():
    """The zero-probability definability failure the paper points out."""
    p = np.array([0.5, 0.5])
    q = np.array([1.0, 0.0])
    assert kl_divergence(p, q) == float("inf")


def test_js_divergence_defined_with_zero_probability():
    p = np.array([0.5, 0.5])
    q = np.array([1.0, 0.0])
    value = js_divergence(p, q)
    assert np.isfinite(value)
    assert 0.0 < value <= 1.0


def test_js_divergence_bounds_and_identity():
    p = np.array([0.2, 0.3, 0.5])
    assert js_divergence(p, p) == pytest.approx(0.0)
    opposite = np.array([1.0, 0.0]), np.array([0.0, 1.0])
    assert js_divergence(*opposite) == pytest.approx(1.0)


def test_total_variation():
    assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)
    assert total_variation(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == pytest.approx(0.0)


def test_distribution_validation():
    with pytest.raises(PrivacyModelError):
        js_divergence(np.array([0.5, 0.6]), np.array([0.5, 0.5]))
    with pytest.raises(PrivacyModelError):
        js_divergence(np.array([0.5, 0.5]), np.array([0.7, 0.3, 0.0]))
    with pytest.raises(PrivacyModelError):
        js_divergence(np.array([-0.1, 1.1]), np.array([0.5, 0.5]))


def test_ordered_emd_matches_paper_example():
    """The paper's EMD example: both pairs have distance 0.1 on an ordered 2-value domain."""
    first = emd_distance(np.array([0.01, 0.99]), np.array([0.11, 0.89]))
    second = emd_distance(np.array([0.4, 0.6]), np.array([0.5, 0.5]))
    assert first == pytest.approx(0.1)
    assert second == pytest.approx(0.1)


def test_emd_lacks_probability_scaling_but_js_has_it():
    """EMD treats the two changes alike; JS treats the small-probability change as larger."""
    small_change = (np.array([0.01, 0.99]), np.array([0.11, 0.89]))
    large_change = (np.array([0.4, 0.6]), np.array([0.5, 0.5]))
    assert emd_distance(*small_change) == pytest.approx(emd_distance(*large_change))
    assert js_divergence(*small_change) > js_divergence(*large_change)


def test_emd_with_ground_distance_matrix():
    ground = np.array([[0.0, 0.5, 1.0], [0.5, 0.0, 0.5], [1.0, 0.5, 0.0]])
    p = np.array([1.0, 0.0, 0.0])
    near = np.array([0.0, 1.0, 0.0])
    far = np.array([0.0, 0.0, 1.0])
    assert emd_distance(p, near, ground) == pytest.approx(0.5)
    assert emd_distance(p, far, ground) == pytest.approx(1.0)


def test_emd_ground_matrix_shape_check():
    with pytest.raises(PrivacyModelError):
        emd_distance(np.array([0.5, 0.5]), np.array([0.5, 0.5]), np.zeros((3, 3)))


def test_emd_single_value_domain():
    assert emd_distance(np.array([1.0]), np.array([1.0])) == 0.0


def test_smooth_distribution_spreads_mass_to_neighbours():
    ground = np.array([[0.0, 0.4, 1.0], [0.4, 0.0, 1.0], [1.0, 1.0, 0.0]])
    p = np.array([1.0, 0.0, 0.0])
    smoothed = smooth_distribution(p, ground, bandwidth=0.5)
    assert smoothed.sum() == pytest.approx(1.0)
    assert smoothed[1] > 0.0  # the semantic neighbour receives mass
    assert smoothed[2] == pytest.approx(0.0)  # the distant value does not


def test_smooth_distribution_validation():
    ground = np.zeros((2, 2))
    with pytest.raises(PrivacyModelError):
        smooth_distribution(np.array([0.5, 0.5]), np.zeros((3, 3)))
    with pytest.raises(PrivacyModelError):
        smooth_distribution(np.array([0.5, 0.5]), ground, bandwidth=0.0)


def test_smoothed_js_satisfies_semantic_awareness():
    """Desideratum 5: moving mass to a semantically close value costs less."""
    ground = np.array(
        [
            [0.0, 0.4, 1.0, 1.0],
            [0.4, 0.0, 1.0, 1.0],
            [1.0, 1.0, 0.0, 0.4],
            [1.0, 1.0, 0.4, 0.0],
        ]
    )
    p = np.array([0.7, 0.1, 0.1, 0.1])
    to_near = np.array([0.1, 0.7, 0.1, 0.1])  # mass moves to the close neighbour
    to_far = np.array([0.1, 0.1, 0.7, 0.1])  # mass moves across the hierarchy
    near_distance = smoothed_js_divergence(p, to_near, ground, bandwidth=0.5)
    far_distance = smoothed_js_divergence(p, to_far, ground, bandwidth=0.5)
    assert near_distance < far_distance
    # Plain JS cannot tell the two apart.
    assert js_divergence(p, to_near) == pytest.approx(js_divergence(p, to_far))


def test_smoothed_js_identity_and_nonnegativity():
    ground = np.array([[0.0, 0.5], [0.5, 0.0]])
    p = np.array([0.3, 0.7])
    q = np.array([0.6, 0.4])
    assert smoothed_js_divergence(p, p, ground) == pytest.approx(0.0)
    assert smoothed_js_divergence(p, q, ground) >= 0.0


def test_smoothed_js_zero_probability_definability():
    ground = np.array([[0.0, 1.0], [1.0, 0.0]])
    value = smoothed_js_divergence(np.array([0.5, 0.5]), np.array([1.0, 0.0]), ground, bandwidth=1.5)
    assert np.isfinite(value)


def test_measure_objects_match_functions():
    p = np.array([0.2, 0.8])
    q = np.array([0.7, 0.3])
    assert KLDivergence()(p, q) == pytest.approx(kl_divergence(p, q))
    assert JSDivergence()(p, q) == pytest.approx(js_divergence(p, q))
    assert EMDDistance()(p, q) == pytest.approx(emd_distance(p, q))


def test_rowwise_matches_scalar_calls():
    rng = np.random.default_rng(0)
    p = rng.dirichlet(np.ones(4), size=10)
    q = rng.dirichlet(np.ones(4), size=10)
    ground = np.abs(np.arange(4)[:, None] - np.arange(4)[None, :]) / 3.0
    for measure in (JSDivergence(), SmoothedJSDivergence(ground, bandwidth=0.6), EMDDistance(ground)):
        rowwise = measure.rowwise(p, q)
        scalar = np.array([measure(p[i], q[i]) for i in range(10)])
        assert np.allclose(rowwise, scalar, atol=1e-10)


def test_rowwise_shape_mismatch():
    with pytest.raises(PrivacyModelError):
        JSDivergence().rowwise(np.ones((2, 3)) / 3, np.ones((3, 3)) / 3)


def test_hierarchical_emd_matches_linear_program(small_adult):
    domain = small_adult.sensitive_domain()
    taxonomy = domain.attribute.taxonomy
    hierarchical = HierarchicalEMD(taxonomy, [str(v) for v in domain.values.tolist()])
    ground = attribute_distance_matrix(domain)
    rng = np.random.default_rng(4)
    for _ in range(5):
        p = rng.dirichlet(np.ones(domain.size))
        q = rng.dirichlet(np.ones(domain.size))
        assert hierarchical(p, q) == pytest.approx(emd_distance(p, q, ground), abs=1e-8)


def test_hierarchical_emd_rowwise(small_adult):
    domain = small_adult.sensitive_domain()
    taxonomy = domain.attribute.taxonomy
    hierarchical = HierarchicalEMD(taxonomy, [str(v) for v in domain.values.tolist()])
    rng = np.random.default_rng(9)
    p = rng.dirichlet(np.ones(domain.size), size=6)
    q = rng.dirichlet(np.ones(domain.size), size=6)
    rowwise = hierarchical.rowwise(p, q)
    scalar = np.array([hierarchical(p[i], q[i]) for i in range(6)])
    assert np.allclose(rowwise, scalar)


def test_hierarchical_emd_unknown_leaf(small_adult):
    taxonomy = small_adult.sensitive_domain().attribute.taxonomy
    with pytest.raises(PrivacyModelError):
        HierarchicalEMD(taxonomy, ["NotARealOccupation"])


def test_sensitive_distance_measure_builds_smoothed_js(small_adult):
    measure = sensitive_distance_measure(small_adult)
    assert isinstance(measure, SmoothedJSDivergence)
    p = np.zeros(small_adult.sensitive_domain().size)
    p[0] = 1.0
    assert measure(p, p) == pytest.approx(0.0)
