"""Hypothesis property tests for the paper's five distance-measure desiderata."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.measures import (
    JSDivergence,
    SmoothedJSDivergence,
    js_divergence,
    smoothed_js_divergence,
)

_GROUND = np.array(
    [
        [0.0, 0.5, 1.0, 1.0],
        [0.5, 0.0, 1.0, 1.0],
        [1.0, 1.0, 0.0, 0.5],
        [1.0, 1.0, 0.5, 0.0],
    ]
)


def _distributions(size=4):
    return st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=size, max_size=size
    ).map(_normalise)


def _normalise(weights):
    array = np.asarray(weights, dtype=np.float64)
    total = array.sum()
    if total <= 0.0:
        array = np.ones_like(array)
        total = array.sum()
    return array / total


@settings(max_examples=75, deadline=None)
@given(p=_distributions())
def test_identity_of_indiscernibles(p):
    """Desideratum 1: D[P, P] = 0."""
    assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
    assert smoothed_js_divergence(p, p, _GROUND, bandwidth=0.6) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=75, deadline=None)
@given(p=_distributions(), q=_distributions())
def test_non_negativity(p, q):
    """Desideratum 2: D[P, Q] >= 0, and it is always finite (desideratum 4)."""
    for value in (
        js_divergence(p, q),
        smoothed_js_divergence(p, q, _GROUND, bandwidth=0.6),
    ):
        assert np.isfinite(value)
        assert value >= -1e-12


@settings(max_examples=75, deadline=None)
@given(p=_distributions(), q=_distributions())
def test_bounded_by_one(p, q):
    """JS-based measures are bounded by 1 bit, so thresholds t in [0, 1] are meaningful."""
    assert js_divergence(p, q) <= 1.0 + 1e-9
    assert smoothed_js_divergence(p, q, _GROUND, bandwidth=0.6) <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    alpha=st.floats(min_value=0.005, max_value=0.05),
    beta=st.floats(min_value=0.3, max_value=0.45),
    gamma=st.floats(min_value=0.05, max_value=0.1),
)
def test_probability_scaling(alpha, beta, gamma):
    """Desideratum 3: a gain of gamma on a rare value counts more than on a common one."""
    rare_before = np.array([alpha, 1.0 - alpha])
    rare_after = np.array([alpha + gamma, 1.0 - alpha - gamma])
    common_before = np.array([beta, 1.0 - beta])
    common_after = np.array([beta + gamma, 1.0 - beta - gamma])
    assert js_divergence(rare_before, rare_after) > js_divergence(common_before, common_after)


@settings(max_examples=50, deadline=None)
@given(p=_distributions(), q=_distributions())
def test_rowwise_consistency(p, q):
    """The vectorised row-wise implementations agree with the scalar definitions."""
    stacked_p = np.vstack([p, q])
    stacked_q = np.vstack([q, p])
    js = JSDivergence()
    smoothed = SmoothedJSDivergence(_GROUND, bandwidth=0.6)
    assert np.allclose(
        js.rowwise(stacked_p, stacked_q), [js(p, q), js(q, p)], atol=1e-9
    )
    assert np.allclose(
        smoothed.rowwise(stacked_p, stacked_q), [smoothed(p, q), smoothed(q, p)], atol=1e-9
    )
