"""The byte-bounded version cache and the lazy disk-backed ReleaseStore.

Two layers under test:

* :class:`~repro.stream.VersionCache` in isolation - LRU eviction against a
  byte budget, hit/miss/eviction counters, the keep-the-most-recent rule;
* the lazy :class:`~repro.stream.ReleaseStore`: opening a persisted store
  decodes **no** version archive (lineage and audit deltas come from the
  JSON payloads); the first access of a version decodes it through the
  cache, repeated access is a hit, and a shared cache makes the budget
  global across stores - the fix for the serving daemon inflating a full
  npz per ``GET /streams/<s>/versions/<v>``.
"""

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.exceptions import StreamError
from repro.privacy.models import DistinctLDiversity
from repro.stream import (
    DEFAULT_VERSION_CACHE_BYTES,
    IncrementalPublisher,
    ReleaseStore,
    VersionCache,
)

SEED_ROWS = 400


def _publish_stream(tmp_path, name="s", batches=2):
    full = generate_adult(SEED_ROWS + 100 * batches, seed=13)
    publisher = IncrementalPublisher(
        full.select(np.arange(SEED_ROWS)),
        DistinctLDiversity(3),
        skyline=[(0.3, 0.3)],
        k=4,
        store_path=tmp_path / name,
    )
    publisher.publish()
    for batch in range(batches):
        start = SEED_ROWS + 100 * batch
        publisher.append(full.select(np.arange(start, start + 100)))
    return tmp_path / name


# -- the cache in isolation -----------------------------------------------------------


def test_lru_eviction_respects_the_byte_budget():
    cache = VersionCache(max_bytes=100)
    cache.put(("a",), "version-a", 40)
    cache.put(("b",), "version-b", 40)
    cache.put(("c",), "version-c", 40)  # 120 bytes: "a" must go
    assert len(cache) == 2
    assert cache.current_bytes == 80
    assert cache.get(("a",)) is None
    assert cache.get(("b",)) == "version-b"
    assert cache.get(("c",)) == "version-c"
    assert cache.evictions == 1


def test_get_refreshes_recency():
    cache = VersionCache(max_bytes=100)
    cache.put(("a",), "version-a", 40)
    cache.put(("b",), "version-b", 40)
    assert cache.get(("a",)) == "version-a"  # "a" is now the most recent
    cache.put(("c",), "version-c", 40)
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == "version-a"


def test_oversized_most_recent_entry_survives():
    cache = VersionCache(max_bytes=10)
    cache.put(("huge",), "version-huge", 1000)
    assert cache.get(("huge",)) == "version-huge"
    cache.put(("other",), "version-other", 2000)
    assert cache.get(("huge",)) is None
    assert cache.get(("other",)) == "version-other"


def test_replacing_a_key_does_not_leak_bytes():
    cache = VersionCache(max_bytes=1000)
    cache.put(("a",), "old", 300)
    cache.put(("a",), "new", 200)
    assert cache.current_bytes == 200
    assert len(cache) == 1
    assert cache.get(("a",)) == "new"


def test_stats_counters():
    cache = VersionCache(max_bytes=50)
    assert cache.get(("absent",)) is None
    cache.put(("a",), "version-a", 20)
    cache.get(("a",))
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1 and stats["bytes"] == 20
    assert stats["max_bytes"] == 50


def test_negative_budget_rejected():
    with pytest.raises(StreamError, match="non-negative"):
        VersionCache(max_bytes=-1)


def test_default_budget_is_sane():
    assert VersionCache().max_bytes == DEFAULT_VERSION_CACHE_BYTES == 256 * 1024 * 1024


# -- the lazy store -------------------------------------------------------------------


def test_opening_a_store_decodes_no_archive(tmp_path):
    store_dir = _publish_stream(tmp_path)
    cache = VersionCache()
    store = ReleaseStore(path=store_dir, schema=adult_schema(), version_cache=cache)
    assert len(store) == 3
    # Lineage and audit deltas are served from the persisted JSON payloads.
    lineage = store.lineage()
    assert [row["version"] for row in lineage] == [0, 1, 2]
    assert store.report_delta(1) is not None
    assert len(cache) == 0 and cache.misses == 0  # nothing was decoded


def test_first_access_decodes_through_the_cache(tmp_path):
    store_dir = _publish_stream(tmp_path)
    cache = VersionCache()
    store = ReleaseStore(path=store_dir, schema=adult_schema(), version_cache=cache)
    first = store[1]
    assert cache.misses == 1 and cache.hits == 0 and len(cache) == 1
    again = store[1]
    assert again is first and cache.hits == 1  # decoded once, served cached
    fresh = ReleaseStore(path=store_dir, schema=adult_schema(), version_cache=cache)
    assert fresh[1] is first  # the second store hit the shared cache
    assert cache.hits == 2 and cache.misses == 1


def test_shared_cache_budget_is_global_across_stores(tmp_path):
    first_dir = _publish_stream(tmp_path, name="a")
    second_dir = _publish_stream(tmp_path, name="b")
    cache = VersionCache(max_bytes=1)  # everything but the newest evicts
    first = ReleaseStore(path=first_dir, schema=adult_schema(), version_cache=cache)
    second = ReleaseStore(path=second_dir, schema=adult_schema(), version_cache=cache)
    list(first)
    list(second)
    assert len(cache) == 1  # one global budget, not one per store
    assert cache.evictions >= 5


def test_cache_key_tracks_file_identity(tmp_path):
    """A rebuilt store directory must never serve another run's decode."""
    import shutil

    store_dir = _publish_stream(tmp_path)
    cache = VersionCache()
    store = ReleaseStore(path=store_dir, schema=adult_schema(), version_cache=cache)
    baseline = store[0]
    misses = cache.misses
    # Rebuild the directory in place: same paths, a different run's files.
    shutil.rmtree(store_dir)
    shutil.move(str(_publish_stream(tmp_path, name="rebuilt")), str(store_dir))
    reopened = ReleaseStore(path=store_dir, schema=adult_schema(), version_cache=cache)
    fresh = reopened[0]
    assert cache.misses == misses + 1  # different file identity: decoded fresh
    assert fresh is not baseline
    assert fresh.n_rows == baseline.n_rows  # same deterministic content though


def test_lazy_lineage_matches_resident_lineage(tmp_path):
    """The payload-served lineage is byte-identical to the live publisher's."""
    import json

    full = generate_adult(SEED_ROWS + 100, seed=17)
    publisher = IncrementalPublisher(
        full.select(np.arange(SEED_ROWS)),
        DistinctLDiversity(3),
        skyline=[(0.3, 0.3)],
        k=4,
        store_path=tmp_path / "s",
    )
    publisher.publish()
    publisher.append(full.select(np.arange(SEED_ROWS, SEED_ROWS + 100)))
    reloaded = ReleaseStore(path=tmp_path / "s", schema=adult_schema())
    assert json.dumps(reloaded.lineage(), sort_keys=True) == json.dumps(
        publisher.store.lineage(), sort_keys=True
    )
    assert len(reloaded.version_cache) == 0  # still nothing decoded


def test_live_versions_stay_resident(tmp_path):
    """Versions added by a running publisher never round-trip the cache."""
    store_dir = _publish_stream(tmp_path)
    publisher = IncrementalPublisher.resume(
        store_dir, schema=adult_schema(), model=DistinctLDiversity(3)
    )
    cache = publisher.store.version_cache
    full = generate_adult(SEED_ROWS + 300, seed=13)
    version = publisher.append(full.select(np.arange(SEED_ROWS + 200, SEED_ROWS + 300)))
    misses = cache.misses
    assert publisher.store[version.version] is version
    assert publisher.store.latest() is version
    assert cache.misses == misses  # no decode for the live version
