"""The ReleaseStore exclusive lock: one writing publisher per shard.

Contracts:

* opening a disk store drops a ``store.lock`` naming the owning pid;
* a second opener from a *different live* process is refused with a
  :class:`~repro.exceptions.StreamError` naming the holder and the file;
* a lock left behind by a dead process is detected as stale and stolen;
* the same process may re-open its own store (resume paths do), and only
  the owning opener's ``close()`` releases the lock.
"""

import os

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.exceptions import StreamError
from repro.privacy.models import BTPrivacy
from repro.stream import IncrementalPublisher, ReleaseStore
from repro.stream.store import LOCK_FILE, _pid_alive


FULL = generate_adult(270, seed=5)


def _store_dir(tmp_path):
    """A populated shard, with its publisher closed (lock released)."""
    publisher = IncrementalPublisher(
        FULL.select(np.arange(200)), BTPrivacy(0.3, 0.3), k=2,
        store_path=tmp_path / "store",
    )
    publisher.publish()
    publisher.append(FULL.select(np.arange(200, 240)))
    publisher.close()
    return tmp_path / "store"


def test_open_store_holds_a_lock_naming_this_pid(tmp_path):
    publisher = IncrementalPublisher(
        FULL.select(np.arange(200)), BTPrivacy(0.3, 0.3), k=2,
        store_path=tmp_path / "store",
    )
    publisher.publish()
    lock = tmp_path / "store" / LOCK_FILE
    assert lock.exists()
    assert int(lock.read_text().strip()) == os.getpid()
    publisher.close()
    assert not lock.exists()


def test_foreign_live_holder_is_refused(tmp_path):
    store_dir = _store_dir(tmp_path)
    # Pid 1 is always alive (and never us); pretend it owns the shard.
    (store_dir / LOCK_FILE).write_text("1\n")
    with pytest.raises(StreamError) as excinfo:
        ReleaseStore(path=store_dir, schema=adult_schema())
    message = str(excinfo.value)
    assert "process 1" in message
    assert LOCK_FILE in message
    (store_dir / LOCK_FILE).unlink()


def test_stale_lock_is_stolen(tmp_path):
    store_dir = _store_dir(tmp_path)
    dead_pid = 2**22 + 1  # beyond any default pid_max
    assert not _pid_alive(dead_pid)
    (store_dir / LOCK_FILE).write_text(f"{dead_pid}\n")
    store = ReleaseStore(path=store_dir, schema=adult_schema())
    assert len(store) == 2
    assert int((store_dir / LOCK_FILE).read_text().strip()) == os.getpid()
    store.close()
    assert not (store_dir / LOCK_FILE).exists()


def test_garbage_lock_is_treated_as_stale(tmp_path):
    store_dir = _store_dir(tmp_path)
    (store_dir / LOCK_FILE).write_text("not-a-pid\n")
    store = ReleaseStore(path=store_dir, schema=adult_schema())
    assert int((store_dir / LOCK_FILE).read_text().strip()) == os.getpid()
    store.close()


def test_same_pid_reopen_is_reentrant_and_does_not_steal_the_release(tmp_path):
    store_dir = _store_dir(tmp_path)
    owner = ReleaseStore(path=store_dir, schema=adult_schema())
    # A second opener in the same process is allowed (resume paths reload
    # their own shard), but it does not own the lock...
    reader = ReleaseStore(path=store_dir, schema=adult_schema())
    assert len(reader) == len(owner) == 2
    reader.close()
    assert (store_dir / LOCK_FILE).exists()  # ... so closing it keeps the lock
    owner.close()
    assert not (store_dir / LOCK_FILE).exists()


def test_publisher_resume_respects_the_lock(tmp_path):
    store_dir = _store_dir(tmp_path)
    (store_dir / LOCK_FILE).write_text("1\n")
    with pytest.raises(StreamError, match="process 1"):
        IncrementalPublisher.resume(
            store_dir, schema=adult_schema(), model=BTPrivacy(0.3, 0.3)
        )
    (store_dir / LOCK_FILE).unlink()
    resumed = IncrementalPublisher.resume(
        store_dir, schema=adult_schema(), model=BTPrivacy(0.3, 0.3)
    )
    resumed.append(FULL.select(np.arange(240, 270)))
    resumed.close()
    assert not (store_dir / LOCK_FILE).exists()


def test_memory_stores_take_no_lock(tmp_path):
    publisher = IncrementalPublisher(FULL.select(np.arange(150)), BTPrivacy(0.3, 0.3), k=2)
    publisher.publish()
    publisher.delete(np.arange(5))
    publisher.close()  # a no-op for in-memory stores; must not raise


def test_pid_alive_probe():
    assert _pid_alive(os.getpid())
    assert _pid_alive(1)
    assert not _pid_alive(0)
    assert not _pid_alive(-4)
    assert not _pid_alive(2**22 + 1)
