"""Full-lifecycle publisher tests: deletions, in-place corrections, compaction.

The acceptance property mirrors the append-only stream tests: after every
mutation - append, delete or update - the maintained per-adversary audit
risks must equal a from-scratch skyline audit of the published release on
the current table to ``<= 1e-12``, across (B,t) and l-diversity models and
both Mondrian split strategies, and every version must be a valid release
(full row coverage, every group satisfying the requirement and ``k``).
"""

import numpy as np
import pytest

from repro.audit.engine import SkylineAuditEngine
from repro.data.adult import generate_adult
from repro.exceptions import StreamError
from repro.privacy.models import (
    BTPrivacy,
    DistinctLDiversity,
    ProbabilisticLDiversity,
)
from repro.stream import IncrementalPublisher

SEED_ROWS = 700
BATCH_ROWS = 100
SKYLINE = [(0.1, 0.3), (0.3, 0.25), (0.5, 0.25)]


def _stream_tables(seed=17, batches=2):
    full = generate_adult(SEED_ROWS + batches * BATCH_ROWS, seed=seed)
    seed_table = full.select(np.arange(SEED_ROWS))
    slices = [
        full.select(
            np.arange(SEED_ROWS + i * BATCH_ROWS, SEED_ROWS + (i + 1) * BATCH_ROWS)
        )
        for i in range(batches)
    ]
    return seed_table, slices


def _assert_exact_and_valid(publisher, version, requirement_checks):
    release = version.release
    covered = np.concatenate(release.groups)
    assert sorted(covered.tolist()) == list(range(release.table.n_rows))
    for group in release.groups:
        assert group.size > 0
        for check in requirement_checks:
            assert check(group)
    if version.report is not None:
        fresh = SkylineAuditEngine(publisher.table, SKYLINE).audit(release.groups)
        for entry, reference in zip(version.report.entries, fresh.entries):
            assert (
                float(np.abs(entry.attack.risks - reference.attack.risks).max())
                <= 1e-12
            )
            assert entry.attack.vulnerable_tuples == reference.attack.vulnerable_tuples


@pytest.mark.parametrize("split_strategy", ["widest", "round_robin"])
@pytest.mark.parametrize(
    "model_factory",
    [
        lambda: BTPrivacy(0.3, 0.25),
        lambda: DistinctLDiversity(3),
        lambda: ProbabilisticLDiversity(2.0),
    ],
    ids=["bt", "distinct-l", "probabilistic-l"],
)
def test_mixed_lifecycle_matches_full_reaudit(model_factory, split_strategy):
    """Append -> delete -> update, twice: every version audits identically to
    a from-scratch skyline audit and stays a valid release."""
    seed_table, batches = _stream_tables()
    model = model_factory()
    publisher = IncrementalPublisher(
        seed_table, model, skyline=SKYLINE, k=4, split_strategy=split_strategy
    )
    publisher.publish()
    rng = np.random.default_rng(31)
    checks = [lambda group: group.size >= 4, model.is_satisfied]
    for batch in batches:
        version = publisher.append(batch)
        _assert_exact_and_valid(publisher, version, checks)
        removed = np.sort(rng.choice(publisher.table.n_rows, size=30, replace=False))
        version = publisher.delete(removed)
        _assert_exact_and_valid(publisher, version, checks)
        positions = np.sort(rng.choice(publisher.table.n_rows, size=25, replace=False))
        donors = rng.integers(0, publisher.table.n_rows, size=25)
        replacements = [publisher.table.row(int(donor)) for donor in donors]
        version = publisher.update(positions, replacements)
        _assert_exact_and_valid(publisher, version, checks)


def test_delete_merges_up_groups_that_fall_below_k():
    """Deleting most of one released group leaves it below k: the engine must
    merge the region up (or rebuild it) rather than release the shard."""
    seed_table, _ = _stream_tables(seed=23)
    model = DistinctLDiversity(3)
    publisher = IncrementalPublisher(seed_table, model, skyline=[(0.3, 0.3)], k=4)
    version = publisher.publish()
    victim = max(version.release.groups, key=lambda group: group.size)
    removed = victim[: victim.size - 1]  # leave a single row behind
    version = publisher.delete(removed)
    for group in version.release.groups:
        assert group.size >= 4
        assert model.is_satisfied(group)
    covered = np.concatenate(version.release.groups)
    assert sorted(covered.tolist()) == list(range(publisher.table.n_rows))
    assert version.delta.rebuilt_regions >= 1


def test_delete_entire_group_prunes_the_leaf():
    seed_table, _ = _stream_tables(seed=29)
    model = DistinctLDiversity(3)
    publisher = IncrementalPublisher(seed_table, model, k=4)
    version = publisher.publish()
    victim = version.release.groups[0]
    version = publisher.delete(victim)
    covered = np.concatenate(version.release.groups)
    assert sorted(covered.tolist()) == list(range(publisher.table.n_rows))
    for group in version.release.groups:
        assert group.size >= 4 and model.is_satisfied(group)


def test_clean_groups_survive_deletions_verbatim():
    seed_table, _ = _stream_tables(seed=37)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), skyline=[(0.3, 0.3)], k=4
    )
    v0 = publisher.publish()
    removed = v0.release.groups[0][:2]
    v1 = publisher.delete(removed)
    assert v1.delta.deleted_rows == removed.size
    assert v1.delta.reused_groups > 0
    # The delta audit really skipped clean groups.
    assert all(
        recomputed < v1.n_groups for recomputed in v1.delta.audit_recomputed_groups
    )


def test_compaction_triggers_and_resets_drift():
    seed_table, batches = _stream_tables(seed=41, batches=2)
    publisher = IncrementalPublisher(
        seed_table,
        DistinctLDiversity(3),
        skyline=[(0.3, 0.3)],
        k=4,
        compact_drift=0.01,  # any deferred maintenance triggers compaction
    )
    publisher.publish()
    rng = np.random.default_rng(43)
    removed = np.sort(rng.choice(publisher.table.n_rows, size=40, replace=False))
    # The retraction itself crosses the tiny drift threshold: this version
    # publishes through a full-refine compaction and resets the drift.
    version = publisher.delete(removed)
    assert version.delta.compacted
    assert version.delta.deleted_rows == 40
    assert publisher._drift_rows == 0
    fresh = SkylineAuditEngine(publisher.table, [(0.3, 0.3)]).audit(
        version.release.groups
    )
    for entry, reference in zip(version.report.entries, fresh.entries):
        assert float(np.abs(entry.attack.risks - reference.attack.risks).max()) <= 1e-12
    # An append below the threshold stays incremental afterwards.
    version = publisher.append(batches[0])
    fresh = SkylineAuditEngine(publisher.table, [(0.3, 0.3)]).audit(
        version.release.groups
    )
    for entry, reference in zip(version.report.entries, fresh.entries):
        assert float(np.abs(entry.attack.risks - reference.attack.risks).max()) <= 1e-12


def test_compaction_disabled_with_infinite_threshold():
    seed_table, batches = _stream_tables(seed=43, batches=1)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, compact_drift=float("inf")
    )
    publisher.publish()
    rng = np.random.default_rng(47)
    for _ in range(3):
        removed = np.sort(rng.choice(publisher.table.n_rows, size=50, replace=False))
        version = publisher.delete(removed)
        assert not version.delta.compacted


def test_out_of_domain_update_triggers_full_rebuild():
    seed_table, _ = _stream_tables(seed=47)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), skyline=[(0.3, 0.3)], k=4
    )
    publisher.publish()
    replacement = dict(seed_table.row(0), Age=123.0)  # outside the observed domain
    version = publisher.update([0], [replacement])
    assert version.delta.rebuild
    assert version.delta.updated_rows == 1
    assert version.n_rows == seed_table.n_rows
    fresh = SkylineAuditEngine(publisher.table, [(0.3, 0.3)]).audit(
        version.release.groups
    )
    for entry, reference in zip(version.report.entries, fresh.entries):
        assert float(np.abs(entry.attack.risks - reference.attack.risks).max()) <= 1e-12
    # The stream keeps working incrementally after the rebuild.
    follow_up = publisher.delete([0, 1, 2])
    assert not follow_up.delta.rebuild


def test_updates_that_cross_split_boundaries_reroute():
    """Replacing rows with copies of far-away rows moves them across split
    boundaries; the release must stay consistent (no stale membership)."""
    seed_table, _ = _stream_tables(seed=53)
    model = DistinctLDiversity(3)
    publisher = IncrementalPublisher(seed_table, model, k=4)
    v0 = publisher.publish()
    source_group = v0.release.groups[0]
    target_group = v0.release.groups[-1]
    positions = source_group[:3]
    replacements = [
        publisher.table.row(int(donor)) for donor in target_group[:3]
    ]
    version = publisher.update(positions, replacements)
    covered = np.concatenate(version.release.groups)
    assert sorted(covered.tolist()) == list(range(publisher.table.n_rows))
    for group in version.release.groups:
        assert model.is_satisfied(group) and group.size >= 4


def test_lifecycle_validation_errors():
    seed_table, batches = _stream_tables(seed=59, batches=1)
    publisher = IncrementalPublisher(seed_table, DistinctLDiversity(3), k=4)
    with pytest.raises(StreamError):
        publisher.delete([0])  # not published yet
    with pytest.raises(StreamError):
        publisher.update([0], [seed_table.row(0)])
    publisher.publish()
    with pytest.raises(StreamError):
        publisher.delete([])
    with pytest.raises(StreamError):
        publisher.delete([seed_table.n_rows])
    with pytest.raises(StreamError):
        publisher.delete(np.arange(seed_table.n_rows))
    with pytest.raises(StreamError):
        publisher.update([], [])
    with pytest.raises(StreamError):
        publisher.update([0, 0], [seed_table.row(0), seed_table.row(1)])
    with pytest.raises(StreamError):
        publisher.update([0], [seed_table.row(0), seed_table.row(1)])
    with pytest.raises(StreamError):
        IncrementalPublisher(
            seed_table, DistinctLDiversity(3), k=4, compact_drift=0.0
        )


def test_delete_everything_in_steps_raises_before_empty():
    seed_table, _ = _stream_tables(seed=61)
    publisher = IncrementalPublisher(seed_table, DistinctLDiversity(3), k=4)
    publisher.publish()
    with pytest.raises(StreamError):
        publisher.delete(np.arange(publisher.table.n_rows))


def test_failed_batch_poisons_the_publisher():
    """A batch that raises mid-publication (whole table fails the
    requirement) leaves the maintained state between versions: the store
    still serves published versions, but further mutations must refuse
    loudly instead of silently publishing a wrong version."""
    from repro.exceptions import AnonymizationError

    seed_table, batches = _stream_tables(seed=67, batches=1)
    publisher = IncrementalPublisher(seed_table, DistinctLDiversity(3), k=4)
    v0 = publisher.publish()
    with pytest.raises(AnonymizationError):
        # Keep 3 rows: the whole table falls below k=4.
        publisher.delete(np.arange(3, seed_table.n_rows))
    assert publisher.latest is v0  # the store still serves the last version
    for mutate in (
        lambda: publisher.append(batches[0]),
        lambda: publisher.delete([0]),
        lambda: publisher.update([0], [seed_table.row(0)]),
    ):
        with pytest.raises(StreamError, match="inconsistent"):
            mutate()
