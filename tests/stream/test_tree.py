"""Tests for the partition tree: routing, surgery, membership."""

import numpy as np
import pytest

from repro.anonymize.mondrian import MondrianAnonymizer, MondrianLeaf
from repro.data.adult import generate_adult
from repro.exceptions import StreamError
from repro.privacy.models import KAnonymity
from repro.stream.tree import PartitionTree


@pytest.fixture()
def grown_pair():
    full = generate_adult(400, seed=5)
    return full.select(np.arange(300)), full


@pytest.fixture()
def tree(grown_pair):
    seed, _ = grown_pair
    return PartitionTree(MondrianAnonymizer(KAnonymity(8)).partition_tree(seed))


def test_leaves_partition_the_seed(tree, grown_pair):
    seed, _ = grown_pair
    covered = np.concatenate([leaf.indices for leaf in tree.leaves()])
    assert sorted(covered.tolist()) == list(range(seed.n_rows))


def test_route_respects_split_predicates(tree, grown_pair):
    _, full = grown_pair
    appended = np.arange(300, 400, dtype=np.int64)
    routed = tree.route(full, appended)
    placed = np.concatenate(list(routed.values()))
    assert sorted(placed.tolist()) == appended.tolist()
    leaves_by_id = {id(leaf): leaf for leaf in tree.leaves()}
    assert set(routed) <= set(leaves_by_id)
    # A routed row agrees with every split predicate on its root-to-leaf path.
    for leaf_id, rows in routed.items():
        node = leaves_by_id[leaf_id]
        link = tree.parent_of(node)
        while link is not None:
            parent, side = link
            values = tree._routing_values(full, parent.split.attribute)[rows]
            if side == "left":
                assert parent.split.goes_left(values).all()
            else:
                assert not parent.split.goes_left(values).any()
            node = parent
            link = tree.parent_of(node)


def test_replace_swaps_subtree(tree):
    target = tree.leaves()[0]
    replacement = MondrianLeaf(indices=target.indices, depth=target.depth)
    tree.replace(target, replacement)
    assert not tree.contains(target)
    assert tree.contains(replacement)


def test_replace_rejects_foreign_nodes(tree):
    with pytest.raises(StreamError):
        tree.replace(MondrianLeaf(indices=np.arange(3)), MondrianLeaf(indices=np.arange(3)))


def test_current_members_includes_routed_rows(tree, grown_pair):
    _, full = grown_pair
    routed = tree.route(full, np.arange(300, 400, dtype=np.int64))
    members = PartitionTree.current_members(tree.root, routed)
    assert members.tolist() == list(range(400))
