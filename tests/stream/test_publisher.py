"""Tests for the incremental publisher: equivalence, validity, lineage."""

import json

import numpy as np
import pytest

from repro.audit.engine import SkylineAuditEngine
from repro.data.adult import generate_adult
from repro.exceptions import StreamError
from repro.privacy.models import (
    BTPrivacy,
    DistinctLDiversity,
    KAnonymity,
    ProbabilisticLDiversity,
)
from repro.stream import IncrementalPublisher

SEED_ROWS = 800
BATCH_ROWS = 100
BATCHES = 3
SKYLINE = [(0.1, 0.3), (0.3, 0.25), (0.5, 0.25)]


def _stream_tables(seed=17):
    full = generate_adult(SEED_ROWS + BATCHES * BATCH_ROWS, seed=seed)
    seed_table = full.select(np.arange(SEED_ROWS))
    batches = [
        full.select(np.arange(SEED_ROWS + i * BATCH_ROWS, SEED_ROWS + (i + 1) * BATCH_ROWS))
        for i in range(BATCHES)
    ]
    return seed_table, batches


def _release_is_valid(version, requirement_checks):
    release = version.release
    covered = np.concatenate(release.groups)
    assert sorted(covered.tolist()) == list(range(release.table.n_rows))
    for group in release.groups:
        for check in requirement_checks:
            assert check(group)


@pytest.mark.parametrize("split_strategy", ["widest", "round_robin"])
@pytest.mark.parametrize(
    "model_factory",
    [
        lambda: BTPrivacy(0.3, 0.25),
        lambda: DistinctLDiversity(3),
        lambda: ProbabilisticLDiversity(2.0),
    ],
    ids=["bt", "distinct-l", "probabilistic-l"],
)
def test_incremental_stream_matches_full_reaudit(model_factory, split_strategy):
    """The equivalence property: after every batch, the incrementally
    maintained audit risks equal a from-scratch skyline audit of the same
    release on the concatenated table (<= 1e-12), for (B,t) and l-diversity
    models and both split strategies."""
    seed_table, batches = _stream_tables()
    publisher = IncrementalPublisher(
        seed_table,
        model_factory(),
        skyline=SKYLINE,
        k=4,
        split_strategy=split_strategy,
    )
    publisher.publish()
    for batch in batches:
        version = publisher.append(batch)
        fresh = SkylineAuditEngine(publisher.table, SKYLINE).audit(
            version.release.groups
        )
        for entry, reference in zip(version.report.entries, fresh.entries):
            assert (
                float(np.abs(entry.attack.risks - reference.attack.risks).max())
                <= 1e-12
            )
            assert entry.attack.vulnerable_tuples == reference.attack.vulnerable_tuples
            assert entry.attack.worst_case_risk == pytest.approx(
                reference.attack.worst_case_risk, abs=1e-12
            )


def test_every_version_is_a_valid_release():
    seed_table, batches = _stream_tables(seed=23)
    model = BTPrivacy(0.3, 0.25)
    publisher = IncrementalPublisher(seed_table, model, k=4)
    publisher.publish()
    for batch in batches:
        publisher.append(batch)
    # Every published group of the final version satisfies the requirement
    # under priors estimated from the *current* table.
    final = publisher.latest
    checks = [
        lambda group: group.size >= 4,
        lambda group: model.is_satisfied(group),
    ]
    _release_is_valid(final, checks)


def test_clean_groups_are_reused_verbatim():
    seed_table, batches = _stream_tables(seed=29)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), skyline=[(0.3, 0.3)], k=4
    )
    v0 = publisher.publish()
    v1 = publisher.append(batches[0])
    assert v1.delta.reused_groups > 0
    previous = {group.tobytes() for group in v0.release.groups}
    reused = sum(1 for group in v1.release.groups if group.tobytes() in previous)
    assert reused >= v1.delta.reused_groups
    # The delta audit really skipped clean groups.
    assert all(
        recomputed < v1.n_groups for recomputed in v1.delta.audit_recomputed_groups
    )


def test_lineage_and_report_deltas():
    seed_table, batches = _stream_tables(seed=31)
    publisher = IncrementalPublisher(
        seed_table, BTPrivacy(0.3, 0.25), skyline=SKYLINE, k=4
    )
    publisher.publish()
    for batch in batches:
        publisher.append(batch)
    store = publisher.store
    assert len(store) == BATCHES + 1
    assert [version.version for version in store] == list(range(BATCHES + 1))
    assert store.report_delta(0) is None
    delta = store.report_delta(1)
    assert delta is not None and len(delta) == len(SKYLINE)
    assert all("worst_case_risk_change" in row for row in delta)
    lineage = store.lineage()
    json.dumps(lineage)  # JSON-able end to end
    assert lineage[1]["delta"]["appended_rows"] == BATCH_ROWS
    assert "audit_delta" in lineage[1]


def test_append_requires_publish_and_publish_is_single_shot():
    seed_table, batches = _stream_tables(seed=37)
    publisher = IncrementalPublisher(seed_table, DistinctLDiversity(3), k=4)
    with pytest.raises(StreamError):
        publisher.append(batches[0])
    publisher.publish()
    with pytest.raises(StreamError):
        publisher.publish()


def test_row_dict_batches_are_accepted():
    seed_table, batches = _stream_tables(seed=41)
    publisher = IncrementalPublisher(seed_table, DistinctLDiversity(3), k=4)
    publisher.publish()
    rows = batches[0].rows()
    version = publisher.append(rows)
    assert version.n_rows == SEED_ROWS + BATCH_ROWS
    with pytest.raises(StreamError):
        publisher.append([])


def test_out_of_domain_batch_triggers_full_rebuild():
    seed_table, batches = _stream_tables(seed=43)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), skyline=[(0.3, 0.3)], k=4
    )
    publisher.publish()
    rows = batches[0].rows()
    rows[0]["Age"] = 123.0  # outside the seed's observed Age domain
    version = publisher.append(rows)
    assert version.delta.rebuild
    assert version.n_rows == SEED_ROWS + BATCH_ROWS
    fresh = SkylineAuditEngine(publisher.table, [(0.3, 0.3)]).audit(
        version.release.groups
    )
    for entry, reference in zip(version.report.entries, fresh.entries):
        assert float(np.abs(entry.attack.risks - reference.attack.risks).max()) <= 1e-12
    # The stream keeps working incrementally after the rebuild.
    follow_up = publisher.append(batches[1])
    assert not follow_up.delta.rebuild


def test_merge_up_restores_validity_when_a_leaf_breaks():
    """Appending a skewed batch concentrated on one sensitive value must force
    local merges/rebuilds, never an invalid release."""
    seed_table, batches = _stream_tables(seed=47)
    model = DistinctLDiversity(3)
    publisher = IncrementalPublisher(seed_table, model, k=4)
    publisher.publish()
    skew = [dict(row, Occupation="Armed-Forces") for row in batches[0].rows()]
    version = publisher.append(skew)
    _release_is_valid(version, [lambda g: g.size >= 4, model.is_satisfied])


def test_skyline_defaults_to_model_points():
    seed_table, _ = _stream_tables(seed=53)
    publisher = IncrementalPublisher(seed_table, BTPrivacy(0.3, 0.25), k=4)
    assert [(b.items(), t) for b, t in publisher.skyline] == [
        (
            tuple((name, 0.3) for name in seed_table.quasi_identifier_names),
            0.25,
        )
    ]
    version = publisher.publish()
    assert version.report is not None


def test_unaudited_stream_when_skyline_empty():
    seed_table, batches = _stream_tables(seed=59)
    publisher = IncrementalPublisher(seed_table, DistinctLDiversity(3), skyline=[], k=4)
    publisher.publish()
    version = publisher.append(batches[0])
    assert version.report is None
    assert version.satisfied  # unaudited versions count as satisfied
