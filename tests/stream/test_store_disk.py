"""Disk-backed ReleaseStore: round-trips, resume-equivalence, corruption.

Three contracts:

* a persisted store reloads **byte-identically** - lineage JSON, table
  columns and domains, released groups and per-adversary risk vectors;
* a publisher reconstructed mid-stream with ``IncrementalPublisher.resume``
  continues the stream with versions identical to an uninterrupted
  publisher (identical groups, risks within ``1e-12``);
* corrupt or partial store directories raise
  :class:`~repro.exceptions.StreamError` naming the offending file.
"""

import json

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.exceptions import StreamError
from repro.privacy.models import BTPrivacy, DistinctLDiversity
from repro.stream import IncrementalPublisher, ReleaseStore

SEED_ROWS = 500
SKYLINE = [(0.1, 0.3), (0.3, 0.25)]


def _tables(seed=19, extra=300):
    full = generate_adult(SEED_ROWS + extra, seed=seed)
    return full.select(np.arange(SEED_ROWS)), full


def _run_mixed_stream(publisher, full, rng_seed=99):
    """One deterministic append -> delete -> append -> update sequence."""
    rng = np.random.default_rng(rng_seed)
    versions = [publisher.append(full.select(np.arange(SEED_ROWS, SEED_ROWS + 150)))]
    removed = np.sort(rng.choice(publisher.table.n_rows, size=40, replace=False))
    versions.append(publisher.delete(removed))
    versions.append(
        publisher.append(full.select(np.arange(SEED_ROWS + 150, SEED_ROWS + 300)))
    )
    positions = np.sort(rng.choice(publisher.table.n_rows, size=25, replace=False))
    donors = rng.integers(0, publisher.table.n_rows, size=25)
    versions.append(
        publisher.update(positions, [publisher.table.row(int(d)) for d in donors])
    )
    return versions


def test_round_trip_is_byte_identical(tmp_path):
    seed_table, full = _tables()
    store_dir = tmp_path / "store"
    publisher = IncrementalPublisher(
        seed_table, BTPrivacy(0.3, 0.25), skyline=SKYLINE, k=4, store_path=store_dir
    )
    publisher.publish()
    _run_mixed_stream(publisher, full)

    reloaded = ReleaseStore(path=store_dir, schema=adult_schema())
    assert len(reloaded) == len(publisher.store) == 5
    assert json.dumps(reloaded.lineage(), sort_keys=True) == json.dumps(
        publisher.store.lineage(), sort_keys=True
    )
    for original, loaded in zip(publisher.store, reloaded):
        assert original.version == loaded.version
        assert original.release.method == loaded.release.method
        assert all(
            np.array_equal(a, b)
            for a, b in zip(original.release.groups, loaded.release.groups)
        )
        for name in seed_table.schema.names:
            assert np.array_equal(
                original.release.table.column(name), loaded.release.table.column(name)
            )
            assert np.array_equal(
                original.release.table.domain(name).values,
                loaded.release.table.domain(name).values,
            )
        assert all(
            np.array_equal(a.attack.risks, b.attack.risks)
            for a, b in zip(original.report.entries, loaded.report.entries)
        )
        assert original.delta.as_dict() == loaded.delta.as_dict()
    assert reloaded.state is not None
    assert reloaded.state["model"] == publisher.describe().split(" | ")[0]


def test_resume_then_continue_equals_uninterrupted(tmp_path):
    seed_table, full = _tables(seed=23)

    uninterrupted = IncrementalPublisher(
        seed_table,
        BTPrivacy(0.3, 0.25),
        skyline=SKYLINE,
        k=4,
        store_path=tmp_path / "a",
    )
    uninterrupted.publish()
    _run_mixed_stream(uninterrupted, full)

    # The interrupted twin: same first two mutations, then a process
    # "restart" (resume from disk), then the remaining mutations.
    interrupted = IncrementalPublisher(
        seed_table,
        BTPrivacy(0.3, 0.25),
        skyline=SKYLINE,
        k=4,
        store_path=tmp_path / "b",
    )
    interrupted.publish()
    rng = np.random.default_rng(99)
    interrupted.append(full.select(np.arange(SEED_ROWS, SEED_ROWS + 150)))
    removed = np.sort(rng.choice(interrupted.table.n_rows, size=40, replace=False))
    interrupted.delete(removed)
    del interrupted

    resumed = IncrementalPublisher.resume(
        tmp_path / "b", schema=adult_schema(), model=BTPrivacy(0.3, 0.25)
    )
    resumed.append(full.select(np.arange(SEED_ROWS + 150, SEED_ROWS + 300)))
    positions = np.sort(rng.choice(resumed.table.n_rows, size=25, replace=False))
    donors = rng.integers(0, resumed.table.n_rows, size=25)
    resumed.update(positions, [resumed.table.row(int(d)) for d in donors])

    assert len(resumed.store) == len(uninterrupted.store) == 5
    for reference, version in zip(uninterrupted.store, resumed.store):
        assert reference.n_rows == version.n_rows
        assert reference.n_groups == version.n_groups
        assert all(
            np.array_equal(a, b)
            for a, b in zip(reference.release.groups, version.release.groups)
        )
        difference = max(
            float(np.abs(a.attack.risks - b.attack.risks).max())
            for a, b in zip(reference.report.entries, version.report.entries)
        )
        assert difference <= 1e-12


def test_resume_serves_historical_versions(tmp_path):
    seed_table, full = _tables(seed=29)
    publisher = IncrementalPublisher(
        seed_table,
        DistinctLDiversity(3),
        skyline=[(0.3, 0.3)],
        k=4,
        store_path=tmp_path / "store",
    )
    publisher.publish()
    _run_mixed_stream(publisher, full)
    del publisher

    resumed = IncrementalPublisher.resume(
        tmp_path / "store", schema=adult_schema(), model=DistinctLDiversity(3)
    )
    assert [version.version for version in resumed.store] == list(range(5))
    v1 = resumed.store[1]
    assert v1.delta.appended_rows == 150
    assert v1.n_rows == SEED_ROWS + 150
    assert resumed.store.report_delta(1) is not None


def test_fresh_store_dir_requires_no_schema(tmp_path):
    store = ReleaseStore(path=tmp_path / "fresh")
    assert len(store) == 0
    assert (tmp_path / "fresh").is_dir()


def test_loading_without_schema_raises(tmp_path):
    seed_table, _ = _tables(seed=31)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    with pytest.raises(StreamError, match="requires a schema"):
        ReleaseStore(path=tmp_path / "s")


def test_corrupt_lineage_line_raises(tmp_path):
    seed_table, _ = _tables(seed=37)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    lineage = tmp_path / "s" / "lineage.jsonl"
    lineage.write_text(lineage.read_text() + "{not json\n")
    with pytest.raises(StreamError, match="not valid JSON"):
        ReleaseStore(path=tmp_path / "s", schema=adult_schema())


def test_missing_version_file_raises(tmp_path):
    seed_table, full = _tables(seed=41)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    publisher.append(full.select(np.arange(SEED_ROWS, SEED_ROWS + 100)))
    (tmp_path / "s" / "version-00001.npz").unlink()
    with pytest.raises(StreamError, match="version-00001.npz is missing"):
        ReleaseStore(path=tmp_path / "s", schema=adult_schema())


def test_lineage_gap_raises(tmp_path):
    seed_table, full = _tables(seed=43)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    publisher.append(full.select(np.arange(SEED_ROWS, SEED_ROWS + 100)))
    lineage = tmp_path / "s" / "lineage.jsonl"
    lines = lineage.read_text().splitlines()
    lineage.write_text(lines[1] + "\n")  # drop version 0: the lineage gaps
    with pytest.raises(StreamError, match="contiguous"):
        ReleaseStore(path=tmp_path / "s", schema=adult_schema())


def test_resume_refuses_model_mismatch(tmp_path):
    seed_table, _ = _tables(seed=47)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    with pytest.raises(StreamError, match="model mismatch"):
        IncrementalPublisher.resume(
            tmp_path / "s", schema=adult_schema(), model=DistinctLDiversity(4)
        )


def test_resume_requires_versions_and_state(tmp_path):
    ReleaseStore(path=tmp_path / "empty")
    with pytest.raises(StreamError, match="no versions"):
        IncrementalPublisher.resume(
            tmp_path / "empty", schema=adult_schema(), model=DistinctLDiversity(3)
        )


def test_publish_refuses_already_populated_store_dir(tmp_path):
    seed_table, _ = _tables(seed=53)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    reopened = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    with pytest.raises(StreamError, match="already published"):
        reopened.publish()


def test_corrupt_domain_array_raises_stream_error(tmp_path):
    """Decoding failures inside a version file surface as StreamError naming
    the version, not as a bare DataError.  Versions decode lazily, so the
    corruption is caught on first access, not at open."""
    seed_table, _ = _tables(seed=59)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    path = tmp_path / "s" / "version-00000.npz"
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    arrays["dom_Age"] = arrays["dom_Age"][:-2]  # truncate the Age domain
    np.savez_compressed(path, **arrays)
    store = ReleaseStore(path=tmp_path / "s", schema=adult_schema())
    with pytest.raises(StreamError, match="version 0 cannot be decoded"):
        store[0]


def test_risks_shape_mismatch_raises_stream_error(tmp_path):
    seed_table, _ = _tables(seed=61)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), skyline=[(0.3, 0.3)], k=4,
        store_path=tmp_path / "s",
    )
    publisher.publish()
    path = tmp_path / "s" / "version-00000.npz"
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    arrays["risks"] = arrays["risks"][:, :-5]  # truncate the risk vectors
    np.savez_compressed(path, **arrays)
    store = ReleaseStore(path=tmp_path / "s", schema=adult_schema())
    with pytest.raises(StreamError, match="risks"):
        store.latest()


def test_resume_refuses_mid_persist_interrupted_store(tmp_path):
    """A crash between the lineage append and the state.json replace leaves
    the two files one version apart; resuming from the stale tree must
    refuse instead of publishing wrong groups."""
    seed_table, full = _tables(seed=67)
    publisher = IncrementalPublisher(
        seed_table, DistinctLDiversity(3), k=4, store_path=tmp_path / "s"
    )
    publisher.publish()
    stale_state = (tmp_path / "s" / "state.json").read_text()
    publisher.append(full.select(np.arange(SEED_ROWS, SEED_ROWS + 150)))
    # Simulate the crash window: v1 is in the lineage, state.json is v0's.
    (tmp_path / "s" / "state.json").write_text(stale_state)
    with pytest.raises(StreamError, match="interrupted mid-persist"):
        IncrementalPublisher.resume(
            tmp_path / "s", schema=adult_schema(), model=DistinctLDiversity(3)
        )


def test_legacy_compressed_archives_still_decode(tmp_path):
    """Stores written before the mappable int32-codes layout (compressed
    ``col_<name>`` raw-value members) reload with identical content."""
    seed_table, full = _tables(seed=71)
    publisher = IncrementalPublisher(
        seed_table, BTPrivacy(0.3, 0.25), skyline=SKYLINE, k=4,
        store_path=tmp_path / "s",
    )
    publisher.publish()
    publisher.append(full.select(np.arange(SEED_ROWS, SEED_ROWS + 150)))
    originals = list(publisher.store)

    # Rewrite every version archive in the legacy layout.
    for version in originals:
        table = version.release.table
        arrays = {}
        for attribute in table.schema:
            name = attribute.name
            column = table.column(name)
            arrays[f"col_{name}"] = (
                np.asarray(column, dtype=np.float64)
                if attribute.is_numeric
                else np.asarray(column, dtype=np.str_)
            )
            domain = table.domain(name)
            arrays[f"dom_{name}"] = (
                domain.values.astype(np.float64)
                if attribute.is_numeric
                else np.asarray(domain.values, dtype=np.str_)
            )
        arrays["groups"] = np.concatenate(version.release.groups).astype(np.int64)
        arrays["group_sizes"] = np.asarray(
            [len(group) for group in version.release.groups], dtype=np.int64
        )
        if version.report is not None:
            arrays["risks"] = np.stack(
                [entry.attack.risks for entry in version.report.entries]
            )
        np.savez_compressed(tmp_path / "s" / f"version-{version.version:05d}.npz", **arrays)

    reloaded = ReleaseStore(path=tmp_path / "s", schema=adult_schema())
    for original, loaded in zip(originals, reloaded):
        assert original.version == loaded.version
        assert all(
            np.array_equal(a, b)
            for a, b in zip(original.release.groups, loaded.release.groups)
        )
        for name in seed_table.schema.names:
            assert np.array_equal(
                original.release.table.column(name), loaded.release.table.column(name)
            )
        assert all(
            np.array_equal(a.attack.risks, b.attack.risks)
            for a, b in zip(original.report.entries, loaded.report.entries)
        )
