"""Tracing through the publisher: identical output on/off, real span trees."""

import numpy as np

from repro.data.adult import generate_adult
from repro.obs.tracing import Tracer
from repro.privacy.models import BTPrivacy
from repro.stream import IncrementalPublisher

SEED_ROWS = 260
BATCH_ROWS = 30
FULL = generate_adult(SEED_ROWS + 2 * BATCH_ROWS, seed=11)
SEED_TABLE = FULL.select(np.arange(SEED_ROWS))
BATCHES = [
    FULL.select(np.arange(SEED_ROWS, SEED_ROWS + BATCH_ROWS)),
    FULL.select(np.arange(SEED_ROWS + BATCH_ROWS, SEED_ROWS + 2 * BATCH_ROWS)),
]


def _publisher(tracer):
    return IncrementalPublisher(
        SEED_TABLE,
        BTPrivacy(0.3, 0.25),
        skyline=[(0.1, 0.3), (0.3, 0.25)],
        k=2,
        max_cells=20000,
        tracer=tracer,
    )


def _run_lifecycle(publisher):
    publisher.publish()
    publisher.append(BATCHES[0])
    publisher.delete([0, 7, 19])
    publisher.update(np.arange(4), BATCHES[1].select(np.arange(4)))
    return publisher


def _canonical(payload):
    """Lineage JSON minus wall-clock values (timing keys kept, values not)."""
    if isinstance(payload, dict):
        return {
            key: ("<time>" if key.endswith("_seconds") else _canonical(value))
            for key, value in payload.items()
        }
    if isinstance(payload, list):
        return [_canonical(value) for value in payload]
    if isinstance(payload, float):
        return float(f"{payload:.12g}")
    return payload


def test_disabled_tracer_changes_nothing_but_retains_nothing():
    """The no-op guarantee: a publisher with tracing off produces the same
    releases and the same lineage documents - including every
    ``StreamDelta.timings`` key - as one with tracing on; only the clock
    values differ.  And the disabled run retains no span tree at all."""
    traced = _run_lifecycle(_publisher(Tracer(enabled=True)))
    silent = _run_lifecycle(_publisher(Tracer(enabled=False)))

    assert len(traced.store) == len(silent.store) == 4
    for ours, theirs in zip(traced.store, silent.store):
        assert all(
            np.array_equal(a, b)
            for a, b in zip(ours.release.groups, theirs.release.groups)
        )
        assert ours.delta.timings.keys() == theirs.delta.timings.keys()
    assert _canonical(traced.store.lineage()) == _canonical(silent.store.lineage())

    assert silent.tracer.take_root() is None
    assert traced.tracer.take_root() is not None


def test_publish_spans_form_one_tree_per_version():
    """Each publication leaves one ``publish.<kind>`` root on the tracer,
    with the stage spans (the ones behind ``StreamDelta.timings``) nested
    under it."""
    tracer = Tracer()
    publisher = _publisher(tracer)

    publisher.publish()
    seed_root = tracer.take_root()
    assert seed_root.name == "publish.full"
    assert seed_root.children, "the seed publish records its stages"
    assert all(span.duration_s >= 0.0 for span in seed_root.walk())

    version = publisher.append(BATCHES[0])
    append_root = tracer.take_root()
    assert append_root.name == "publish.append"
    stage_names = {child.name for child in append_root.children}
    assert stage_names, "the append publish records its stages"
    # The delta's published timings and the span tree describe the same
    # stages: every span duration is bounded by the root's.
    assert version.delta.timings["total_seconds"] >= 0.0
    assert all(
        child.duration_s <= append_root.duration_s + 1e-9
        for child in append_root.children
    )

    publisher.delete([0, 1, 2])
    assert tracer.take_root().name == "publish.delete"


def test_publisher_defaults_to_an_enabled_tracer():
    publisher = _publisher(None)
    assert publisher.tracer.enabled
    publisher.publish()
    assert publisher.tracer.take_root().name == "publish.full"
