"""The span tracer: nesting, no-op discipline, serialization, threads."""

import json
import threading

from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    new_trace_id,
)


def test_spans_nest_into_a_tree_with_attributes():
    tracer = Tracer()
    with tracer.span("publish", stream="census") as root:
        with tracer.span("prior"):
            pass
        with tracer.span("partition") as partition:
            partition.annotate(splits=3)
            with tracer.span("audit"):
                pass
    taken = tracer.take_root()
    assert taken is root
    assert root.attributes == {"stream": "census"}
    assert [child.name for child in root.children] == ["prior", "partition"]
    assert root.child("partition").attributes == {"splits": 3}
    assert [span.name for span in root.walk()] == [
        "publish", "prior", "partition", "audit",
    ]
    assert root.find("audit").name == "audit"
    assert root.find("absent") is None
    assert root.duration_s >= root.child("partition").duration_s >= 0.0


def test_take_root_pops_once():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    assert tracer.take_root().name == "a"
    assert tracer.take_root() is None


def test_current_reports_the_innermost_open_span():
    tracer = Tracer()
    assert tracer.current() is None
    with tracer.span("outer"):
        with tracer.span("inner"):
            assert tracer.current().name == "inner"
        assert tracer.current().name == "outer"
    assert tracer.current() is None


def test_disabled_span_is_the_shared_null_context():
    """``span()`` on a disabled tracer allocates nothing: every call hands
    back the one module-level null context, and nothing is ever retained."""
    tracer = Tracer(enabled=False)
    first = tracer.span("a", big=list(range(10)))
    second = tracer.span("b")
    assert first is second is NULL_TRACER.span("c")
    with first as span:
        span.annotate(ignored=True)
        assert span.attributes == {}
    assert tracer.take_root() is None
    assert tracer.current() is None


def test_timed_measures_even_when_disabled():
    """``timed()`` spans back the publisher's ``StreamDelta.timings``: they
    must measure a real duration in both modes, but only an enabled tracer
    retains them in a tree."""
    enabled, disabled = Tracer(enabled=True), Tracer(enabled=False)
    for tracer in (enabled, disabled):
        with tracer.timed("total", rows=5) as span:
            pass
        assert span.name == "total"
        assert span.attributes == {"rows": 5}
        assert span.duration_s > 0.0
    assert enabled.take_root().name == "total"
    assert disabled.take_root() is None


def test_json_round_trip_preserves_the_tree_with_root_relative_offsets():
    tracer = Tracer()
    with tracer.span("publish", stream="census"):
        with tracer.span("prior"):
            pass
        with tracer.span("partition", splits=2):
            pass
    root = tracer.take_root()
    payload = root.to_dict()
    # Serialized offsets are root-relative: the root starts at zero and every
    # child starts within the root's duration, regardless of the absolute
    # monotonic-clock values the spans were recorded against.
    assert payload["start_s"] == 0.0
    for child in payload["children"]:
        assert 0.0 <= child["start_s"] <= payload["duration_s"] + 1e-9

    restored = Span.from_json(root.to_json())
    assert restored.to_dict() == payload
    assert json.loads(root.to_json()) == payload
    assert [span.name for span in restored.walk()] == [
        span.name for span in root.walk()
    ]
    assert restored.child("partition").attributes == {"splits": 2}


def test_adopt_stitches_a_foreign_tree():
    """The pool parent stitches a deserialized worker trace under its own
    tick span - exactly ``Span.adopt`` on a ``Span.from_dict`` result."""
    worker = Tracer()
    with worker.span("publish.append", rows=30):
        with worker.span("prior"):
            pass
    shipped = worker.take_root().to_dict()  # what crosses the job pipe

    parent = Tracer()
    with parent.timed("serve.publish_tick", stream="census") as tick:
        tick.adopt(Span.from_dict(shipped))
    root = parent.take_root()
    assert [child.name for child in root.children] == ["publish.append"]
    assert root.find("prior") is not None


def test_threads_trace_through_one_tracer_without_interleaving():
    tracer = Tracer()
    roots = {}

    def work(name):
        with tracer.span(f"outer-{name}"):
            with tracer.span(f"inner-{name}"):
                pass
        roots[name] = tracer.take_root()

    threads = [threading.Thread(target=work, args=(str(i),)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert set(roots) == {"0", "1", "2", "3"}
    for name, root in roots.items():
        assert root.name == f"outer-{name}"
        assert [child.name for child in root.children] == [f"inner-{name}"]


def test_ambient_tracer_activation_is_scoped_and_per_thread():
    assert current_tracer() is NULL_TRACER
    tracer = Tracer()
    seen = {}
    with tracer.activate():
        assert current_tracer() is tracer

        def probe():
            seen["other-thread"] = current_tracer()

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        nested = Tracer()
        with nested.activate():
            assert current_tracer() is nested
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER
    # Activation is thread-local: another thread still sees the null tracer.
    assert seen["other-thread"] is NULL_TRACER


def test_new_trace_ids_are_unique_32_hex():
    ids = {new_trace_id() for _ in range(64)}
    assert len(ids) == 64
    for value in ids:
        assert len(value) == 32
        int(value, 16)
