"""Structured logging: JSON-lines records, extras, reconfiguration."""

import io
import json
import logging

import pytest

from repro.obs.log import JsonFormatter, TextFormatter, configure


@pytest.fixture
def fresh_logger():
    """A private logger namespace per test, torn down afterwards."""
    name = "repro-obs-test"
    yield name
    logger = logging.getLogger(name)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)


def test_json_records_carry_extras_as_top_level_fields(fresh_logger):
    sink = io.StringIO()
    logger = configure(
        level="debug", log_format="json", logger_name=fresh_logger, stream=sink
    )
    logger.warning(
        "slow publish",
        extra={"trace_id": "a" * 32, "stream": "census", "publish_seconds": 7.25},
    )
    record = json.loads(sink.getvalue())
    assert record["level"] == "WARNING"
    assert record["logger"] == fresh_logger
    assert record["message"] == "slow publish"
    assert record["trace_id"] == "a" * 32
    assert record["stream"] == "census"
    assert record["publish_seconds"] == 7.25
    assert record["ts"].endswith("+00:00")
    # One JSON object per line, keys sorted - a collector can diff records.
    assert sink.getvalue().count("\n") == 1
    assert list(record) == sorted(record)


def test_json_formatter_falls_back_to_repr_for_unserializable_extras():
    formatter = JsonFormatter()
    record = logging.LogRecord("repro", logging.INFO, __file__, 1, "msg", (), None)
    record.payload = {1, 2}  # a set is not JSON-able
    parsed = json.loads(formatter.format(record))
    assert parsed["payload"] == repr({1, 2})


def test_text_format_appends_extras_as_key_value_pairs(fresh_logger):
    sink = io.StringIO()
    logger = configure(
        level="info", log_format="text", logger_name=fresh_logger, stream=sink
    )
    logger.info("request handled", extra={"trace_id": "beef", "status": 200})
    line = sink.getvalue().strip()
    assert "request handled" in line
    assert "trace_id=beef" in line and "status=200" in line


def test_level_filters_and_reconfigure_replaces_the_handler(fresh_logger):
    first, second = io.StringIO(), io.StringIO()
    logger = configure(
        level="warning", log_format="json", logger_name=fresh_logger, stream=first
    )
    logger.info("dropped")
    logger.warning("kept")
    assert "dropped" not in first.getvalue() and "kept" in first.getvalue()

    # Reconfiguring (e.g. an in-process daemon restart) must not stack a
    # second handler: each record lands exactly once, on the new stream.
    logger = configure(
        level="debug", log_format="json", logger_name=fresh_logger, stream=second
    )
    assert len([h for h in logger.handlers if getattr(h, "_repro_obs", False)]) == 1
    logger.debug("after reconfigure")
    assert second.getvalue().count("after reconfigure") == 1
    assert "after reconfigure" not in first.getvalue()


def test_configure_rejects_unknown_level_and_format(fresh_logger):
    with pytest.raises(ValueError, match="unknown log format"):
        configure(log_format="xml", logger_name=fresh_logger)
    with pytest.raises(ValueError, match="unknown log level"):
        configure(level="loud", logger_name=fresh_logger)


def test_text_formatter_without_extras_is_a_plain_line():
    formatter = TextFormatter()
    record = logging.LogRecord("repro", logging.INFO, __file__, 1, "plain", (), None)
    line = formatter.format(record)
    assert line.endswith("INFO repro: plain")
