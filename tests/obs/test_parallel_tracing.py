"""Tracing correctness under the parallel contraction.

Tile spans opened on pool threads must nest under the *owning* backend
contraction span - never become their own roots, and never leak into a
concurrently tracing sibling's tree - and the serial (``jobs=1``) trace
shape must stay exactly what it was before threading existed.
"""

import threading

import numpy as np

from repro.data.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.data.table import MicrodataTable
from repro.knowledge.prior import BatchedKernelPriorEstimator
from repro.obs.tracing import Span, Tracer

JOBS = 4


def _table(n=400, seed=3):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Attribute("A", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER),
            Attribute("B", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("C", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("S", AttributeKind.CATEGORICAL, AttributeRole.SENSITIVE),
        ]
    )
    columns = {
        "A": rng.integers(0, 12, n).astype(float),
        "B": rng.choice(list("xyz"), n),
        "C": rng.choice(list("pq"), n),
        "S": rng.choice(["flu", "cold", "hiv", "ok"], n),
    }
    return MicrodataTable(schema, columns)


def _traced_estimation(table, jobs, bandwidth=0.3):
    tracer = Tracer()
    estimator = BatchedKernelPriorEstimator(jobs=jobs).fit(table)
    with tracer.activate(), tracer.timed("run"):
        estimator.prior_for_table([bandwidth])
    root = tracer.take_root()
    assert root is not None
    return root


def _contract_span(root: Span) -> Span:
    contract = root.find("backend.contract")
    assert contract is not None
    return contract


def test_threaded_tile_spans_nest_under_their_contract_span():
    root = _traced_estimation(_table(), JOBS)
    contract = _contract_span(root)
    assert int(contract.attributes["threads"]) >= 1
    tiles = [span for span in root.walk() if span.name == "backend.tile"]
    assert tiles  # the threaded dispatch path actually ran
    nested = [span for span in contract.walk() if span.name == "backend.tile"]
    assert tiles == nested  # every tile descends from the contraction span
    # Disjoint tiles cover every unique query exactly once.
    covered = sum(int(span.attributes["queries"]) for span in tiles)
    assert covered == int(contract.attributes["queries"])


def test_serial_trace_emits_no_tile_spans():
    root = _traced_estimation(_table(), 1)
    contract = _contract_span(root)
    assert int(contract.attributes["threads"]) == 1
    assert all(span.name != "backend.tile" for span in root.walk())


def test_concurrent_traced_estimations_do_not_interleave():
    """Two threads trace two estimations concurrently; each tree must hold
    exactly its own tiles (a span adopted by the wrong parent would break
    one tree's disjoint-cover accounting)."""
    tables = {"small": _table(n=300, seed=5), "large": _table(n=600, seed=7)}
    roots: dict[str, Span] = {}
    errors: list[BaseException] = []

    def run(name: str) -> None:
        try:
            for _ in range(3):
                roots[name] = _traced_estimation(tables[name], JOBS)
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=run, args=(name,)) for name in tables]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for name, root in roots.items():
        contract = _contract_span(root)
        tiles = [span for span in root.walk() if span.name == "backend.tile"]
        covered = sum(int(span.attributes["queries"]) for span in tiles)
        assert covered == int(contract.attributes["queries"])
        # The two tables have different unique-query counts, so a foreign
        # tile would also break the per-tree total.
        backend = BatchedKernelPriorEstimator(jobs=1).fit(tables[name]).backend
        assert int(contract.attributes["queries"]) == int(backend._pair_keys.size)


def test_attach_is_removed_on_exit_and_null_safe():
    tracer = Tracer()
    with tracer.activate(), tracer.timed("outer") as outer:
        parent = tracer.current()
        with tracer.attach(parent):
            with tracer.span("inner"):
                pass
        # The borrowed parent was removed without being re-appended.
        assert tracer.current() is parent
    root = tracer.take_root()
    assert root is outer
    assert [span.name for span in root.children] == ["inner"]
    # Attaching None (or attaching on a disabled tracer) is a no-op.
    with tracer.attach(None):
        assert tracer.current() is None
    disabled = Tracer(enabled=False)
    with disabled.attach(parent):
        pass
