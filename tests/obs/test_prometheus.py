"""The Prometheus renderer: format contract, mapping, label escaping."""

from repro.obs.prometheus import CONTENT_TYPE, render

#: A representative /metrics JSON snapshot (the renderer's only input).
PAYLOAD = {
    "server": {
        "uptime_seconds": 12.5,
        "counters": {"requests": 9, "writes": 4, "errors": 1},
        "read_seconds": {
            "count": 5, "mean": 0.01, "p50": 0.008, "p95": 0.02, "p99": 0.03,
            "min": 0.004, "max": 0.031,
        },
        "publication_pool": {"workers": 2, "restarts": 1},
    },
    "streams": {
        "census": {
            "versions": 4, "rows": 290, "groups": 31, "satisfied": True,
            "drift_rows": 12, "queue_depth": 0, "queue_depth_rows": 0,
            "queue_high_water": 1, "queue_high_water_rows": 40,
            "max_queue_batches": 64, "max_queued_rows": 100000,
            "poisoned": None,
            "counters": {"publishes": 3, "failed_batches": 0},
            "publish_seconds": {
                "count": 3, "mean": 2.0, "p50": 1.9, "p95": 2.4, "p99": 2.5,
                "min": 1.7, "max": 2.6,
            },
        },
    },
}


def _parse(text):
    """Validate the 0.0.4 exposition line by line; return samples + types."""
    assert text.endswith("\n")
    typed = {}
    helped = set()
    samples = []
    for line in text.splitlines():
        assert line, "the renderer never emits blank lines"
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            typed[name] = kind
            continue
        assert not line.startswith("#"), line
        name_part, _, value_part = line.rpartition(" ")
        name = name_part.split("{", 1)[0]
        samples.append((name, name_part, float(value_part)))
    assert set(typed) == helped, "every family has both HELP and TYPE"
    for name, _, _ in samples:
        family = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
        assert family in typed, f"sample {name!r} was never announced"
        assert name.startswith("repro_"), name
    return samples, typed


def test_render_is_a_valid_exposition_with_all_three_namespaces():
    samples, typed = _parse(render(PAYLOAD))
    names = {name for name, _, _ in samples}
    assert "repro_server_requests_total" in names
    assert "repro_pool_workers" in names
    assert "repro_stream_versions" in names
    assert typed["repro_server_requests_total"] == "counter"
    assert typed["repro_pool_workers"] == "gauge"
    assert typed["repro_server_read_seconds"] == "summary"
    assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")


def test_summaries_expose_quantiles_count_and_mean_derived_sum():
    samples, _ = _parse(render(PAYLOAD))
    by_line = {line: value for _, line, value in samples}
    assert by_line['repro_stream_publish_seconds{quantile="0.5",stream="census"}'] == 1.9
    assert by_line['repro_stream_publish_seconds{quantile="0.99",stream="census"}'] == 2.5
    assert by_line['repro_stream_publish_seconds_count{stream="census"}'] == 3
    # _sum is reconstructed from the snapshot's mean * count.
    assert abs(by_line['repro_stream_publish_seconds_sum{stream="census"}'] - 6.0) < 1e-9
    assert by_line['repro_stream_publish_seconds_min{stream="census"}'] == 1.7
    assert by_line['repro_stream_publish_seconds_max{stream="census"}'] == 2.6


def test_stream_gauges_cover_state_and_poisoned_maps_to_flag():
    text = render(PAYLOAD)
    assert 'repro_stream_satisfied{stream="census"} 1' in text
    assert 'repro_stream_poisoned{stream="census"} 0' in text

    poisoned = {
        "server": PAYLOAD["server"],
        "streams": {
            "census": {**PAYLOAD["streams"]["census"], "poisoned": "worker died"},
        },
    }
    assert 'repro_stream_poisoned{stream="census"} 1' in render(poisoned)


def test_label_values_are_escaped():
    payload = {
        "server": {"counters": {}},
        "streams": {'we"ird\\name\n': {"versions": 1, "counters": {}}},
    }
    text = render(payload)
    assert 'repro_stream_versions{stream="we\\"ird\\\\name\\n"} 1' in text
    _parse(text)  # still a well-formed exposition


def test_empty_payload_renders_no_samples_but_stays_well_formed():
    samples, _ = _parse(render({"server": {"uptime_seconds": 0.0}, "streams": {}}))
    assert [name for name, _, _ in samples] == ["repro_server_uptime_seconds"]


def test_sections_absent_from_the_snapshot_are_omitted():
    # Thread-mode daemons have no publication pool; streams may predate
    # their first histogram sample.  Neither may invent zero families.
    text = render(
        {
            "server": {"uptime_seconds": 1.0, "counters": {"requests": 1}},
            "streams": {"census": {"versions": 1, "counters": {}}},
        }
    )
    assert "repro_pool_" not in text
    assert "publish_seconds" not in text
