"""Tests for the paper's worked-example tables (Table I, II, III)."""

import numpy as np
import pytest

from repro.data.examples import (
    patient_schema,
    table_i_groups,
    table_i_patients,
    table_ii_prior,
    table_ii_sensitive_counts,
    table_iii_prior,
)


def test_table_i_has_nine_patients():
    table = table_i_patients()
    assert table.n_rows == 9
    assert table.sensitive_name == "Disease"
    assert table.quasi_identifier_names == ("Age", "Sex")


def test_table_i_first_row_is_bob():
    table = table_i_patients()
    row = table.row(0)
    assert row["Age"] == 69
    assert row["Sex"] == "M"
    assert row["Disease"] == "Emphysema"


def test_table_i_groups_partition_the_table():
    groups = table_i_groups()
    table = table_i_patients()
    covered = np.concatenate(groups)
    assert sorted(covered.tolist()) == list(range(table.n_rows))
    assert all(len(group) == 3 for group in groups)


def test_table_i_groups_are_3_diverse():
    table = table_i_patients()
    diseases = table.sensitive_values()
    for group in table_i_groups():
        assert len(set(diseases[group])) == 3


def test_patient_schema_disease_hierarchy():
    schema = patient_schema()
    taxonomy = schema["Disease"].taxonomy
    assert taxonomy is not None
    assert set(taxonomy.leaves) == {"Emphysema", "Flu", "Gastritis", "Cancer"}


def test_table_ii_prior_rows_sum_to_one():
    prior = table_ii_prior()
    assert prior.shape == (3, 2)
    assert np.allclose(prior.sum(axis=1), 1.0)
    assert prior[2, 0] == pytest.approx(0.3)


def test_table_ii_counts():
    counts = table_ii_sensitive_counts()
    assert counts.tolist() == [1, 2]
    assert counts.sum() == 3


def test_table_iii_prior_excludes_hiv_for_first_two():
    prior = table_iii_prior()
    assert prior[0, 0] == 0.0
    assert prior[1, 0] == 0.0
    assert np.allclose(prior.sum(axis=1), 1.0)
