"""Tests for repro.data.hierarchy (taxonomy trees)."""

import pytest

from repro.data.hierarchy import Taxonomy
from repro.exceptions import HierarchyError


@pytest.fixture()
def occupation_like():
    return Taxonomy.from_spec(
        "ANY",
        {
            "White-collar": ["Clerical", "Managerial", "Sales"],
            "Blue-collar": ["Craft", "Farming"],
            "Military": ["Armed-Forces"],
        },
    )


def test_flat_taxonomy_height_one():
    taxonomy = Taxonomy.flat("ANY", ["a", "b", "c"])
    assert taxonomy.height == 1
    assert set(taxonomy.leaves) == {"a", "b", "c"}
    assert taxonomy.root == "ANY"


def test_two_level_taxonomy_height(occupation_like):
    assert occupation_like.height == 2
    assert len(occupation_like.leaves) == 6


def test_duplicate_label_rejected():
    with pytest.raises(HierarchyError):
        Taxonomy.from_spec("ANY", {"A": ["x"], "B": ["x"]})


def test_empty_taxonomy_rejected():
    with pytest.raises(HierarchyError):
        Taxonomy.from_spec("ANY", {})


def test_membership_and_is_leaf(occupation_like):
    assert "Clerical" in occupation_like
    assert "White-collar" in occupation_like
    assert "Nonexistent" not in occupation_like
    assert occupation_like.is_leaf("Clerical")
    assert not occupation_like.is_leaf("White-collar")


def test_parent_and_children(occupation_like):
    assert occupation_like.parent("Clerical") == "White-collar"
    assert occupation_like.parent("ANY") is None
    assert set(occupation_like.children("Blue-collar")) == {"Craft", "Farming"}
    assert occupation_like.children("Craft") == ()


def test_node_height(occupation_like):
    assert occupation_like.node_height("ANY") == 2
    assert occupation_like.node_height("White-collar") == 1
    assert occupation_like.node_height("Clerical") == 0


def test_leaves_under(occupation_like):
    assert set(occupation_like.leaves_under("White-collar")) == {
        "Clerical",
        "Managerial",
        "Sales",
    }
    assert occupation_like.leaves_under("Craft") == ("Craft",)
    assert len(occupation_like.leaves_under("ANY")) == 6


def test_ancestors(occupation_like):
    assert occupation_like.ancestors("Clerical") == ("White-collar", "ANY")
    assert occupation_like.ancestors("ANY") == ()


def test_lowest_common_ancestor(occupation_like):
    assert occupation_like.lowest_common_ancestor(["Clerical", "Sales"]) == "White-collar"
    assert occupation_like.lowest_common_ancestor(["Clerical", "Craft"]) == "ANY"
    assert occupation_like.lowest_common_ancestor(["Clerical"]) == "Clerical"
    # A generalized (internal) value can participate too.
    assert occupation_like.lowest_common_ancestor(["Clerical", "White-collar"]) == "White-collar"


def test_lca_requires_values(occupation_like):
    with pytest.raises(HierarchyError):
        occupation_like.lowest_common_ancestor([])


def test_unknown_value_raises(occupation_like):
    with pytest.raises(HierarchyError):
        occupation_like.distance("Clerical", "Nonexistent")


def test_distance_same_value_is_zero(occupation_like):
    assert occupation_like.distance("Clerical", "Clerical") == 0.0


def test_distance_siblings_and_cousins(occupation_like):
    # Siblings share a parent at height 1 of a height-2 hierarchy.
    assert occupation_like.distance("Clerical", "Sales") == pytest.approx(0.5)
    # Values under different top-level groups only meet at the root.
    assert occupation_like.distance("Clerical", "Craft") == pytest.approx(1.0)


def test_distance_is_symmetric(occupation_like):
    leaves = occupation_like.leaves
    for first in leaves:
        for second in leaves:
            assert occupation_like.distance(first, second) == pytest.approx(
                occupation_like.distance(second, first)
            )


def test_generalize_returns_lca(occupation_like):
    assert occupation_like.generalize(["Clerical", "Managerial"]) == "White-collar"
    assert occupation_like.generalize(["Clerical", "Armed-Forces"]) == "ANY"
