"""TableSource ingestion: round-trips, chunk alignment, open_table dispatch.

The load-bearing contract: every source implementation encodes the same file
to **identical** integer codes against **identical** full-table domains - an
in-memory wrap, a streamed CSV and a memory-mapped npz of one table are
interchangeable, chunk by chunk and materialised.  That code agreement is
what lets the streaming prior fit match the resident fit bitwise.
"""

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.data.io import open_table, write_csv
from repro.data.source import (
    DEFAULT_CHUNK_ROWS,
    CsvTableSource,
    InMemoryTableSource,
    NpzTableSource,
    TableSource,
    as_source,
    as_table,
    write_npz,
)
from repro.exceptions import DataError

ROWS = 400


@pytest.fixture(scope="module")
def table():
    return generate_adult(ROWS, seed=7)


def _codes_of(source):
    materialised = source.table()
    return {name: materialised.codes(name) for name in source.schema.names}


@pytest.fixture()
def all_sources(tmp_path, table):
    csv_path = tmp_path / "adult.csv"
    npz_path = tmp_path / "adult.npz"
    write_csv(table, csv_path)
    write_npz(npz_path, table)
    return {
        "memory": InMemoryTableSource(table),
        "csv": CsvTableSource(csv_path, adult_schema()),
        "npz": NpzTableSource(npz_path, adult_schema()),
    }


def test_every_source_is_a_table_source(all_sources):
    for source in all_sources.values():
        assert isinstance(source, TableSource)
        assert source.n_rows == ROWS
        assert tuple(source.schema.names) == tuple(adult_schema().names)


def test_round_trip_codes_and_domains_identical(all_sources):
    """CSV <-> npz <-> in-memory: one table, three sources, identical encoding."""
    reference = _codes_of(all_sources["memory"])
    reference_domains = all_sources["memory"].domains()
    for kind, source in all_sources.items():
        domains = source.domains()
        for name in source.schema.names:
            assert np.array_equal(
                domains[name].values, reference_domains[name].values
            ), f"{kind}: domain of {name} diverged"
        codes = _codes_of(source)
        for name in source.schema.names:
            assert np.array_equal(codes[name], reference[name]), (
                f"{kind}: codes of {name} diverged"
            )


def test_chunks_share_full_table_domains(all_sources):
    for kind, source in all_sources.items():
        domains = source.domains()
        total = 0
        for chunk in source.iter_chunks(chunk_rows=64):
            assert chunk.n_rows <= 64
            total += chunk.n_rows
            for name in source.schema.names:
                assert np.array_equal(
                    chunk.domain(name).values, domains[name].values
                ), f"{kind}: chunk domain of {name} is not the full-table domain"
        assert total == ROWS


def test_chunk_concatenation_equals_materialised_table(all_sources):
    for kind, source in all_sources.items():
        materialised = source.table()
        for name in source.schema.names:
            streamed = np.concatenate(
                [chunk.codes(name) for chunk in source.iter_chunks(chunk_rows=97)]
            )
            assert np.array_equal(streamed, materialised.codes(name)), (
                f"{kind}: chunked codes of {name} diverged from table()"
            )


def test_npz_columns_are_memory_mapped(tmp_path, table):
    path = tmp_path / "adult.npz"
    write_npz(path, table)
    source = NpzTableSource(path, adult_schema())
    column = source.table().codes("Age")
    # codes() may hand back a plain-ndarray view, but its storage must still
    # be the file mapping (no decompressed in-RAM copy).
    base = column
    while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
        base = base.base
    assert isinstance(base, np.memmap)


def test_open_table_dispatches_by_extension(tmp_path, table):
    csv_path = tmp_path / "t.csv"
    npz_path = tmp_path / "t.npz"
    write_csv(table, csv_path)
    write_npz(npz_path, table)
    assert isinstance(open_table(csv_path, adult_schema()), CsvTableSource)
    assert isinstance(open_table(npz_path, adult_schema()), NpzTableSource)


def test_open_table_rejects_unknown_extension(tmp_path):
    target = tmp_path / "t.parquet"
    target.write_bytes(b"")
    with pytest.raises(DataError, match="parquet"):
        open_table(target, adult_schema())


def test_open_table_defaults_to_adult_schema(tmp_path, table):
    npz_path = tmp_path / "t.npz"
    write_npz(npz_path, table)
    source = open_table(npz_path)
    assert tuple(source.schema.names) == tuple(adult_schema().names)


def test_open_table_chunk_rows_becomes_the_default(tmp_path, table):
    npz_path = tmp_path / "t.npz"
    write_npz(npz_path, table)
    source = open_table(npz_path, adult_schema(), chunk_rows=50)
    assert [chunk.n_rows for chunk in source.iter_chunks()] == [50] * 8
    # An explicit iter_chunks size still overrides the source default.
    assert [chunk.n_rows for chunk in source.iter_chunks(chunk_rows=ROWS)] == [ROWS]


def test_invalid_chunk_rows_rejected(table):
    source = InMemoryTableSource(table, chunk_rows=0)
    with pytest.raises(DataError, match="chunk_rows"):
        next(source.iter_chunks())
    with pytest.raises(DataError, match="chunk_rows"):
        next(InMemoryTableSource(table).iter_chunks(chunk_rows=-3))


def test_default_chunk_rows_used_when_unset(table):
    chunks = list(InMemoryTableSource(table).iter_chunks())
    assert len(chunks) == 1  # ROWS < DEFAULT_CHUNK_ROWS: one chunk
    assert DEFAULT_CHUNK_ROWS >= ROWS


def test_npz_source_rejects_foreign_archive(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, whatever=np.arange(4))
    with pytest.raises(DataError, match="missing code/domain members"):
        NpzTableSource(path, adult_schema())


def test_npz_source_rejects_missing_file(tmp_path):
    with pytest.raises(DataError, match="does not exist"):
        NpzTableSource(tmp_path / "absent.npz", adult_schema())


def test_csv_source_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(DataError, match="empty"):
        CsvTableSource(path, adult_schema())


def test_as_source_and_as_table_normalise_both_ways(table):
    source = as_source(table)
    assert isinstance(source, InMemoryTableSource)
    assert as_source(source) is source
    assert as_table(table) is table
    materialised = as_table(source)
    assert materialised.n_rows == table.n_rows
    with pytest.raises(DataError, match="expected a MicrodataTable"):
        as_source([1, 2, 3])
    with pytest.raises(DataError, match="expected a MicrodataTable"):
        as_table({"not": "a table"})


def test_write_npz_accepts_a_source(tmp_path, table):
    """write_npz(source) streams the chunks into one codes file."""
    first = tmp_path / "direct.npz"
    second = tmp_path / "via-source.npz"
    write_npz(first, table)
    write_npz(second, InMemoryTableSource(table, chunk_rows=64))
    a = NpzTableSource(first, adult_schema()).table()
    b = NpzTableSource(second, adult_schema()).table()
    for name in adult_schema().names:
        assert np.array_equal(a.codes(name), b.codes(name))
        assert np.array_equal(a.domain(name).values, b.domain(name).values)
