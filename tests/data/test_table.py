"""Tests for repro.data.table (MicrodataTable and AttributeDomain)."""

import numpy as np
import pytest

from repro.data.hierarchy import Taxonomy
from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import AttributeDomain, MicrodataTable
from repro.exceptions import DataError, SchemaError


@pytest.fixture()
def schema():
    return Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])


@pytest.fixture()
def table(schema):
    return MicrodataTable.from_columns(
        schema,
        {
            "Age": [30, 40, 30, 50],
            "Sex": ["M", "F", "F", "M"],
            "Disease": ["Flu", "Cancer", "Flu", "Flu"],
        },
    )


def test_from_rows_round_trip(schema, table):
    rebuilt = MicrodataTable.from_rows(schema, table.rows())
    assert rebuilt.n_rows == table.n_rows
    for name in schema.names:
        assert list(rebuilt.column(name)) == list(table.column(name))


def test_from_rows_missing_attribute(schema):
    with pytest.raises(DataError):
        MicrodataTable.from_rows(schema, [{"Age": 30, "Sex": "M"}])


def test_from_rows_empty(schema):
    with pytest.raises(DataError):
        MicrodataTable.from_rows(schema, [])


def test_missing_column_rejected(schema):
    with pytest.raises(DataError):
        MicrodataTable.from_columns(schema, {"Age": [1], "Sex": ["M"]})


def test_mismatched_column_lengths_rejected(schema):
    with pytest.raises(DataError):
        MicrodataTable.from_columns(
            schema, {"Age": [1, 2], "Sex": ["M"], "Disease": ["Flu", "Flu"]}
        )


def test_empty_table_rejected(schema):
    with pytest.raises(DataError):
        MicrodataTable.from_columns(schema, {"Age": [], "Sex": [], "Disease": []})


def test_basic_accessors(table):
    assert len(table) == 4
    assert table.n_rows == 4
    assert table.quasi_identifier_names == ("Age", "Sex")
    assert table.sensitive_name == "Disease"
    assert table.row(0) == {"Age": 30.0, "Sex": "M", "Disease": "Flu"}


def test_row_out_of_range(table):
    with pytest.raises(DataError):
        table.row(10)


def test_unknown_column_raises(table):
    with pytest.raises(SchemaError):
        table.column("Zipcode")
    with pytest.raises(SchemaError):
        table.codes("Zipcode")
    with pytest.raises(SchemaError):
        table.domain("Zipcode")


def test_codes_match_domain(table):
    domain = table.domain("Sex")
    codes = table.codes("Sex")
    decoded = domain.decode(codes)
    assert list(decoded) == list(table.column("Sex"))


def test_qi_code_matrix_shape(table):
    matrix = table.qi_code_matrix()
    assert matrix.shape == (4, 2)
    assert matrix.dtype == np.int32


def test_value_counts(table):
    counts = table.value_counts("Disease")
    assert counts == {"Cancer": 1, "Flu": 3}


def test_sensitive_distribution_whole_table(table):
    distribution = table.sensitive_distribution()
    # Domain is sorted alphabetically: Cancer, Flu.
    assert distribution == pytest.approx([0.25, 0.75])


def test_sensitive_distribution_subset(table):
    distribution = table.sensitive_distribution([1, 2])
    assert distribution == pytest.approx([0.5, 0.5])


def test_sensitive_distribution_empty_group(table):
    with pytest.raises(DataError):
        table.sensitive_distribution([])


def test_select_preserves_domains(table):
    subset = table.select([0, 3])
    assert subset.n_rows == 2
    # Domain (and therefore code space) is inherited from the parent table.
    assert subset.domain("Disease").size == table.domain("Disease").size
    assert list(subset.column("Age")) == [30.0, 50.0]


def test_select_empty_rejected(table):
    with pytest.raises(DataError):
        table.select([])


def test_sample_size_and_determinism(table):
    first = table.sample(2, rng=np.random.default_rng(0))
    second = table.sample(2, rng=np.random.default_rng(0))
    assert first.n_rows == 2
    assert list(first.column("Age")) == list(second.column("Age"))


def test_sample_too_large(table):
    with pytest.raises(DataError):
        table.sample(100)
    with pytest.raises(DataError):
        table.sample(0)


def test_domain_code_of_unknown_value(table):
    with pytest.raises(DataError):
        table.domain("Sex").code_of("X")
    with pytest.raises(DataError):
        table.domain("Age").code_of(99)


def test_domain_decode_out_of_range(table):
    with pytest.raises(DataError):
        table.domain("Sex").decode([5])


def test_numeric_range(table):
    assert table.domain("Age").numeric_range == pytest.approx(20.0)
    with pytest.raises(DataError):
        table.domain("Sex").numeric_range


def test_taxonomy_domain_uses_leaf_order():
    taxonomy = Taxonomy.from_spec("ANY", {"G1": ["b", "a"], "G2": ["c"]})
    schema = Schema([categorical_qi("X", taxonomy), sensitive("S")])
    table = MicrodataTable.from_columns(schema, {"X": ["a", "c"], "S": ["s1", "s2"]})
    # Codes follow the taxonomy's leaf order, not alphabetical order.
    assert list(table.domain("X").values) == list(taxonomy.leaves)


def test_taxonomy_domain_rejects_unknown_leaf():
    taxonomy = Taxonomy.flat("ANY", ["a", "b"])
    schema = Schema([categorical_qi("X", taxonomy), sensitive("S")])
    with pytest.raises(DataError):
        MicrodataTable.from_columns(schema, {"X": ["z"], "S": ["s1"]})


def test_attribute_domain_direct_construction():
    domain = AttributeDomain(numeric_qi("Age"), [5, 1, 3, 1])
    assert domain.size == 3
    assert list(domain.values) == [1.0, 3.0, 5.0]
    assert domain.code_of(3) == 1


def test_replace_rows_aligns_values_with_unsorted_indices():
    import numpy as np

    from repro.data.examples import table_i_patients

    table = table_i_patients()
    ages = table.column("Age")
    assert ages[2] != ages[5]
    # A swap given in unsorted index order: each replacement row must land
    # on its own index, not on the sorted position.
    replaced = table.replace_rows(
        [5, 2],
        {
            name: [table.row(2)[name], table.row(5)[name]]
            for name in table.schema.names
        },
    )
    assert replaced.column("Age")[5] == ages[2]
    assert replaced.column("Age")[2] == ages[5]
    assert np.array_equal(np.delete(replaced.column("Age"), [2, 5]),
                          np.delete(ages, [2, 5]))


def test_replace_rows_validation():
    import pytest

    from repro.data.examples import table_i_patients
    from repro.exceptions import DataError

    table = table_i_patients()
    row = {name: [table.row(0)[name]] for name in table.schema.names}
    with pytest.raises(DataError):
        table.replace_rows([], {name: [] for name in table.schema.names})
    with pytest.raises(DataError):
        table.replace_rows([0, 0], {n: v * 2 for n, v in row.items()})
    with pytest.raises(DataError):
        table.replace_rows([table.n_rows], row)
    with pytest.raises(DataError):
        table.replace_rows([0, 1], row)  # column length mismatch
