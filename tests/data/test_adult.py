"""Tests for the synthetic Adult-like dataset generator (Table IV schema)."""

import numpy as np
import pytest

from repro.data.adult import (
    AGE_MAX,
    AGE_MIN,
    EDUCATION_VALUES,
    GENDER_VALUES,
    MARITAL_VALUES,
    OCCUPATION_VALUES,
    RACE_VALUES,
    WORKCLASS_VALUES,
    adult_schema,
    generate_adult,
    occupation_taxonomy,
)
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def adult():
    return generate_adult(4_000, seed=3)


def test_schema_matches_table_iv():
    schema = adult_schema()
    assert schema.names == (
        "Age",
        "Workclass",
        "Education",
        "Marital-status",
        "Race",
        "Gender",
        "Occupation",
    )
    assert schema.sensitive_attribute.name == "Occupation"
    assert len(schema.quasi_identifiers) == 6
    assert schema["Age"].is_numeric
    for name in ("Workclass", "Education", "Marital-status", "Race", "Gender", "Occupation"):
        assert schema[name].is_categorical


def test_domain_sizes_match_table_iv():
    assert len(WORKCLASS_VALUES) == 8
    assert len(EDUCATION_VALUES) == 16
    assert len(MARITAL_VALUES) == 7
    assert len(RACE_VALUES) == 5
    assert len(GENDER_VALUES) == 2
    assert len(OCCUPATION_VALUES) == 14
    assert AGE_MAX - AGE_MIN + 1 == 74


def test_occupation_hierarchy_height_two():
    taxonomy = occupation_taxonomy()
    assert taxonomy.height == 2
    assert set(taxonomy.leaves) == set(OCCUPATION_VALUES)


def test_generated_size_and_determinism():
    first = generate_adult(500, seed=9)
    second = generate_adult(500, seed=9)
    assert first.n_rows == 500
    for name in first.schema.names:
        assert list(first.column(name)) == list(second.column(name))


def test_different_seeds_differ():
    first = generate_adult(500, seed=1)
    second = generate_adult(500, seed=2)
    assert list(first.column("Age")) != list(second.column("Age"))


def test_invalid_size_rejected():
    with pytest.raises(DataError):
        generate_adult(0)


def test_values_stay_in_domains(adult):
    ages = adult.column("Age")
    assert ages.min() >= AGE_MIN and ages.max() <= AGE_MAX
    assert set(adult.column("Workclass")) <= set(WORKCLASS_VALUES)
    assert set(adult.column("Education")) <= set(EDUCATION_VALUES)
    assert set(adult.column("Occupation")) <= set(OCCUPATION_VALUES)


def test_all_occupations_appear(adult):
    assert set(adult.column("Occupation")) == set(OCCUPATION_VALUES)


def test_gender_occupation_correlation(adult):
    """The correlational knowledge of the paper's motivation must exist in the data."""
    gender = adult.column("Gender")
    occupation = adult.column("Occupation")
    female = gender == "Female"
    male = ~female

    def rate(mask, value):
        return float((occupation[mask] == value).mean())

    # Armed-Forces is essentially male-only; Priv-house-serv overwhelmingly female.
    assert rate(male, "Armed-Forces") > 3 * max(rate(female, "Armed-Forces"), 1e-4)
    assert rate(female, "Priv-house-serv") > 3 * max(rate(male, "Priv-house-serv"), 1e-4)
    # Craft-repair skews male, Adm-clerical skews female.
    assert rate(male, "Craft-repair") > rate(female, "Craft-repair")
    assert rate(female, "Adm-clerical") > rate(male, "Adm-clerical")


def test_education_occupation_correlation(adult):
    education = adult.column("Education")
    occupation = adult.column("Occupation")
    higher = np.isin(education, ["Bachelors", "Masters", "Prof-school", "Doctorate"])
    lower = np.isin(
        education, ["Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th", "12th"]
    )
    prof_rate_higher = float((occupation[higher] == "Prof-specialty").mean())
    prof_rate_lower = float((occupation[lower] == "Prof-specialty").mean())
    assert prof_rate_higher > 2 * prof_rate_lower


def test_age_occupation_correlation(adult):
    ages = adult.column("Age")
    occupation = adult.column("Occupation")
    young = ages < 30
    older = ages >= 50
    exec_young = float((occupation[young] == "Exec-managerial").mean())
    exec_older = float((occupation[older] == "Exec-managerial").mean())
    assert exec_older > exec_young


def test_marginals_are_plausible(adult):
    gender_counts = adult.value_counts("Gender")
    male_share = gender_counts["Male"] / adult.n_rows
    assert 0.6 < male_share < 0.75
    race_counts = adult.value_counts("Race")
    assert race_counts["White"] / adult.n_rows > 0.7
