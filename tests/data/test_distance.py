"""Tests for repro.data.distance (Section II-C distance matrices)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distance import (
    attribute_distance_matrix,
    discrete_distance_matrix,
    hierarchy_distance_matrix,
    numeric_distance_matrix,
    validate_distance_matrix,
)
from repro.data.hierarchy import Taxonomy
from repro.data.schema import categorical_qi, numeric_qi
from repro.data.table import AttributeDomain
from repro.exceptions import DataError


def test_numeric_distance_matrix_normalisation():
    matrix = numeric_distance_matrix(np.array([0.0, 5.0, 10.0]))
    expected = np.array([[0.0, 0.5, 1.0], [0.5, 0.0, 0.5], [1.0, 0.5, 0.0]])
    assert np.allclose(matrix, expected)


def test_numeric_distance_matrix_single_value():
    matrix = numeric_distance_matrix(np.array([7.0]))
    assert matrix.shape == (1, 1)
    assert matrix[0, 0] == 0.0


def test_numeric_distance_matrix_constant_column():
    matrix = numeric_distance_matrix(np.array([3.0, 3.0, 3.0]))
    assert np.allclose(matrix, 0.0)


def test_numeric_distance_matrix_bad_input():
    with pytest.raises(DataError):
        numeric_distance_matrix(np.array([]))
    with pytest.raises(DataError):
        numeric_distance_matrix(np.zeros((2, 2)))


def test_discrete_distance_matrix():
    matrix = discrete_distance_matrix(3)
    assert np.allclose(np.diag(matrix), 0.0)
    assert np.allclose(matrix + np.eye(3), 1.0)
    with pytest.raises(DataError):
        discrete_distance_matrix(0)


def test_hierarchy_distance_matrix_values():
    taxonomy = Taxonomy.from_spec("ANY", {"G1": ["a", "b"], "G2": ["c"]})
    domain = AttributeDomain(categorical_qi("X", taxonomy), ["a", "b", "c"])
    matrix = hierarchy_distance_matrix(domain)
    index = {value: i for i, value in enumerate(domain.values.tolist())}
    assert matrix[index["a"], index["b"]] == pytest.approx(0.5)
    assert matrix[index["a"], index["c"]] == pytest.approx(1.0)
    validate_distance_matrix(matrix)


def test_hierarchy_distance_matrix_requires_taxonomy():
    domain = AttributeDomain(categorical_qi("X"), ["a", "b"])
    with pytest.raises(DataError):
        hierarchy_distance_matrix(domain)


def test_attribute_distance_matrix_dispatch():
    numeric_domain = AttributeDomain(numeric_qi("Age"), [1, 2, 3])
    assert np.allclose(
        attribute_distance_matrix(numeric_domain), numeric_distance_matrix(np.array([1.0, 2.0, 3.0]))
    )
    plain_domain = AttributeDomain(categorical_qi("X"), ["a", "b"])
    assert np.allclose(attribute_distance_matrix(plain_domain), discrete_distance_matrix(2))
    taxonomy = Taxonomy.flat("ANY", ["a", "b"])
    tax_domain = AttributeDomain(categorical_qi("X", taxonomy), ["a", "b"])
    assert np.allclose(attribute_distance_matrix(tax_domain), discrete_distance_matrix(2))


def test_validate_distance_matrix_rejects_bad_matrices():
    with pytest.raises(DataError):
        validate_distance_matrix(np.ones((2, 3)))
    with pytest.raises(DataError):
        validate_distance_matrix(np.array([[0.0, 1.0], [0.5, 0.0]]))
    with pytest.raises(DataError):
        validate_distance_matrix(np.array([[0.5, 1.0], [1.0, 0.0]]))
    with pytest.raises(DataError):
        validate_distance_matrix(np.array([[0.0, 2.0], [2.0, 0.0]]))


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=20, unique=True
    )
)
def test_numeric_distance_matrix_properties(values):
    """Property: numeric distance matrices are always valid normalised distances."""
    matrix = numeric_distance_matrix(np.asarray(sorted(values)))
    validate_distance_matrix(matrix)
    assert matrix.max() == pytest.approx(1.0)
