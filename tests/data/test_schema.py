"""Tests for repro.data.schema."""

import pytest

from repro.data.hierarchy import Taxonomy
from repro.data.schema import (
    Attribute,
    AttributeKind,
    AttributeRole,
    Schema,
    categorical_qi,
    numeric_qi,
    sensitive,
)
from repro.exceptions import SchemaError


def test_numeric_qi_constructor():
    attribute = numeric_qi("Age")
    assert attribute.is_numeric
    assert attribute.is_quasi_identifier
    assert not attribute.is_sensitive


def test_categorical_qi_constructor_with_taxonomy():
    taxonomy = Taxonomy.flat("ANY", ["a", "b"])
    attribute = categorical_qi("Letter", taxonomy)
    assert attribute.is_categorical
    assert attribute.taxonomy is taxonomy


def test_sensitive_constructor():
    attribute = sensitive("Disease")
    assert attribute.is_sensitive
    assert attribute.is_categorical


def test_sensitive_numeric_constructor():
    attribute = sensitive("Salary", numeric=True)
    assert attribute.is_sensitive
    assert attribute.is_numeric


def test_attribute_empty_name_rejected():
    with pytest.raises(SchemaError):
        Attribute("", AttributeKind.NUMERIC)


def test_numeric_attribute_cannot_carry_taxonomy():
    taxonomy = Taxonomy.flat("ANY", ["x"])
    with pytest.raises(SchemaError):
        Attribute("Age", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER, taxonomy)


def test_schema_requires_attributes():
    with pytest.raises(SchemaError):
        Schema([])


def test_schema_rejects_duplicate_names():
    with pytest.raises(SchemaError) as excinfo:
        Schema([numeric_qi("Age"), numeric_qi("Age")])
    assert "Age" in str(excinfo.value)


def test_schema_rejects_two_sensitive_attributes():
    with pytest.raises(SchemaError):
        Schema([sensitive("Disease"), sensitive("Salary")])


def test_schema_lookup_and_iteration():
    schema = Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])
    assert len(schema) == 3
    assert schema.names == ("Age", "Sex", "Disease")
    assert schema["Age"].is_numeric
    assert "Sex" in schema
    assert "Zipcode" not in schema
    assert [a.name for a in schema] == ["Age", "Sex", "Disease"]


def test_schema_unknown_attribute_raises():
    schema = Schema([numeric_qi("Age"), sensitive("Disease")])
    with pytest.raises(SchemaError):
        schema["Zipcode"]


def test_schema_quasi_identifiers_exclude_sensitive():
    schema = Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])
    assert schema.quasi_identifier_names == ("Age", "Sex")
    assert schema.sensitive_attribute.name == "Disease"
    assert schema.has_sensitive_attribute


def test_schema_without_sensitive_attribute():
    schema = Schema([numeric_qi("Age")])
    assert not schema.has_sensitive_attribute
    with pytest.raises(SchemaError):
        schema.sensitive_attribute


def test_schema_subset_preserves_order():
    schema = Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])
    subset = schema.subset(["Sex", "Age"])
    assert subset.names == ("Sex", "Age")


def test_schema_equality():
    first = Schema([numeric_qi("Age"), sensitive("Disease")])
    second = Schema([numeric_qi("Age"), sensitive("Disease")])
    third = Schema([numeric_qi("Age"), sensitive("Illness")])
    assert first == second
    assert first != third
