"""Tests for CSV import/export of microdata tables."""

import pytest

from repro.data.adult import generate_adult
from repro.data.io import read_csv, write_csv
from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import DataError


@pytest.fixture()
def schema():
    return Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])


@pytest.fixture()
def table(schema):
    return MicrodataTable.from_columns(
        schema,
        {
            "Age": [30, 41.5, 30],
            "Sex": ["M", "F", "F"],
            "Disease": ["Flu", "Cancer", "Flu"],
        },
    )


def test_round_trip(tmp_path, schema, table):
    path = tmp_path / "patients.csv"
    write_csv(table, path)
    rebuilt = read_csv(path, schema)
    assert rebuilt.n_rows == table.n_rows
    for name in schema.names:
        assert list(rebuilt.column(name)) == list(table.column(name))


def test_integral_floats_written_without_decimal(tmp_path, schema, table):
    path = tmp_path / "patients.csv"
    write_csv(table, path)
    text = path.read_text()
    assert "30,M,Flu" in text
    assert "41.5,F,Cancer" in text


def test_round_trip_adult_sample(tmp_path):
    table = generate_adult(50, seed=5)
    path = tmp_path / "adult.csv"
    write_csv(table, path)
    rebuilt = read_csv(path, table.schema)
    assert rebuilt.n_rows == 50
    assert list(rebuilt.column("Occupation")) == list(table.column("Occupation"))


def test_missing_column_rejected(tmp_path, schema):
    path = tmp_path / "bad.csv"
    path.write_text("Age,Sex\n30,M\n")
    with pytest.raises(DataError):
        read_csv(path, schema)


def test_empty_file_rejected(tmp_path, schema):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(DataError):
        read_csv(path, schema)


def test_bad_numeric_value_rejected(tmp_path, schema):
    path = tmp_path / "bad.csv"
    path.write_text("Age,Sex,Disease\nthirty,M,Flu\n")
    with pytest.raises(DataError) as excinfo:
        read_csv(path, schema)
    assert "thirty" in str(excinfo.value)


def test_short_row_rejected(tmp_path, schema):
    path = tmp_path / "bad.csv"
    path.write_text("Age,Sex,Disease\n30,M\n")
    with pytest.raises(DataError):
        read_csv(path, schema)


def test_blank_lines_are_skipped(tmp_path, schema):
    path = tmp_path / "blank.csv"
    path.write_text("Age,Sex,Disease\n30,M,Flu\n\n40,F,Cancer\n")
    table = read_csv(path, schema)
    assert table.n_rows == 2


def test_extra_columns_are_ignored(tmp_path, schema):
    path = tmp_path / "extra.csv"
    path.write_text("Age,Sex,Disease,Zip\n30,M,Flu,47906\n")
    table = read_csv(path, schema)
    assert table.n_rows == 1
    assert table.row(0)["Disease"] == "Flu"
