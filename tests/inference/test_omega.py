"""Tests for the Omega-estimate (Section III-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InferenceError
from repro.inference.exact import exact_posterior
from repro.inference.omega import omega_posterior, posterior_for_groups


def test_rows_are_distributions():
    rng = np.random.default_rng(0)
    prior = rng.dirichlet(np.ones(5), size=6)
    counts = np.array([2, 1, 3, 0, 0])
    posterior = omega_posterior(prior, counts)
    assert np.allclose(posterior.sum(axis=1), 1.0)
    assert posterior.min() >= 0.0
    assert np.allclose(posterior[:, 3:], 0.0)


def test_uniform_prior_gives_group_frequencies():
    prior = np.full((4, 3), 1.0 / 3.0)
    counts = np.array([2, 1, 1])
    posterior = omega_posterior(prior, counts)
    assert np.allclose(posterior, np.array([0.5, 0.25, 0.25]))


def test_identical_priors_give_group_frequencies():
    """When all tuples share the same prior, the Omega posterior is the group's
    empirical distribution for every tuple (the l-diversity/random-world case)."""
    prior = np.tile(np.array([0.6, 0.3, 0.1]), (5, 1))
    counts = np.array([1, 3, 1])
    posterior = omega_posterior(prior, counts)
    assert np.allclose(posterior, counts / counts.sum())


def test_whole_table_group_changes_nothing(small_adult, small_adult_priors):
    """For the single group containing everything, column sums track the counts and
    the Omega posterior stays very close to the prior (no information released)."""
    prior = small_adult_priors.matrix
    codes = small_adult.sensitive_codes()
    counts = np.bincount(codes, minlength=small_adult.sensitive_domain().size)
    posterior = omega_posterior(prior, counts)
    assert np.abs(posterior - prior).max() < 0.05


def test_zero_column_fallback():
    """A value present in the group but excluded by every prior gets a uniform share."""
    prior = np.array([[1.0, 0.0], [1.0, 0.0]])
    counts = np.array([1, 1])
    posterior = omega_posterior(prior, counts)
    assert np.allclose(posterior.sum(axis=1), 1.0)
    assert np.allclose(posterior[:, 1], 0.5)


def test_zero_row_fallback():
    """A tuple whose prior excludes all present values falls back to group frequencies."""
    prior = np.array([[0.0, 0.0, 1.0], [0.5, 0.5, 0.0], [0.5, 0.5, 0.0]])
    counts = np.array([2, 1, 0])
    posterior = omega_posterior(prior, counts)
    assert np.allclose(posterior[0], [2 / 3, 1 / 3, 0.0])


def test_validation_errors():
    with pytest.raises(InferenceError):
        omega_posterior(np.array([[0.5, 0.5]]), np.array([1, 1]))


def test_paper_table_iii_value():
    """The Omega-estimate reproduces the 0.66 value worked out in Section III-D."""
    prior = np.array([[0.0, 1.0], [0.0, 1.0], [0.3, 0.7]])
    counts = np.array([1, 2])
    posterior = omega_posterior(prior, counts)
    assert posterior[2, 0] == pytest.approx(0.659, abs=0.005)


def test_omega_close_to_exact_on_random_groups():
    """The estimate should usually be close to exact inference (Figure 2's claim)."""
    rng = np.random.default_rng(21)
    gaps = []
    for _ in range(30):
        k, m = 6, 4
        prior = rng.dirichlet(np.ones(m) * 2, size=k)
        codes = rng.integers(0, m, size=k)
        counts = np.bincount(codes, minlength=m)
        omega = omega_posterior(prior, counts)
        exact = exact_posterior(prior, counts)
        gaps.append(np.abs(omega - exact).max())
    assert float(np.mean(gaps)) < 0.15


def test_posterior_for_groups_covers_and_preserves_uncovered(small_adult, small_adult_priors):
    prior = small_adult_priors.matrix
    codes = small_adult.sensitive_codes()
    groups = [np.arange(0, 10), np.arange(10, 25)]
    posterior = posterior_for_groups(prior, codes, groups)
    # Covered tuples may change; uncovered tuples keep their prior untouched.
    assert np.allclose(posterior[25:], prior[25:])
    assert np.allclose(posterior.sum(axis=1), 1.0)


def test_posterior_for_groups_rejects_overlap(small_adult, small_adult_priors):
    prior = small_adult_priors.matrix
    codes = small_adult.sensitive_codes()
    with pytest.raises(InferenceError):
        posterior_for_groups(prior, codes, [np.arange(0, 10), np.arange(5, 15)])


def test_posterior_for_groups_unknown_method(small_adult, small_adult_priors):
    with pytest.raises(InferenceError):
        posterior_for_groups(
            small_adult_priors.matrix,
            small_adult.sensitive_codes(),
            [np.arange(5)],
            method="magic",
        )


def test_posterior_for_groups_exact_method(small_adult, small_adult_priors):
    prior = small_adult_priors.matrix
    codes = small_adult.sensitive_codes()
    groups = [np.arange(0, 6), np.arange(6, 12)]
    exact = posterior_for_groups(prior, codes, groups, method="exact")
    omega = posterior_for_groups(prior, codes, groups, method="omega")
    assert exact.shape == omega.shape
    assert np.allclose(exact.sum(axis=1), 1.0)


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=10),
    m=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_omega_properties(k, m, seed):
    """Property: Omega posteriors are valid distributions restricted to group values."""
    rng = np.random.default_rng(seed)
    prior = rng.dirichlet(np.ones(m), size=k)
    codes = rng.integers(0, m, size=k)
    counts = np.bincount(codes, minlength=m)
    posterior = omega_posterior(prior, counts)
    assert posterior.shape == (k, m)
    assert np.allclose(posterior.sum(axis=1), 1.0)
    assert posterior.min() >= 0.0
    assert np.allclose(posterior[:, counts == 0], 0.0)
