"""Batched-vs-legacy equivalence for the vectorised posterior kernel.

``posterior_for_groups`` used to loop group by group; it now runs one flat
pass over a group-id vector.  These property-style tests pin the new kernel to
the per-group reference (``omega_posterior`` / ``exact_posterior`` applied to
each group) on randomized tables, covering empty groups, uncovered tuples,
degenerate priors and the chunked path.
"""

import numpy as np
import pytest

from repro.exceptions import InferenceError
from repro.inference.exact import exact_posterior, group_sensitive_counts
from repro.inference.omega import grouped_posterior, omega_posterior, posterior_for_groups


def _random_problem(rng, *, zero_mass: float = 0.0):
    """A random prior/codes/groups triple (optionally with zeroed-out priors)."""
    n = int(rng.integers(1, 60))
    m = int(rng.integers(2, 8))
    prior = rng.random((n, m))
    if zero_mass > 0.0:
        prior[rng.random((n, m)) < zero_mass] = 0.0
        dead = prior.sum(axis=1) <= 0.0
        prior[dead] = 1.0
    prior /= prior.sum(axis=1, keepdims=True)
    codes = rng.integers(0, m, n)
    covered = rng.permutation(n)[: int(rng.integers(0, n + 1))]
    groups, position = [], 0
    while position < len(covered):
        size = int(rng.integers(1, 9))
        groups.append(covered[position : position + size])
        position += size
    groups.insert(0, np.array([], dtype=np.int64))  # empty groups are skipped
    return prior, codes, groups


def _reference(prior, codes, groups, method):
    posterior = prior.copy()
    for group in groups:
        if len(group) == 0:
            continue
        counts = group_sensitive_counts(codes[group], prior.shape[1])
        if method == "omega":
            posterior[group] = omega_posterior(prior[group], counts)
        else:
            posterior[group] = exact_posterior(prior[group], counts)
    return posterior


@pytest.mark.parametrize("method", ["omega", "exact"])
@pytest.mark.parametrize("zero_mass", [0.0, 0.35])
def test_batched_matches_per_group_loop(method, zero_mass):
    rng = np.random.default_rng(20090415)
    for _ in range(25):
        prior, codes, groups = _random_problem(rng, zero_mass=zero_mass)
        try:
            reference = _reference(prior, codes, groups, method)
        except InferenceError:
            # Inconsistent priors must be rejected by the batched path too.
            with pytest.raises(InferenceError):
                posterior_for_groups(prior, codes, groups, method=method)
            continue
        for chunk_rows in (None, 1, 7):
            batched = posterior_for_groups(
                prior, codes, groups, method=method, chunk_rows=chunk_rows
            )
            np.testing.assert_allclose(batched, reference, atol=1e-9)


def test_uncovered_tuples_keep_their_prior():
    rng = np.random.default_rng(3)
    prior = rng.random((10, 4))
    prior /= prior.sum(axis=1, keepdims=True)
    codes = rng.integers(0, 4, 10)
    groups = [np.array([1, 4, 7])]
    posterior = posterior_for_groups(prior, codes, groups)
    untouched = [i for i in range(10) if i not in {1, 4, 7}]
    np.testing.assert_array_equal(posterior[untouched], prior[untouched])


def test_all_groups_empty_returns_prior_copy():
    prior = np.full((5, 2), 0.5)
    posterior = posterior_for_groups(prior, np.zeros(5, dtype=int), [np.array([], dtype=int)])
    np.testing.assert_array_equal(posterior, prior)
    assert posterior is not prior


def test_overlapping_groups_rejected_across_chunks():
    prior = np.full((6, 2), 0.5)
    codes = np.zeros(6, dtype=int)
    groups = [np.array([0, 1]), np.array([2, 3]), np.array([3, 4])]
    for chunk_rows in (None, 2):
        with pytest.raises(InferenceError, match="overlap"):
            posterior_for_groups(prior, codes, groups, chunk_rows=chunk_rows)


def test_out_of_range_group_index_rejected():
    prior = np.full((4, 2), 0.5)
    with pytest.raises(InferenceError, match="out of range"):
        posterior_for_groups(prior, np.zeros(4, dtype=int), [np.array([0, 7])])


def test_bad_chunk_rows_rejected():
    prior = np.full((4, 2), 0.5)
    with pytest.raises(InferenceError, match="chunk_rows"):
        posterior_for_groups(prior, np.zeros(4, dtype=int), [np.array([0])], chunk_rows=0)


def test_grouped_posterior_validates_offsets():
    prior = np.full((4, 2), 0.5)
    codes = np.zeros(4, dtype=int)
    with pytest.raises(InferenceError, match="offsets"):
        grouped_posterior(prior, codes, np.array([1, 2]))
    with pytest.raises(InferenceError, match="offsets"):
        grouped_posterior(prior, codes, np.array([0, 2, 2]))


def test_grouped_posterior_allows_overlapping_candidate_groups():
    # Mondrian evaluates alternative candidate splits of the same parent;
    # the flat kernel must treat each laid-out group independently.
    rng = np.random.default_rng(9)
    prior = rng.random((8, 3))
    prior /= prior.sum(axis=1, keepdims=True)
    codes = rng.integers(0, 3, 8)
    left = np.array([0, 1, 2, 3])
    right = np.array([2, 3, 4, 5])  # overlaps left
    rows = np.concatenate([left, right])
    flat = grouped_posterior(prior[rows], codes[rows], np.array([0, 4]))
    for group, segment in ((left, flat[:4]), (right, flat[4:])):
        counts = group_sensitive_counts(codes[group], 3)
        np.testing.assert_allclose(segment, omega_posterior(prior[group], counts), atol=1e-12)


def test_out_of_range_sensitive_code_rejected():
    # The flat kernel buckets counts by group_id * m + code; an out-of-range
    # code must raise (as the legacy per-group path did), never bleed into a
    # neighbouring group's count bins.
    prior = np.full((4, 2), 0.5)
    codes = np.array([0, 2, 0, 1])  # 2 is out of range for m=2
    with pytest.raises(InferenceError, match="out of range"):
        grouped_posterior(prior, codes, np.array([0, 2]))
    with pytest.raises(InferenceError, match="out of range"):
        posterior_for_groups(prior, codes, [np.array([0, 1]), np.array([2, 3])])
