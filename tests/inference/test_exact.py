"""Tests for exact posterior inference (Section III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InferenceError
from repro.inference.exact import (
    exact_posterior,
    exact_posterior_bruteforce,
    group_sensitive_counts,
)


def _random_group(rng, k, m):
    """Random prior matrix and consistent sensitive multiset counts."""
    prior = rng.dirichlet(np.ones(m), size=k)
    codes = rng.integers(0, m, size=k)
    counts = np.bincount(codes, minlength=m)
    return prior, counts


def test_group_sensitive_counts_basic():
    counts = group_sensitive_counts(np.array([0, 2, 2, 1]), 4)
    assert counts.tolist() == [1, 1, 2, 0]


def test_group_sensitive_counts_validation():
    with pytest.raises(InferenceError):
        group_sensitive_counts(np.array([], dtype=int), 3)
    with pytest.raises(InferenceError):
        group_sensitive_counts(np.array([5]), 3)


def test_input_validation():
    prior = np.array([[0.5, 0.5], [0.5, 0.5]])
    with pytest.raises(InferenceError):
        exact_posterior(prior, np.array([1, 0]))  # multiset size 1 != 2 tuples
    with pytest.raises(InferenceError):
        exact_posterior(prior, np.array([1, 1, 1]))  # wrong length
    with pytest.raises(InferenceError):
        exact_posterior(np.array([0.5, 0.5]), np.array([1, 1]))  # 1-D prior
    with pytest.raises(InferenceError):
        exact_posterior(np.array([[0.5, -0.5], [0.5, 0.5]]), np.array([1, 1]))


def test_rows_are_distributions_over_present_values():
    rng = np.random.default_rng(0)
    prior, counts = _random_group(rng, 6, 4)
    posterior = exact_posterior(prior, counts)
    assert np.allclose(posterior.sum(axis=1), 1.0)
    absent = counts == 0
    assert np.allclose(posterior[:, absent], 0.0)


def test_single_tuple_group_is_fully_disclosed():
    prior = np.array([[0.7, 0.2, 0.1]])
    counts = np.array([0, 1, 0])
    posterior = exact_posterior(prior, counts)
    assert posterior[0].tolist() == [0.0, 1.0, 0.0]


def test_uniform_prior_gives_group_frequencies():
    """With a flat prior every assignment is equally likely, so the posterior
    for each tuple equals the group's empirical distribution."""
    prior = np.full((4, 3), 1.0 / 3.0)
    counts = np.array([2, 1, 1])
    posterior = exact_posterior(prior, counts)
    assert np.allclose(posterior, np.array([0.5, 0.25, 0.25]))


def test_certain_prior_is_preserved():
    """If the prior already pins down a perfect matching, the posterior keeps it."""
    prior = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    counts = np.array([2, 1])
    posterior = exact_posterior(prior, counts)
    assert np.allclose(posterior, prior)


def test_inconsistent_prior_raises():
    # Nobody can take value 1, but the group contains it.
    prior = np.array([[1.0, 0.0], [1.0, 0.0]])
    counts = np.array([1, 1])
    with pytest.raises(InferenceError):
        exact_posterior(prior, counts)


def test_matches_bruteforce_on_random_groups():
    rng = np.random.default_rng(7)
    for _ in range(20):
        prior, counts = _random_group(rng, rng.integers(2, 7), rng.integers(2, 5))
        dp = exact_posterior(prior, counts)
        brute = exact_posterior_bruteforce(prior, counts)
        assert np.allclose(dp, brute, atol=1e-10)


def test_bruteforce_size_limit():
    prior = np.full((9, 2), 0.5)
    counts = np.array([5, 4])
    with pytest.raises(InferenceError):
        exact_posterior_bruteforce(prior, counts)


def test_posterior_value_mass_sums_to_counts():
    """Column sums of the posterior equal the multiset counts (mass conservation)."""
    rng = np.random.default_rng(11)
    prior, counts = _random_group(rng, 8, 5)
    posterior = exact_posterior(prior, counts)
    assert np.allclose(posterior.sum(axis=0), counts)


def test_larger_group_still_exact():
    """The count-DP stays correct (mass conservation + agreement with permanent
    structure) on a group of 12 tuples."""
    rng = np.random.default_rng(13)
    prior, counts = _random_group(rng, 12, 6)
    posterior = exact_posterior(prior, counts)
    assert np.allclose(posterior.sum(axis=1), 1.0)
    assert np.allclose(posterior.sum(axis=0), counts)


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_exact_posterior_properties(k, m, seed):
    """Property: posteriors are distributions, conserve mass, and vanish off-group."""
    rng = np.random.default_rng(seed)
    prior, counts = _random_group(rng, k, m)
    posterior = exact_posterior(prior, counts)
    assert np.allclose(posterior.sum(axis=1), 1.0)
    assert np.allclose(posterior.sum(axis=0), counts)
    assert posterior.min() >= 0.0
    assert np.allclose(posterior[:, counts == 0], 0.0)
