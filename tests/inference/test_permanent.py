"""Tests for matrix permanents (Ryser and brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InferenceError
from repro.inference.permanent import permanent, permanent_bruteforce, permanent_ryser


def test_permanent_identity_matrix():
    assert permanent_ryser(np.eye(4)) == pytest.approx(1.0)
    assert permanent_bruteforce(np.eye(4)) == pytest.approx(1.0)


def test_permanent_all_ones():
    # per(J_n) = n!
    assert permanent_ryser(np.ones((4, 4))) == pytest.approx(24.0)
    assert permanent_bruteforce(np.ones((5, 5))) == pytest.approx(120.0)


def test_permanent_2x2_known_value():
    matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
    # per = 1*4 + 2*3 = 10
    assert permanent_ryser(matrix) == pytest.approx(10.0)
    assert permanent_bruteforce(matrix) == pytest.approx(10.0)


def test_permanent_with_zero_row():
    matrix = np.array([[0.0, 0.0], [1.0, 1.0]])
    assert permanent_ryser(matrix) == pytest.approx(0.0)


def test_permanent_empty_matrix():
    empty = np.zeros((0, 0))
    assert permanent_ryser(empty) == 1.0
    assert permanent_bruteforce(empty) == 1.0


def test_permanent_dispatch_matches_both_paths():
    rng = np.random.default_rng(3)
    small = rng.random((5, 5))
    large = rng.random((9, 9))
    assert permanent(small) == pytest.approx(permanent_bruteforce(small))
    assert permanent(large) == pytest.approx(permanent_ryser(large))


def test_permanent_rejects_non_square():
    with pytest.raises(InferenceError):
        permanent_ryser(np.ones((2, 3)))
    with pytest.raises(InferenceError):
        permanent_bruteforce(np.ones((2, 3)))


def test_permanent_ryser_size_limit():
    with pytest.raises(InferenceError):
        permanent_ryser(np.ones((26, 26)))


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_ryser_matches_bruteforce_property(size, seed):
    """Property: Ryser's formula agrees with direct enumeration on random matrices."""
    matrix = np.random.default_rng(seed).random((size, size))
    assert permanent_ryser(matrix) == pytest.approx(permanent_bruteforce(matrix), rel=1e-9)


def test_permanent_row_scaling_linearity():
    """Property: scaling one row scales the permanent by the same factor."""
    rng = np.random.default_rng(5)
    matrix = rng.random((5, 5))
    scaled = matrix.copy()
    scaled[2] *= 3.0
    assert permanent_ryser(scaled) == pytest.approx(3.0 * permanent_ryser(matrix))
