"""Regression tests against the numbers the paper works out by hand (Section III)."""

import numpy as np
import pytest

from repro.data.examples import (
    table_i_groups,
    table_i_patients,
    table_ii_prior,
    table_ii_sensitive_counts,
    table_iii_prior,
)
from repro.inference.exact import exact_posterior, group_sensitive_counts
from repro.inference.omega import omega_posterior
from repro.knowledge.prior import kernel_prior, uniform_prior
from repro.inference.omega import posterior_for_groups


def test_table_ii_exact_posterior_is_point_eight():
    """Section III-B: the adversary's belief that t3 has HIV rises from 0.3 to 0.8."""
    posterior = exact_posterior(table_ii_prior(), table_ii_sensitive_counts())
    assert posterior[2, 0] == pytest.approx(0.8, abs=0.01)
    # And the two decoys' beliefs drop accordingly.
    assert posterior[0, 0] == pytest.approx(0.1, abs=0.01)
    assert posterior[1, 0] == pytest.approx(0.1, abs=0.01)


def test_table_ii_case_probability():
    """Prob(Case 1) = p1 / (p1 + p2 + p3) = 0.8 in the paper's case analysis."""
    p1 = 0.95 * 0.95 * 0.3
    p2 = 0.95 * 0.05 * 0.7
    p3 = 0.05 * 0.95 * 0.7
    assert p1 / (p1 + p2 + p3) == pytest.approx(0.8, abs=0.01)
    # The exact-inference code reaches the same number.
    posterior = exact_posterior(table_ii_prior(), table_ii_sensitive_counts())
    assert posterior[2, 0] == pytest.approx(p1 / (p1 + p2 + p3), abs=1e-6)


def test_table_iii_exact_posterior_is_certain():
    """Section III-D: under Table III's priors, t3 must have HIV (probability 1)."""
    posterior = exact_posterior(table_iii_prior(), table_ii_sensitive_counts())
    assert posterior[2, 0] == pytest.approx(1.0)
    assert posterior[0, 0] == pytest.approx(0.0)


def test_table_iii_omega_estimate_is_two_thirds():
    """Section III-D: the Omega-estimate gives ~0.66 instead of 1 (its known inexactness)."""
    posterior = omega_posterior(table_iii_prior(), table_ii_sensitive_counts())
    assert posterior[2, 0] == pytest.approx(0.66, abs=0.01)


def test_motivating_example_emphysema_inference():
    """Section I: a correlational adversary becomes much more confident that the
    69-year-old male in the first group of Table I(b) has Emphysema."""
    table = table_i_patients()
    groups = table_i_groups()
    # A fine-grained adversary mined from the data itself.
    informed = kernel_prior(table, 0.2)
    ignorant = uniform_prior(table)
    codes = table.sensitive_codes()
    emphysema = table.sensitive_domain().code_of("Emphysema")

    informed_posterior = posterior_for_groups(informed.matrix, codes, groups, method="exact")
    ignorant_posterior = posterior_for_groups(ignorant.matrix, codes, groups, method="exact")

    # Bob is tuple 0.  Without background knowledge his Emphysema probability is 1/3;
    # with correlational knowledge it is much larger.
    assert ignorant_posterior[0, emphysema] == pytest.approx(1.0 / 3.0, abs=1e-9)
    assert informed_posterior[0, emphysema] > 0.5


def test_group_counts_for_table_i_groups():
    table = table_i_patients()
    codes = table.sensitive_codes()
    m = table.sensitive_domain().size
    for group in table_i_groups():
        counts = group_sensitive_counts(codes[group], m)
        assert counts.sum() == 3
        assert (counts > 0).sum() == 3  # each group is 3-diverse


def test_exact_and_omega_agree_on_table_ii():
    """On the (non-degenerate) Table II priors the two inferences point the same way."""
    exact = exact_posterior(table_ii_prior(), table_ii_sensitive_counts())
    omega = omega_posterior(table_ii_prior(), table_ii_sensitive_counts())
    assert np.argmax(exact[2]) == np.argmax(omega[2]) == 0
    assert omega[2, 0] > 0.5
