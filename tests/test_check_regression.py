"""The bench-regression gate: tolerances, vanished sections, missing keys."""

import importlib.util
import sys
from pathlib import Path

_MODULE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules["check_regression"] = check_regression
_spec.loader.exec_module(check_regression)


def _doc(sections):
    return {"benchmark": "test", "sections": sections}


def test_within_tolerance_passes():
    baseline = _doc({"a": {"run_seconds": 1.0, "speedup": 3.0}})
    current = _doc({"a": {"run_seconds": 1.1, "speedup": 2.8}})
    assert check_regression.compare(baseline, current, tolerance=0.30) == []


def test_slowdown_and_speedup_drop_fail():
    baseline = _doc({"a": {"run_seconds": 1.0, "speedup": 3.0}})
    current = _doc({"a": {"run_seconds": 2.0, "speedup": 1.0}})
    failures = check_regression.compare(baseline, current, tolerance=0.30)
    assert len(failures) == 2
    assert any("run_seconds" in failure for failure in failures)
    assert any("speedup" in failure for failure in failures)


def test_throughput_metrics_are_floor_gated():
    # *_per_second keys gate like speedups: dropping below the baseline by
    # more than the tolerance fails, exceeding it always passes.
    baseline = _doc({"a": {"mutations_per_second": 10.0, "rows": 100}})
    ok = _doc({"a": {"mutations_per_second": 8.0, "rows": 100}})
    assert check_regression.compare(baseline, ok, tolerance=0.30) == []
    faster = _doc({"a": {"mutations_per_second": 50.0, "rows": 100}})
    assert check_regression.compare(baseline, faster, tolerance=0.30) == []
    slow = _doc({"a": {"mutations_per_second": 5.0, "rows": 100}})
    failures = check_regression.compare(baseline, slow, tolerance=0.30)
    assert len(failures) == 1 and "mutations_per_second" in failures[0]
    gone = _doc({"a": {"rows": 100}})
    failures = check_regression.compare(baseline, gone, tolerance=0.30)
    assert len(failures) == 1 and "'mutations_per_second'" in failures[0]


def test_vanished_baseline_sections_fail_with_every_name():
    """A baseline section missing from the regenerated file is a hard
    failure naming every vanished section key at once - not a silent skip
    (and never a KeyError)."""
    baseline = _doc(
        {
            "kept": {"run_seconds": 1.0},
            "renamed-away": {"run_seconds": 1.0},
            "stopped-running": {"speedup": 2.0},
        }
    )
    current = _doc({"kept": {"run_seconds": 1.0}})
    failures = check_regression.compare(baseline, current, tolerance=0.30)
    assert len(failures) == 1
    assert "'renamed-away'" in failures[0]
    assert "'stopped-running'" in failures[0]
    assert "baseline sections missing" in failures[0]


def test_missing_metric_keys_reported_together():
    baseline = _doc(
        {"a": {"run_seconds": 1.0, "audit_seconds": 2.0, "speedup": 3.0, "rows": 5}}
    )
    current = _doc({"a": {"rows": 5}})
    failures = check_regression.compare(baseline, current, tolerance=0.30)
    assert len(failures) == 1
    for key in ("'run_seconds'", "'audit_seconds'", "'speedup'"):
        assert key in failures[0]
    # Ungated metadata (rows) is not demanded back.
    assert "'rows'" not in failures[0]


def test_p99_latencies_are_ceiling_gated():
    # Tail latencies gate like *_seconds even without the suffix: a p99 that
    # explodes under the same load is a regression in its own right.
    baseline = _doc({"a": {"read_p99_millis": 10.0, "latency_p99": 0.2}})
    ok = _doc({"a": {"read_p99_millis": 11.0, "latency_p99": 0.21}})
    assert check_regression.compare(baseline, ok, tolerance=0.30) == []
    slow = _doc({"a": {"read_p99_millis": 30.0, "latency_p99": 0.2}})
    failures = check_regression.compare(baseline, slow, tolerance=0.30)
    assert len(failures) == 1 and "read_p99_millis" in failures[0]


def test_rejected_frac_is_band_gated_both_ways():
    """The 429 rate of a saturation bench must stay in a band around its
    baseline: collapsing to zero (backpressure stopped firing) fails just
    like exploding does."""
    baseline = _doc({"a": {"overload_rejected_frac": 0.4}})
    in_band = _doc({"a": {"overload_rejected_frac": 0.45}})
    assert check_regression.compare(baseline, in_band, tolerance=0.30) == []
    collapsed = _doc({"a": {"overload_rejected_frac": 0.0}})
    failures = check_regression.compare(baseline, collapsed, tolerance=0.30)
    assert len(failures) == 1 and "overload_rejected_frac" in failures[0]
    exploded = _doc({"a": {"overload_rejected_frac": 0.95}})
    failures = check_regression.compare(baseline, exploded, tolerance=0.30)
    assert len(failures) == 1 and "overload_rejected_frac" in failures[0]
    gone = _doc({"a": {}})
    failures = check_regression.compare(baseline, gone, tolerance=0.30)
    assert len(failures) == 1 and "'overload_rejected_frac'" in failures[0]


def test_new_current_sections_are_skipped():
    baseline = _doc({"a": {"run_seconds": 1.0}})
    current = _doc({"a": {"run_seconds": 1.0}, "b": {"run_seconds": 9.0}})
    assert check_regression.compare(baseline, current, tolerance=0.30) == []


def test_no_shared_sections_is_reported():
    failures = check_regression.compare(
        _doc({"a": {}}), _doc({"b": {}}), tolerance=0.30
    )
    assert failures and "nothing was compared" in failures[0]


def test_overhead_frac_is_ceiling_gated():
    """Instrumentation overhead fractions (the tracing bench) gate like
    latencies: growing past the tolerance fails, shrinking always passes."""
    baseline = _doc({"a": {"tracing_overhead_frac": 0.02}})
    ok = _doc({"a": {"tracing_overhead_frac": 0.025}})
    assert check_regression.compare(baseline, ok, tolerance=0.30) == []
    cheaper = _doc({"a": {"tracing_overhead_frac": 0.0}})
    assert check_regression.compare(baseline, cheaper, tolerance=0.30) == []
    heavier = _doc({"a": {"tracing_overhead_frac": 0.08}})
    failures = check_regression.compare(baseline, heavier, tolerance=0.30)
    assert len(failures) == 1 and "tracing_overhead_frac" in failures[0]
    gone = _doc({"a": {}})
    failures = check_regression.compare(baseline, gone, tolerance=0.30)
    assert len(failures) == 1 and "'tracing_overhead_frac'" in failures[0]


def test_peak_rss_is_ceiling_gated():
    """Peak-RSS metrics (the out-of-core scale bench) gate like latencies:
    the additive slack is negligible against megabytes, so the gate is
    effectively the pure ratio ceiling."""
    baseline = _doc({"a": {"peak_rss_mb": 400.0, "resident_peak_rss_mb": 900.0}})
    ok = _doc({"a": {"peak_rss_mb": 480.0, "resident_peak_rss_mb": 900.0}})
    assert check_regression.compare(baseline, ok, tolerance=0.30) == []
    slimmer = _doc({"a": {"peak_rss_mb": 200.0, "resident_peak_rss_mb": 400.0}})
    assert check_regression.compare(baseline, slimmer, tolerance=0.30) == []
    bloated = _doc({"a": {"peak_rss_mb": 600.0, "resident_peak_rss_mb": 900.0}})
    failures = check_regression.compare(baseline, bloated, tolerance=0.30)
    assert len(failures) == 1 and "peak_rss_mb" in failures[0]
    gone = _doc({"a": {"resident_peak_rss_mb": 900.0}})
    failures = check_regression.compare(baseline, gone, tolerance=0.30)
    assert len(failures) == 1 and "'peak_rss_mb'" in failures[0]
