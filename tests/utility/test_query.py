"""Tests for the aggregate-query workload machinery."""

import numpy as np
import pytest

from repro.anonymize.anonymizer import anonymize
from repro.anonymize.partition import AnonymizedRelease
from repro.exceptions import UtilityError
from repro.privacy.models import KAnonymity
from repro.utility.query import (
    AggregateQuery,
    QueryWorkloadGenerator,
    average_relative_error,
    estimated_count,
    true_count,
)


@pytest.fixture(scope="module")
def adult_and_release():
    from repro.data.adult import generate_adult

    table = generate_adult(800, seed=13)
    release = anonymize(table, KAnonymity(4)).release
    return table, release


def test_generator_validation(adult_and_release):
    table, _ = adult_and_release
    with pytest.raises(UtilityError):
        QueryWorkloadGenerator(table, query_dimension=0, selectivity=0.1)
    with pytest.raises(UtilityError):
        QueryWorkloadGenerator(table, query_dimension=99, selectivity=0.1)
    with pytest.raises(UtilityError):
        QueryWorkloadGenerator(table, query_dimension=2, selectivity=0.0)
    generator = QueryWorkloadGenerator(table, query_dimension=2, selectivity=0.1)
    with pytest.raises(UtilityError):
        generator.generate(0)


def test_generated_queries_have_requested_dimension(adult_and_release):
    table, _ = adult_and_release
    generator = QueryWorkloadGenerator(table, query_dimension=3, selectivity=0.1, seed=1)
    queries = generator.generate(20)
    assert len(queries) == 20
    for query in queries:
        assert query.dimension == 3
        assert query.sensitive_values  # sensitive predicate present by default


def test_generator_determinism(adult_and_release):
    table, _ = adult_and_release
    first = QueryWorkloadGenerator(table, query_dimension=2, selectivity=0.1, seed=3).generate(5)
    second = QueryWorkloadGenerator(table, query_dimension=2, selectivity=0.1, seed=3).generate(5)
    assert first == second


def test_selectivity_controls_true_counts(adult_and_release):
    """Queries with larger target selectivity match more tuples on average."""
    table, _ = adult_and_release
    small = QueryWorkloadGenerator(table, query_dimension=2, selectivity=0.03, seed=5).generate(60)
    large = QueryWorkloadGenerator(table, query_dimension=2, selectivity=0.2, seed=5).generate(60)
    small_mean = np.mean([true_count(table, q) for q in small])
    large_mean = np.mean([true_count(table, q) for q in large])
    assert large_mean > small_mean


def test_true_count_manual_query(adult_and_release):
    table, _ = adult_and_release
    query = AggregateQuery(
        numeric_predicates=(("Age", 30.0, 40.0),),
        categorical_predicates=(("Gender", frozenset({"Male"})),),
        sensitive_values=frozenset(),
    )
    expected = int(
        (
            (table.column("Age") >= 30)
            & (table.column("Age") <= 40)
            & (table.column("Gender") == "Male")
        ).sum()
    )
    assert true_count(table, query) == expected


def test_estimated_count_exact_for_singleton_groups(adult_and_release):
    """With singleton groups the uniform assumption is exact, so estimates match truth."""
    table, _ = adult_and_release
    singleton_release = AnonymizedRelease(
        table, [np.array([i]) for i in range(table.n_rows)]
    )
    generator = QueryWorkloadGenerator(table, query_dimension=2, selectivity=0.1, seed=2)
    for query in generator.generate(10):
        assert estimated_count(singleton_release, query) == pytest.approx(
            true_count(table, query), abs=1e-9
        )


def test_estimated_count_nonnegative_and_bounded(adult_and_release):
    table, release = adult_and_release
    generator = QueryWorkloadGenerator(table, query_dimension=3, selectivity=0.1, seed=8)
    for query in generator.generate(20):
        estimate = estimated_count(release, query)
        assert estimate >= 0.0
        assert estimate <= table.n_rows


def test_query_without_sensitive_predicate(adult_and_release):
    table, release = adult_and_release
    generator = QueryWorkloadGenerator(
        table, query_dimension=2, selectivity=0.1, include_sensitive=False, seed=4
    )
    queries = generator.generate(10)
    assert all(not query.sensitive_values for query in queries)
    error = average_relative_error(release, queries)
    assert error >= 0.0


def test_average_relative_error_skips_empty_queries(adult_and_release):
    table, release = adult_and_release
    empty_query = AggregateQuery(
        numeric_predicates=(("Age", 200.0, 300.0),),  # matches nothing
    )
    real_queries = QueryWorkloadGenerator(
        table, query_dimension=2, selectivity=0.15, seed=6
    ).generate(30)
    with_empty = average_relative_error(release, real_queries + [empty_query])
    without_empty = average_relative_error(release, real_queries)
    assert with_empty == pytest.approx(without_empty)


def test_average_relative_error_requires_nonempty_workload(adult_and_release):
    _, release = adult_and_release
    with pytest.raises(UtilityError):
        average_relative_error(release, [])


def test_error_all_queries_below_minimum(adult_and_release):
    table, release = adult_and_release
    empty_query = AggregateQuery(numeric_predicates=(("Age", 200.0, 300.0),))
    with pytest.raises(UtilityError):
        average_relative_error(release, [empty_query])


def test_finer_release_answers_more_accurately(adult_and_release):
    """Utility intuition: smaller groups give lower aggregate query error."""
    table, _ = adult_and_release
    fine = anonymize(table, KAnonymity(4)).release
    coarse = anonymize(table, KAnonymity(80)).release
    queries = QueryWorkloadGenerator(table, query_dimension=3, selectivity=0.15, seed=10).generate(
        80
    )
    assert average_relative_error(fine, queries) < average_relative_error(coarse, queries)
