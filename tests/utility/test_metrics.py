"""Tests for the general utility measures (DM and GCP)."""

import numpy as np
import pytest

from repro.anonymize.anonymizer import anonymize
from repro.anonymize.partition import AnonymizedRelease
from repro.data.examples import table_i_groups, table_i_patients
from repro.exceptions import UtilityError
from repro.privacy.models import DistinctLDiversity, KAnonymity
from repro.utility.metrics import (
    average_group_size,
    discernibility_metric,
    global_certainty_penalty,
    group_certainty_penalty,
    utility_report,
)


@pytest.fixture()
def paper_release():
    table = table_i_patients()
    return AnonymizedRelease(table, table_i_groups())


def test_dm_of_paper_release(paper_release):
    # Three groups of three tuples: DM = 3 * 3^2 = 27.
    assert discernibility_metric(paper_release) == pytest.approx(27.0)


def test_dm_extremes(patients):
    one_group = AnonymizedRelease(patients, [np.arange(patients.n_rows)])
    singletons = AnonymizedRelease(patients, [np.array([i]) for i in range(patients.n_rows)])
    assert discernibility_metric(one_group) == pytest.approx(patients.n_rows**2)
    assert discernibility_metric(singletons) == pytest.approx(patients.n_rows)


def test_group_certainty_penalty_values(paper_release):
    # Group 0 of Table I(b): Age spans [45,69] of global range [42,69]; Sex covers both values.
    penalty = group_certainty_penalty(paper_release, 0)
    age_share = (69 - 45) / (69 - 42)
    assert penalty == pytest.approx(age_share + 1.0)
    # Group 1: Age [42,47], Sex = F only (no penalty for Sex).
    penalty_1 = group_certainty_penalty(paper_release, 1)
    assert penalty_1 == pytest.approx((47 - 42) / (69 - 42))


def test_group_certainty_penalty_index_check(paper_release):
    with pytest.raises(UtilityError):
        group_certainty_penalty(paper_release, 99)


def test_gcp_is_size_weighted_sum(paper_release):
    expected = sum(
        len(paper_release.groups[i]) * group_certainty_penalty(paper_release, i)
        for i in range(paper_release.n_groups)
    )
    assert global_certainty_penalty(paper_release) == pytest.approx(expected)


def test_gcp_extremes(patients):
    singletons = AnonymizedRelease(patients, [np.array([i]) for i in range(patients.n_rows)])
    assert global_certainty_penalty(singletons) == pytest.approx(0.0)
    one_group = AnonymizedRelease(patients, [np.arange(patients.n_rows)])
    d = len(patients.quasi_identifier_names)
    assert global_certainty_penalty(one_group) == pytest.approx(patients.n_rows * d)
    assert global_certainty_penalty(one_group, normalised=True) == pytest.approx(1.0)


def test_average_group_size(paper_release):
    assert average_group_size(paper_release) == pytest.approx(3.0)


def test_utility_report_keys(paper_release):
    report = utility_report(paper_release)
    assert set(report) == {
        "n_groups",
        "average_group_size",
        "discernibility_metric",
        "global_certainty_penalty",
        "normalised_certainty_penalty",
    }
    assert report["n_groups"] == 3.0


def test_utility_improves_with_weaker_privacy(tiny_adult):
    """Stricter requirements force coarser groups, which costs DM and GCP."""
    weak = anonymize(tiny_adult, KAnonymity(2)).release
    strong = anonymize(tiny_adult, DistinctLDiversity(5), k=5).release
    assert discernibility_metric(weak) < discernibility_metric(strong)
    assert global_certainty_penalty(weak) < global_certainty_penalty(strong)


def test_gcp_uses_taxonomy_leaf_counts(tiny_adult):
    """With a taxonomy, a group's categorical penalty counts the leaves under the LCA."""
    release = anonymize(tiny_adult, KAnonymity(20)).release
    value = global_certainty_penalty(release)
    assert value > 0.0
    normalised = global_certainty_penalty(release, normalised=True)
    assert 0.0 < normalised <= 1.0
