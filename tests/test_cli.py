"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import build_parser, main
from repro.data.adult import adult_schema
from repro.data.io import read_csv


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_generate_writes_csv(tmp_path, capsys):
    output = tmp_path / "adult.csv"
    code = main(["generate", "--rows", "120", "--seed", "7", "--output", str(output)])
    assert code == 0
    assert "wrote 120 rows" in capsys.readouterr().out
    table = read_csv(output, adult_schema())
    assert table.n_rows == 120


def test_generate_is_deterministic(tmp_path):
    first = tmp_path / "a.csv"
    second = tmp_path / "b.csv"
    main(["generate", "--rows", "50", "--seed", "3", "--output", str(first)])
    main(["generate", "--rows", "50", "--seed", "3", "--output", str(second)])
    assert first.read_text() == second.read_text()


def test_anonymize_synthetic_table(tmp_path, capsys):
    output = tmp_path / "release.csv"
    code = main(
        [
            "anonymize",
            "--rows", "300",
            "--model", "bt",
            "--b", "0.3",
            "--t", "0.25",
            "--k", "3",
            "--output", str(output),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "groups" in out and "DM=" in out
    with output.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 300
    # Quasi-identifiers are generalized (ranges or labels), sensitive values are exact.
    assert any("[" in row["Age"] for row in rows)
    assert all(row["Occupation"] for row in rows)


def test_anonymize_from_csv_input(tmp_path):
    source = tmp_path / "source.csv"
    release = tmp_path / "release.csv"
    main(["generate", "--rows", "200", "--seed", "5", "--output", str(source)])
    code = main(
        [
            "anonymize",
            "--input", str(source),
            "--model", "distinct-l",
            "--l", "3",
            "--k", "3",
            "--output", str(release),
        ]
    )
    assert code == 0
    with release.open() as handle:
        assert len(list(csv.DictReader(handle))) == 200


def test_attack_reports_vulnerable_tuples(capsys):
    code = main(
        [
            "attack",
            "--rows", "300",
            "--model", "distinct-l",
            "--l", "3",
            "--k", "3",
            "--t", "0.25",
            "--b-prime", "0.3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "vulnerable tuples:" in out
    assert "worst-case knowledge gain:" in out


def test_attack_bt_matched_adversary_is_safe(capsys):
    code = main(
        [
            "attack",
            "--rows", "300",
            "--model", "bt",
            "--b", "0.3",
            "--t", "0.25",
            "--k", "3",
            "--b-prime", "0.3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "vulnerable tuples: 0 /" in out


def test_figure_command_prints_table(capsys):
    code = main(["figure", "--id", "2", "--rows", "400", "--seed", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "N value" in out


def test_figure_rejects_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "--id", "99", "--rows", "200"])


def test_model_choices_sourced_from_registry():
    from repro.api import MODELS

    parser = build_parser()
    args = parser.parse_args(["anonymize", "--model", "bt", "--output", "x.csv"])
    assert args.model == "bt"
    for name in MODELS.names():
        parser.parse_args(["anonymize", "--model", name, "--output", "x.csv"])
    with pytest.raises(SystemExit):
        parser.parse_args(["anonymize", "--model", "not-a-model", "--output", "x.csv"])


def test_distinct_l_rejects_non_integer_l(tmp_path, capsys):
    code = main(
        [
            "anonymize",
            "--rows", "100",
            "--model", "distinct-l",
            "--l", "2.5",
            "--k", "2",
            "--output", str(tmp_path / "x.csv"),
        ]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "integer" in err


def test_sweep_runs_model_grid(capsys):
    code = main(
        [
            "sweep",
            "--rows", "250",
            "--seed", "7",
            "--k", "3",
            "--t", "0.25",
            "--l", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    # The default grid spans the paper's four models through one session.
    assert "4 configurations" in out
    for label in ("bt(", "distinct-l(", "probabilistic-l(", "t-closeness("):
        assert label in out
    assert "vulnerable_tuples" in out
    assert "1 prior estimation(s)" in out


def test_sweep_explicit_models_and_no_audit(capsys):
    code = main(
        [
            "sweep",
            "--rows", "250",
            "--seed", "7",
            "--k", "3",
            "--t", "0.25",
            "--l", "3",
            "--model", "distinct-l",
            "--model", "entropy-l",
            "--model", "t-closeness",
            "--no-audit",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "3 configurations" in out
    assert "entropy-l(" in out
    assert "vulnerable_tuples" not in out


def test_error_paths_return_nonzero(tmp_path, capsys):
    # Impossible requirement: more distinct values than the domain holds.
    code = main(
        [
            "anonymize",
            "--rows", "100",
            "--model", "distinct-l",
            "--l", "50",
            "--k", "2",
            "--output", str(tmp_path / "x.csv"),
        ]
    )
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_audit_reports_skyline(capsys, tmp_path):
    import json

    output = tmp_path / "audit.json"
    code = main([
        "audit", "--rows", "250", "--seed", "5", "--model", "distinct-l", "--l", "3",
        "--k", "3", "--skyline", "0.1:0.3,0.4:0.25", "--json", str(output),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "skyline audit" in out and "2 adversaries" in out
    payload = json.loads(output.read_text())
    assert payload["skyline_size"] == 2
    assert [entry["t"] for entry in payload["adversaries"]] == [0.3, 0.25]


def test_audit_defaults_to_model_point_and_fail_on_breach(capsys):
    # A bt release audited against its own (b, t) must satisfy the skyline.
    code = main([
        "audit", "--rows", "250", "--seed", "5", "--model", "bt",
        "--b", "0.3", "--t", "0.3", "--k", "3", "--fail-on-breach",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 adversaries (SATISFIED)" in out
    # An impossible budget breaches and, with --fail-on-breach, exits 3.
    code = main([
        "audit", "--rows", "250", "--seed", "5", "--model", "distinct-l", "--l", "3",
        "--k", "3", "--skyline", "0.3:0.0", "--fail-on-breach",
    ])
    assert code == 3


@pytest.mark.parametrize("command", ["anonymize", "attack", "audit", "sweep", "stream"])
def test_max_cells_rejects_malformed_budgets(capsys, command):
    # Malformed/negative budgets are caught by argparse validation: usage
    # error, exit 2, one line on stderr instead of a traceback - like --skyline.
    for bad in ("-1", "abc", "1.5", ""):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--rows", "100", "--max-cells", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cell budget" in err
        assert "Traceback" not in err


def test_max_cells_threads_through_audit(capsys):
    # A tiny budget forces the blocked contraction; the audit still runs and
    # reports the same shape of output.
    code = main([
        "audit", "--rows", "150", "--model", "distinct-l", "--l", "3", "--k", "3",
        "--max-cells", "40", "--skyline", "0.2:0.4,0.4:0.4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "skyline audit" in out and "2 adversaries" in out


def test_max_cells_zero_selects_flat_reference(capsys, tmp_path):
    code = main([
        "anonymize", "--rows", "120", "--model", "bt", "--b", "0.3", "--t", "0.35",
        "--k", "3", "--max-cells", "0", "--output", str(tmp_path / "release.csv"),
    ])
    assert code == 0
    assert "anonymized 120 rows" in capsys.readouterr().out


def test_audit_rejects_bad_skyline_spec(capsys):
    # Malformed specs are caught by argparse validation: usage error, exit 2,
    # one line on stderr instead of a traceback.
    for spec in ("0.3", "a:b", ",", "b:t:x", "0.3:-0.1", "-0.2:0.1", "0.3:1.5"):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "audit", "--rows", "200", "--model", "distinct-l", "--l", "3",
                "--k", "3", "--skyline", spec,
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "skyline" in err
        assert "Traceback" not in err


def test_stream_publishes_versions(capsys):
    code = main([
        "stream", "--rows", "400", "--batch-size", "60", "--batches", "2",
        "--model", "distinct-l", "--l", "3", "--k", "3",
        "--skyline", "0.3:0.35",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "v0: seed 400 rows" in out
    assert "v1: +60 rows" in out and "v2: +60 rows" in out
    assert "reused" in out and "rebuilt" in out


def test_stream_writes_json_lineage(tmp_path, capsys):
    lineage_path = tmp_path / "lineage.json"
    code = main([
        "stream", "--rows", "400", "--batch-size", "50", "--batches", "2",
        "--model", "distinct-l", "--l", "3", "--k", "3",
        "--skyline", "0.3:0.35", "--json", str(lineage_path),
    ])
    assert code == 0
    payload = json.loads(lineage_path.read_text())
    assert len(payload["versions"]) == 3
    assert payload["versions"][1]["delta"]["appended_rows"] == 50
    assert "audit" in payload["versions"][0]
    assert "audit_delta" in payload["versions"][1]


def test_stream_fail_on_breach_exits_3(capsys):
    # A t=0.01 budget is unsatisfiable for the seed release: every version
    # breaches and --fail-on-breach must report it via exit status 3.
    code = main([
        "stream", "--rows", "400", "--batch-size", "50", "--batches", "1",
        "--model", "distinct-l", "--l", "3", "--k", "3",
        "--skyline", "0.3:0.01", "--fail-on-breach",
    ])
    assert code == 3
    assert "BREACH" in capsys.readouterr().out


def test_stream_rejects_malformed_skyline(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "stream", "--rows", "200", "--model", "distinct-l", "--l", "3",
            "--skyline", "0.3",
        ])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "skyline" in err and "Traceback" not in err


def test_stream_rejects_bad_batch_configuration(capsys):
    code = main([
        "stream", "--rows", "200", "--model", "distinct-l", "--l", "3",
        "--batches", "0",
    ])
    assert code == 1
    assert "batch" in capsys.readouterr().err


def test_stream_full_lifecycle_with_store_and_resume(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    code = main([
        "stream", "--rows", "300", "--batch-size", "40", "--batches", "2",
        "--model", "distinct-l", "--l", "2", "--k", "2",
        "--skyline", "0.3:0.5",
        "--delete-frac", "0.25", "--update-frac", "0.25",
        "--store-dir", store_dir,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "v1: +40 rows" in out
    assert "v2: -10 rows" in out  # the delete slice of each round
    assert "v3: ~10 rows" in out  # the update slice of each round
    assert (tmp_path / "store" / "lineage.jsonl").exists()
    assert (tmp_path / "store" / "state.json").exists()

    # Resume from the persisted store and keep streaming.
    code = main([
        "stream", "--rows", "300", "--batch-size", "40", "--batches", "1",
        "--model", "distinct-l", "--l", "2", "--k", "2",
        "--resume", "--store-dir", store_dir,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "resumed at v6" in out
    assert "v7: +40 rows" in out


def test_stream_rejects_malformed_fractions(capsys):
    for flag, value in (("--delete-frac", "1.5"), ("--update-frac", "nope")):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "stream", "--rows", "200", "--model", "distinct-l", "--l", "3",
                flag, value,
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "fraction" in err and "Traceback" not in err


def test_stream_rejects_bad_compact_drift(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "stream", "--rows", "200", "--model", "distinct-l", "--l", "3",
            "--compact-drift", "0",
        ])
    assert excinfo.value.code == 2
    assert "positive" in capsys.readouterr().err


def test_stream_resume_requires_store_dir(capsys):
    code = main([
        "stream", "--rows", "200", "--model", "distinct-l", "--l", "3",
        "--resume",
    ])
    assert code == 1
    assert "--store-dir" in capsys.readouterr().err


def test_serve_requires_data_dir(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "--data-dir" in err and "Traceback" not in err


def test_serve_rejects_malformed_ports(capsys, tmp_path):
    # Malformed/out-of-range ports are argparse usage errors: exit 2, one
    # line on stderr, no traceback - same contract as --skyline/--max-cells.
    for bad in ("-1", "65536", "abc", "8.5", ""):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--data-dir", str(tmp_path), "--port", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error: argument --port" in err and "Traceback" not in err


def test_serve_rejects_malformed_hosts(capsys, tmp_path):
    for bad in ("", "   ", "bad host", "http://x/y"):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--data-dir", str(tmp_path), "--host", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "host" in err and "Traceback" not in err


def test_serve_rejects_malformed_coalesce_windows(capsys, tmp_path):
    for bad in ("-1", "nan", "inf", "soon", ""):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--data-dir", str(tmp_path), "--coalesce-ms", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "coalescing window" in err and "Traceback" not in err


def test_serve_rejects_data_dir_colliding_with_a_file(capsys, tmp_path):
    collision = tmp_path / "not-a-dir"
    collision.write_text("occupied")
    for bad in (str(collision), ""):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--data-dir", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "data dir" in err and "Traceback" not in err


def test_serve_reports_bind_failures_as_one_line_errors(capsys, tmp_path):
    # An unresolvable host passes syntactic validation but cannot bind; the
    # daemon wraps the OSError as a ReproError -> exit 1, one line, no trace.
    code = main([
        "serve", "--data-dir", str(tmp_path),
        "--host", "definitely-not-a-host-xyz.invalid", "--port", "0",
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "cannot serve" in err and "Traceback" not in err


def test_stream_trace_out_writes_one_nested_span_tree(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main([
        "stream", "--rows", "300", "--batch-size", "40", "--batches", "2",
        "--model", "distinct-l", "--l", "3", "--k", "3",
        "--skyline", "0.3:0.35", "--trace-out", str(trace_path),
    ])
    assert code == 0
    assert "wrote span trace to" in capsys.readouterr().out
    trace = json.loads(trace_path.read_text())
    # The whole run - seed publish plus every batch - is one tree under the
    # enclosing cli.stream span, with each publication a publish.* child.
    assert trace["name"] == "cli.stream"
    assert trace["attributes"]["batches"] == 2
    publishes = [
        child["name"] for child in trace["children"]
        if child["name"].startswith("publish.")
    ]
    assert publishes == ["publish.full", "publish.append", "publish.append"]
    for child in trace["children"]:
        assert child["duration_s"] <= trace["duration_s"]
        assert child["start_s"] >= 0.0


def test_anonymize_trace_out_captures_the_pipeline(tmp_path):
    trace_path = tmp_path / "trace.json"
    code = main([
        "anonymize", "--rows", "200", "--model", "distinct-l", "--l", "3",
        "--k", "2", "--output", str(tmp_path / "release.csv"),
        "--trace-out", str(trace_path),
    ])
    assert code == 0
    trace = json.loads(trace_path.read_text())
    assert trace["duration_s"] > 0.0
    assert trace["children"], "the pipeline stages are recorded as spans"


def test_trace_out_rejects_malformed_paths(tmp_path, capsys):
    # A directory, and a file in a directory that does not exist: both are
    # argparse-level failures -> exit 2, one line, no traceback.
    for bad in (str(tmp_path), str(tmp_path / "absent" / "trace.json"), ""):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "stream", "--rows", "200", "--model", "distinct-l", "--l", "3",
                "--trace-out", bad,
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "bad trace path" in err and "Traceback" not in err


def test_chunk_rows_rejects_malformed_sizes(capsys):
    # Same house style as --max-cells/--skyline: argparse usage error, exit 2,
    # one line on stderr, no traceback.
    for bad in ("0", "-4", "abc", "1.5", ""):
        with pytest.raises(SystemExit) as excinfo:
            main(["audit", "--rows", "100", "--chunk-rows", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "chunk size" in err
        assert "Traceback" not in err


def test_generate_npz_then_chunked_audit(capsys, tmp_path):
    source = tmp_path / "adult.npz"
    code = main(["generate", "--rows", "300", "--seed", "5", "--output", str(source)])
    assert code == 0
    assert "300 rows" in capsys.readouterr().out
    code = main([
        "audit", "--input", str(source), "--chunk-rows", "64",
        "--model", "distinct-l", "--l", "3", "--k", "3",
        "--skyline", "0.2:0.4,0.4:0.4",
    ])
    assert code == 0
    assert "skyline audit" in capsys.readouterr().out


def test_csv_and_npz_inputs_give_identical_releases(capsys, tmp_path):
    csv_source = tmp_path / "adult.csv"
    npz_source = tmp_path / "adult.npz"
    main(["generate", "--rows", "250", "--seed", "9", "--output", str(csv_source)])
    main(["generate", "--rows", "250", "--seed", "9", "--output", str(npz_source)])
    capsys.readouterr()
    from_csv = tmp_path / "from-csv.csv"
    from_npz = tmp_path / "from-npz.csv"
    for source, release in ((csv_source, from_csv), (npz_source, from_npz)):
        code = main([
            "anonymize", "--input", str(source), "--chunk-rows", "100",
            "--model", "distinct-l", "--l", "3", "--k", "3",
            "--output", str(release),
        ])
        assert code == 0
    assert from_csv.read_text() == from_npz.read_text()
