"""The shared counter/histogram primitives and their two consumers.

``repro.stats`` exists so that ``Session.stats`` and the serving daemon's
metrics are the *same* implementation - the last tests here pin that reuse.
"""

import threading

import pytest

from repro.api.session import SessionStats
from repro.serve.metrics import ServeMetrics, StreamMetrics
from repro.stats import CounterSet, Histogram

# -- CounterSet ----------------------------------------------------------------------------


def test_counters_start_at_zero_and_support_attribute_math():
    counters = CounterSet(("hits", "misses"))
    assert counters.hits == 0
    counters.hits += 1
    counters.hits += 2
    counters.misses = 5
    assert counters.hits == 3
    assert counters.as_dict() == {"hits": 3, "misses": 5}


def test_counter_set_is_fixed_at_construction():
    counters = CounterSet(("hits",))
    with pytest.raises(AttributeError, match="no counter 'misses'"):
        _ = counters.misses
    with pytest.raises(AttributeError, match="fixed at construction"):
        counters.misses = 1
    with pytest.raises(AttributeError):
        counters.increment("misses")


def test_increment_is_thread_safe():
    counters = CounterSet(("events",))

    def bump():
        for _ in range(1000):
            counters.increment("events")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counters.events == 8000


# -- Histogram -----------------------------------------------------------------------------


def test_histogram_summary_before_any_observation():
    summary = Histogram().summary()
    assert summary["count"] == 0
    assert summary["mean"] is None
    assert summary["p99"] is None


def test_histogram_nearest_rank_percentiles():
    histogram = Histogram()
    for value in range(1, 101):  # 1..100
        histogram.observe(float(value))
    assert histogram.count == 100
    assert histogram.total == pytest.approx(5050.0)
    assert histogram.percentile(0.0) == 1.0
    assert histogram.percentile(50.0) == 50.0
    assert histogram.percentile(99.0) == 99.0
    assert histogram.percentile(100.0) == 100.0
    with pytest.raises(ValueError):
        histogram.percentile(101.0)


def test_histogram_window_is_bounded_but_count_is_exact():
    histogram = Histogram(max_samples=8)
    for value in range(100):
        histogram.observe(float(value))
    # Exact aggregates survive the eviction; percentiles use the recent window.
    assert histogram.count == 100
    assert histogram.summary()["min"] == 0.0
    assert histogram.summary()["max"] == 99.0
    assert histogram.percentile(0.0) >= 92.0


# -- the two consumers share the implementation --------------------------------------------


def test_session_stats_is_a_counter_set():
    stats = SessionStats()
    assert isinstance(stats, CounterSet)
    stats.prior_estimations += 1
    assert stats.as_dict()["prior_estimations"] == 1
    with pytest.raises(AttributeError):
        stats.not_a_counter = 1


def test_serve_metrics_reuse_the_shared_primitives():
    stream = StreamMetrics()
    assert isinstance(stream.counters, CounterSet)
    assert isinstance(stream.publish_seconds, Histogram)

    serve = ServeMetrics()
    assert isinstance(serve.counters, CounterSet)
    serve.observe_request("GET", 0.01, error=False)
    serve.observe_request("POST", 0.20, error=False)
    serve.observe_request("POST", 0.30, error=True)
    snapshot = serve.as_dict()
    assert snapshot["counters"] == {"requests": 3, "reads": 1, "writes": 2, "errors": 1}
    assert snapshot["read_seconds"]["count"] == 1
    assert snapshot["write_seconds"]["count"] == 2
    assert snapshot["uptime_seconds"] >= 0.0
