"""The skyline audit engine must reproduce the per-adversary attack exactly."""

import numpy as np
import pytest

from repro.anonymize.anonymizer import anonymize
from repro.audit import SkylineAuditEngine, audit_skyline
from repro.exceptions import AuditError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import kernel_prior
from repro.privacy.disclosure import BackgroundKnowledgeAttack
from repro.privacy.models import DistinctLDiversity

SKYLINE = ((0.1, 0.3), (0.3, 0.25), (0.5, 0.2))


@pytest.fixture(scope="module")
def release(audit_table):
    return anonymize(audit_table, DistinctLDiversity(3), k=3).release


@pytest.fixture(scope="module")
def audit_table():
    from repro.data.adult import generate_adult

    return generate_adult(400, seed=13)


@pytest.fixture(scope="module")
def loop_results(audit_table, release):
    return [
        BackgroundKnowledgeAttack(audit_table, b).attack(release.groups, t)
        for b, t in SKYLINE
    ]


@pytest.mark.parametrize("method", ["omega", "exact"])
def test_engine_matches_per_adversary_loop(audit_table, release, method):
    if method == "exact":
        # Exact inference is only affordable on the first few groups.
        groups = [g for g in release.groups if len(g) <= 8][:10]
    else:
        groups = release.groups
    loop = [
        BackgroundKnowledgeAttack(audit_table, b, method=method).attack(groups, t)
        for b, t in SKYLINE
    ]
    report = SkylineAuditEngine(audit_table, SKYLINE, method=method).audit(groups)
    for entry, reference in zip(report.entries, loop):
        np.testing.assert_allclose(entry.attack.risks, reference.risks, atol=1e-9)
        assert entry.attack.vulnerable_tuples == reference.vulnerable_tuples
        assert entry.attack.worst_case_risk == pytest.approx(reference.worst_case_risk)


def test_satisfied_flags_match_budgets(audit_table, release, loop_results):
    report = SkylineAuditEngine(audit_table, SKYLINE).audit(release.groups)
    for entry, (_, t) in zip(report.entries, SKYLINE):
        assert entry.satisfied == (entry.attack.worst_case_risk <= t + 1e-12)
        assert entry.margin == pytest.approx(t - entry.attack.worst_case_risk)
    assert report.satisfied == all(entry.satisfied for entry in report.entries)
    assert report.worst_entry().margin == min(e.margin for e in report.entries)


def test_chunked_audit_is_equivalent(audit_table, release):
    full = SkylineAuditEngine(audit_table, SKYLINE).audit(release.groups)
    chunked = SkylineAuditEngine(audit_table, SKYLINE, chunk_rows=17).audit(release.groups)
    for a, b in zip(full.entries, chunked.entries):
        np.testing.assert_allclose(a.attack.risks, b.attack.risks, atol=1e-12)


def test_multiprocessing_path_is_equivalent(audit_table, release):
    serial = SkylineAuditEngine(audit_table, SKYLINE).audit(release.groups)
    parallel = SkylineAuditEngine(audit_table, SKYLINE).audit(release.groups, processes=2)
    for a, b in zip(serial.entries, parallel.entries):
        np.testing.assert_allclose(a.attack.risks, b.attack.risks, atol=1e-12)
        assert a.attack.vulnerable_tuples == b.attack.vulnerable_tuples


def test_per_attribute_bandwidth_points(audit_table, release):
    names = list(audit_table.quasi_identifier_names)
    bandwidth = Bandwidth.split(names[:3], 0.2, names[3:], 0.5)
    report = SkylineAuditEngine(audit_table, [(bandwidth, 0.25)]).audit(release.groups)
    reference = BackgroundKnowledgeAttack(
        audit_table, 0.0, priors=kernel_prior(audit_table, bandwidth)
    ).attack(release.groups, 0.25)
    np.testing.assert_allclose(report.entries[0].attack.risks, reference.risks, atol=1e-9)
    assert np.isnan(report.entries[0].adversary.scalar_b)
    assert report.entries[0].as_dict()["b"] is None


def test_injected_priors_skip_estimation(audit_table, release):
    priors = [kernel_prior(audit_table, b) for b, _ in SKYLINE]
    engine = SkylineAuditEngine(audit_table, SKYLINE, priors=priors)
    assert engine.prepared
    report = engine.audit(release.groups)
    assert report.timings["prepare_seconds"] == 0.0


def test_engine_prepares_once_across_audits(audit_table, release):
    engine = SkylineAuditEngine(audit_table, SKYLINE)
    engine.audit(release.groups)
    first = engine.prepare_seconds
    engine.audit(release.groups[:5])
    assert engine.prepare_seconds == first


def test_report_summary_is_json_friendly(audit_table, release):
    import json

    report = SkylineAuditEngine(audit_table, SKYLINE).audit(release.groups)
    payload = report.summary()
    assert payload["skyline_size"] == len(SKYLINE)
    assert payload["groups"] == release.n_groups
    assert len(payload["adversaries"]) == len(SKYLINE)
    json.dumps(payload)  # must serialise without custom encoders
    text = report.render()
    assert "skyline audit" in text and "Adv(" in text


def test_one_call_helper(audit_table, release, loop_results):
    report = audit_skyline(audit_table, release.groups, SKYLINE)
    for entry, reference in zip(report.entries, loop_results):
        np.testing.assert_allclose(entry.attack.risks, reference.risks, atol=1e-9)


def test_configuration_errors(audit_table):
    with pytest.raises(AuditError, match="at least one"):
        SkylineAuditEngine(audit_table, [])
    with pytest.raises(AuditError, match="method"):
        SkylineAuditEngine(audit_table, SKYLINE, method="sampled")
    with pytest.raises(AuditError, match="align"):
        SkylineAuditEngine(audit_table, SKYLINE, priors=[None])
    with pytest.raises(AuditError, match="t must lie"):
        SkylineAuditEngine(audit_table, [(0.3, 1.5)])
    engine = SkylineAuditEngine(audit_table, SKYLINE)
    with pytest.raises(AuditError, match="processes"):
        engine.audit([np.array([0, 1])], processes=0)


def test_priors_accepted_as_generator(audit_table, release, loop_results):
    # A lazily-built priors iterable must not be silently exhausted into an
    # empty (and trivially "satisfied") audit.
    priors = (kernel_prior(audit_table, b) for b, _ in SKYLINE)
    engine = SkylineAuditEngine(audit_table, SKYLINE, priors=priors)
    report = engine.audit(release.groups)
    assert len(report.entries) == len(SKYLINE)
    for entry, reference in zip(report.entries, loop_results):
        np.testing.assert_allclose(entry.attack.risks, reference.risks, atol=1e-9)


# -- dirty-group (incremental) re-audit ---------------------------------------------


def test_audit_incremental_matches_full_audit():
    from repro.data.adult import generate_adult

    full = generate_adult(700, seed=13)
    previous_table = full.select(np.arange(600))
    previous_release = anonymize(previous_table, DistinctLDiversity(3), k=4).release
    previous_report = SkylineAuditEngine(previous_table, SKYLINE).audit(
        previous_release.groups
    )

    # Grow the release naively: appended rows join the last group, a few
    # groups are reused byte-for-byte.
    grown_groups = [group.copy() for group in previous_release.groups]
    grown_groups[-1] = np.sort(
        np.concatenate([grown_groups[-1], np.arange(600, 700, dtype=np.int64)])
    )
    engine = SkylineAuditEngine(full, SKYLINE)
    # Dirty rows: the appended block plus every row whose prior changed.
    previous_priors = SkylineAuditEngine(previous_table, SKYLINE).priors
    masks = []
    for before, after in zip(previous_priors, engine.priors):
        mask = np.ones(full.n_rows, dtype=bool)
        mask[:600] = (after.matrix[:600] != before.matrix).any(axis=1)
        masks.append(mask)
    incremental = engine.audit_incremental(
        grown_groups,
        previous_groups=previous_release.groups,
        previous_report=previous_report,
        dirty_rows=masks,
    )
    reference = SkylineAuditEngine(full, SKYLINE).audit(grown_groups)
    assert incremental.delta is not None
    for recomputed, entry, ref in zip(
        incremental.delta["recomputed_groups"], incremental.entries, reference.entries
    ):
        assert recomputed <= len(grown_groups)
        np.testing.assert_allclose(entry.attack.risks, ref.attack.risks, atol=1e-12)
        assert entry.attack.vulnerable_tuples == ref.attack.vulnerable_tuples
        assert entry.attack.worst_case_risk == pytest.approx(
            ref.attack.worst_case_risk, abs=1e-12
        )


def test_audit_incremental_validates_inputs():
    from repro.data.adult import generate_adult

    table = generate_adult(300, seed=13)
    release = anonymize(table, DistinctLDiversity(3), k=4).release
    engine = SkylineAuditEngine(table, SKYLINE)
    report = engine.audit(release.groups)
    with pytest.raises(AuditError, match="dirty"):
        engine.audit_incremental(
            release.groups,
            previous_groups=release.groups,
            previous_report=report,
            dirty_rows=[np.ones(table.n_rows, dtype=bool)],  # wrong arity
        )
    with pytest.raises(AuditError, match="cover"):
        engine.audit_incremental(
            release.groups,
            previous_groups=release.groups,
            previous_report=report,
            dirty_rows=np.ones(10, dtype=bool),
        )
