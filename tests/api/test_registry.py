"""Tests for the plugin registries (registration, lookup, error reporting)."""

import pytest

from repro.api.registry import ALGORITHMS, MODELS, PRIOR_ESTIMATORS, Registry
from repro.exceptions import (
    AnonymizationError,
    PrivacyModelError,
    RegistryError,
)
from repro.privacy.models import BTPrivacy, DistinctLDiversity, TCloseness


def test_builtin_models_registered():
    for name in ("bt", "distinct-l", "probabilistic-l", "t-closeness", "k-anonymity"):
        assert name in MODELS
    assert "mondrian" in ALGORITHMS and "anatomy" in ALGORITHMS
    assert "kernel" in PRIOR_ESTIMATORS


def test_build_models_from_registry():
    assert isinstance(MODELS.build("bt", b=0.3, t=0.2), BTPrivacy)
    assert isinstance(MODELS.build("distinct-l", l=3), DistinctLDiversity)
    closeness = MODELS.build("t-closeness", t=0.15)
    assert isinstance(closeness, TCloseness)
    assert closeness.t == pytest.approx(0.15)


def test_aliases_resolve_to_canonical_entry():
    assert MODELS.get("(B,t)-privacy") is MODELS.get("bt")
    assert MODELS.get("distinct-l-diversity") is MODELS.get("distinct-l")
    # Aliases are not listed among the canonical names.
    assert "(B,t)-privacy" not in MODELS.names()


def test_unknown_name_error_lists_available():
    with pytest.raises(PrivacyModelError, match="unknown privacy model 'nope'"):
        MODELS.get("nope")
    with pytest.raises(PrivacyModelError, match="bt"):
        MODELS.get("nope")
    with pytest.raises(AnonymizationError, match="unknown anonymization algorithm"):
        ALGORITHMS.get("teleport")


def test_register_and_unregister_plugin():
    registry = Registry("widget")

    @registry.register("square", aliases=("quad",), summary="a square widget")
    def build_square(*, side=1.0):
        return ("square", side)

    assert "square" in registry
    assert "quad" in registry
    assert registry.build("quad", side=2.0) == ("square", 2.0)
    assert registry.summaries()["square"] == "a square widget"
    assert registry.parameters("square") == ("side",)

    registry.unregister("square")
    assert "square" not in registry and "quad" not in registry


def test_duplicate_registration_rejected():
    registry = Registry("widget")
    registry.register("a")(lambda: 1)
    with pytest.raises(RegistryError, match="already registered"):
        registry.register("a")(lambda: 2)
    with pytest.raises(RegistryError, match="already registered"):
        registry.register("b", aliases=("a",))(lambda: 3)


def test_build_filtered_drops_unknown_parameters():
    model = MODELS.build_filtered("distinct-l", {"l": 3, "b": 0.3, "t": 0.2, "k": 4})
    assert isinstance(model, DistinctLDiversity)
    assert model.l == 3


def test_distinct_l_rejects_non_integer():
    with pytest.raises(PrivacyModelError, match="integer"):
        MODELS.build("distinct-l", l=3.5)
    # Integral floats (as the CLI's float-typed --l produces) are accepted.
    assert MODELS.build("distinct-l", l=3.0).l == 3


def test_new_model_plugin_surfaces_in_choices():
    @MODELS.register("test-always-ok", summary="test plugin")
    def build_always_ok():
        return DistinctLDiversity(1)

    try:
        assert "test-always-ok" in MODELS.names()
        assert isinstance(MODELS.build("test-always-ok"), DistinctLDiversity)
    finally:
        MODELS.unregister("test-always-ok")
