"""Tests for parameter sweeps (grid expansion, execution, error handling)."""

import pytest

from repro.api.session import Session
from repro.api.sweep import SweepSpec, expand_grid
from repro.exceptions import PipelineError


def test_expand_grid_cartesian_product():
    specs = expand_grid(model=["bt", "t-closeness"], b=[0.2, 0.3], t=0.2, k=4)
    assert len(specs) == 4
    assert {spec.model for spec in specs} == {"bt", "t-closeness"}
    assert all(spec.k == 4 for spec in specs)
    assert sorted({spec.params["b"] for spec in specs}) == [0.2, 0.3]
    assert all(spec.params["t"] == 0.2 for spec in specs)


def test_expand_grid_requires_model_axis():
    with pytest.raises(PipelineError, match="model"):
        expand_grid(b=[0.2, 0.3])


def test_sweep_heterogeneous_models_share_cache(tiny_adult):
    session = Session(tiny_adult)
    outcome = session.sweep(
        expand_grid(
            model=["bt", "distinct-l", "probabilistic-l", "t-closeness"],
            b=0.3, t=0.25, l=3, k=3,
            audit={"b_prime": 0.3, "threshold": 0.25},
        )
    )
    assert len(outcome.rows) == 4
    assert all(row.ok for row in outcome.rows)
    # One kernel estimation serves the (B,t) model and all four audits.
    assert outcome.stats["prior_estimations"] == 1
    bundles = outcome.bundles()
    bt_label = next(label for label in bundles if label.startswith("bt("))
    assert bundles[bt_label].attack.vulnerable_tuples == 0
    rendered = outcome.render()
    assert "label" in rendered and "vulnerable_tuples" in rendered
    assert len(rendered.splitlines()) == 2 + len(outcome.rows)


def test_sweep_accepts_mappings_and_labels(tiny_adult):
    session = Session(tiny_adult)
    outcome = session.sweep(
        [
            {"model": "distinct-l", "params": {"l": 3}, "k": 3, "label": "baseline"},
            SweepSpec(model="t-closeness", params={"t": 0.25}, k=3, label="closeness"),
        ]
    )
    assert [row.label for row in outcome.rows] == ["baseline", "closeness"]


def test_sweep_on_error_continue_records_failures(tiny_adult):
    session = Session(tiny_adult)
    specs = [
        SweepSpec(model="distinct-l", params={"l": 3}, k=3),
        # Impossible: more distinct sensitive values than the domain holds.
        SweepSpec(model="distinct-l", params={"l": 50}, k=3, label="impossible"),
    ]
    outcome = session.sweep(specs, on_error="continue")
    assert outcome.rows[0].ok
    assert not outcome.rows[1].ok
    assert outcome.rows[1].error
    assert "error" in outcome.render()
    with pytest.raises(Exception):
        session.sweep(specs, on_error="raise")


def test_sweep_rejects_empty_and_bad_arguments(tiny_adult):
    session = Session(tiny_adult)
    with pytest.raises(PipelineError, match="at least one spec"):
        session.sweep([])
    with pytest.raises(PipelineError, match="on_error"):
        session.sweep([SweepSpec(model="distinct-l")], on_error="explode")
    with pytest.raises(PipelineError, match="processes"):
        session.sweep([SweepSpec(model="distinct-l")], processes=0)


def test_sweep_multiprocessing_matches_serial(tiny_adult):
    session = Session(tiny_adult)
    specs = expand_grid(model=["distinct-l", "t-closeness"], t=0.25, l=3, k=3)
    serial = session.sweep(specs)
    parallel = Session(tiny_adult).sweep(specs, processes=2)
    serial_groups = [row.bundle.release.n_groups for row in serial.rows]
    parallel_groups = [row.bundle.release.n_groups for row in parallel.rows]
    assert serial_groups == parallel_groups


def test_parallel_sweep_reports_worker_stats(tiny_adult):
    specs = expand_grid(model=["bt"], b=0.3, t=[0.15, 0.25], k=3)
    outcome = Session(tiny_adult).sweep(specs, processes=2)
    # The estimations happened in workers, but the outcome still reports them.
    assert outcome.stats["prior_estimations"] >= 1


def test_duplicate_labels_are_disambiguated(tiny_adult):
    session = Session(tiny_adult)
    # distinct-l ignores the swept t axis, so both rows resolve to one label.
    specs = expand_grid(model=["distinct-l"], t=[0.1, 0.2], l=3, k=3)
    outcome = session.sweep(specs)
    labels = [row.label for row in outcome.rows]
    assert len(set(labels)) == 2
    assert all(label.endswith(("#1", "#2")) for label in labels)
    assert len(outcome.bundles()) == 2
