"""Tests for the fluent Pipeline and anonymize() back-compat."""

import numpy as np
import pytest

from repro.anonymize.anonymizer import anonymize
from repro.api.pipeline import Pipeline
from repro.api.session import Session
from repro.exceptions import PipelineError
from repro.privacy.models import BTPrivacy, DistinctLDiversity


def test_pipeline_end_to_end(tiny_adult):
    bundle = (
        Pipeline(tiny_adult)
        .model("bt", b=0.3, t=0.25)
        .with_k(3)
        .algorithm("mondrian")
        .audit(b_prime=0.3)
        .run()
    )
    assert bundle.release.n_groups > 1
    assert bundle.release.group_sizes().min() >= 3
    assert "mondrian" in bundle.release.method
    # The matched adversary breaches nothing (the paper's headline property).
    assert bundle.attack.vulnerable_tuples == 0
    assert bundle.attack.threshold == pytest.approx(0.25)  # defaults to the model's t
    assert bundle.utility["discernibility_metric"] > 0
    assert set(bundle.timings) >= {
        "prepare_seconds", "partition_seconds", "audit_seconds",
        "utility_seconds", "total_seconds",
    }
    summary = bundle.summary()
    assert summary["n_groups"] == bundle.release.n_groups
    assert "vulnerable_tuples" in summary
    assert "worst-case" in bundle.render()


def test_pipeline_matches_plain_anonymize(tiny_adult):
    """Back-compat: the old one-call API and the pipeline agree exactly."""
    plain = anonymize(tiny_adult, BTPrivacy(0.3, 0.25), k=4)
    bundle = Pipeline(tiny_adult).model("bt", b=0.3, t=0.25).with_k(4).run()
    assert bundle.release.method == plain.release.method
    assert len(bundle.release.groups) == len(plain.release.groups)
    for a, b in zip(plain.release.groups, bundle.release.groups):
        np.testing.assert_array_equal(a, b)


def test_old_anonymize_signature_still_works(tiny_adult):
    """The pre-pipeline keyword signature keeps working unchanged."""
    result = anonymize(
        tiny_adult,
        DistinctLDiversity(3),
        algorithm="anatomy",
        k=None,
        split_strategy="widest",
        anatomy_l=3,
    )
    assert "anatomy" in result.release.method
    codes = tiny_adult.sensitive_codes()
    for group in result.release.groups:
        assert len(set(codes[group].tolist())) >= 3


def test_anatomy_method_string_built_once(tiny_adult):
    """Requirement misses are reported in a single release construction."""
    from repro.privacy.models import TCloseness

    result = anonymize(tiny_adult, TCloseness(0.01), algorithm="anatomy", anatomy_l=3)
    assert "groups exceed model" in result.release.method


def test_pipeline_accepts_model_instances(tiny_adult):
    bundle = Pipeline(tiny_adult).model(DistinctLDiversity(3)).with_k(3).run()
    assert bundle.release.group_sizes().min() >= 3


def test_pipeline_shares_session_cache(tiny_adult):
    session = Session(tiny_adult)
    session.pipeline().model("bt", b=0.3, t=0.25).with_k(3).run()
    session.pipeline().model("bt", b=0.3, t=0.15).with_k(3).audit(b_prime=0.3).run()
    assert session.stats.prior_estimations == 1


def test_pipeline_requires_model(tiny_adult):
    with pytest.raises(PipelineError, match="no model"):
        Pipeline(tiny_adult).run()


def test_pipeline_requires_table_or_session():
    with pytest.raises(PipelineError, match="table or a session"):
        Pipeline()


def test_audit_threshold_required_for_models_without_t(tiny_adult):
    pipeline = Pipeline(tiny_adult).model("distinct-l", l=3).with_k(3).audit(b_prime=0.3)
    with pytest.raises(PipelineError, match="threshold"):
        pipeline.run()
    bundle = (
        Pipeline(tiny_adult)
        .model("distinct-l", l=3)
        .with_k(3)
        .audit(b_prime=0.3, threshold=0.25)
        .run()
    )
    assert bundle.attack is not None


def test_with_utility_toggle(tiny_adult):
    bundle = Pipeline(tiny_adult).model("distinct-l", l=3).with_utility(False).run()
    assert bundle.utility is None
    assert "utility_seconds" not in bundle.timings


def test_pipeline_prepare_time_includes_prior_estimation(tiny_adult):
    """A cache-miss run reports the kernel estimation in prepare_seconds."""
    session = Session(tiny_adult)
    first = session.pipeline().model("bt", b=0.35, t=0.25).with_k(3).run()
    second = session.pipeline().model("bt", b=0.35, t=0.25).with_k(3).run()
    assert first.timings["prepare_seconds"] > 0.0
    assert second.timings["prepare_seconds"] < first.timings["prepare_seconds"]


def test_custom_algorithm_options_pass_through(tiny_adult):
    import numpy as np

    from repro.api import ALGORITHMS, register_algorithm
    from repro.exceptions import AnonymizationError

    @register_algorithm("test-chunked")
    def run_chunked(table, requirement, *, chunk=50):
        groups = [
            np.arange(i, min(i + chunk, table.n_rows))
            for i in range(0, table.n_rows, chunk)
        ]
        return groups, f"chunked[{chunk}]"

    try:
        bundle = (
            Pipeline(tiny_adult)
            .model("distinct-l", l=2)
            .algorithm("test-chunked", chunk=100)
            .with_utility(False)
            .run()
        )
        assert bundle.release.method == "chunked[100]"
        with pytest.raises(AnonymizationError, match="does not accept option"):
            Pipeline(tiny_adult).model("distinct-l", l=2).algorithm(
                "mondrian", chunk=9
            ).run()
    finally:
        ALGORITHMS.unregister("test-chunked")


def test_anatomy_missing_l_fails_before_preparation(tiny_adult):
    """The validator hook fires before the expensive model preparation."""
    from repro.exceptions import AnonymizationError
    from repro.privacy.models import BTPrivacy

    class ExplodingBT(BTPrivacy):
        def prepare(self, table):  # pragma: no cover - must not be reached
            raise AssertionError("prepare() ran before option validation")

    with pytest.raises(AnonymizationError, match="anatomy_l"):
        anonymize(tiny_adult, ExplodingBT(0.3, 0.2), algorithm="anatomy")


def test_pipeline_audit_skyline_explicit_points(tiny_adult):
    bundle = (
        Pipeline(tiny_adult)
        .model(DistinctLDiversity(3))
        .with_k(3)
        .audit_skyline([(0.2, 0.3), (0.4, 0.25)])
        .run()
    )
    report = bundle.skyline_audit
    assert report is not None and len(report.entries) == 2
    assert "skyline_audit_seconds" in bundle.timings
    assert bundle.summary()["skyline_satisfied"] == report.satisfied
    assert "skyline audit" in bundle.render()


def test_pipeline_audit_skyline_defaults_to_model_points(tiny_adult):
    from repro.privacy.models import SkylineBTPrivacy

    model = SkylineBTPrivacy([(0.2, 0.3), (0.5, 0.3)])
    bundle = (
        Pipeline(tiny_adult).model(model).with_k(3).audit_skyline().run()
    )
    report = bundle.skyline_audit
    assert [entry.adversary.t for entry in report.entries] == [0.3, 0.3]
    # The release was built to satisfy exactly these points, so the audit
    # must come back clean (the Omega-estimate is used on both sides).
    assert report.satisfied


def test_pipeline_audit_skyline_requires_points_for_plain_models(tiny_adult):
    pipeline = Pipeline(tiny_adult).model(DistinctLDiversity(3)).with_k(3).audit_skyline()
    with pytest.raises(PipelineError, match="audit_skyline"):
        pipeline.run()


def test_pipeline_streaming_builds_publisher(tiny_adult):
    publisher = (
        Session(tiny_adult)
        .pipeline()
        .model("bt", b=0.3, t=0.3)
        .with_k(4)
        .audit_skyline([(0.2, 0.35), (0.3, 0.3)])
        .streaming()
    )
    assert len(publisher.store) == 1
    assert len(publisher.skyline) == 2
    version = publisher.append(tiny_adult.rows()[:30])
    assert version.version == 1 and version.report is not None


def test_pipeline_streaming_requires_mondrian(tiny_adult):
    pipeline = Pipeline(tiny_adult).model("distinct-l", l=3).algorithm("anatomy")
    with pytest.raises(PipelineError, match="mondrian"):
        pipeline.streaming()
