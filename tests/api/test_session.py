"""Tests for Session: cached preparation shared across runs."""

import numpy as np
import pytest

from repro.api.session import Session
from repro.knowledge.bandwidth import Bandwidth
from repro.privacy.models import BTPrivacy, CompositeModel, KAnonymity, SkylineBTPrivacy


def test_same_model_twice_estimates_priors_once(tiny_adult):
    session = Session(tiny_adult)
    first = session.anonymize("bt", params={"b": 0.3, "t": 0.25}, k=3)
    second = session.anonymize("bt", params={"b": 0.3, "t": 0.25}, k=3)
    assert session.stats.prior_estimations == 1
    assert session.stats.prior_cache_hits == 1
    # Same requirement, same cached priors -> identical partitions.
    assert len(first.release.groups) == len(second.release.groups)
    for a, b in zip(first.release.groups, second.release.groups):
        np.testing.assert_array_equal(a, b)


def test_different_bandwidths_estimate_separately(tiny_adult):
    session = Session(tiny_adult)
    session.priors(0.3)
    session.priors(0.5)
    session.priors(0.3)
    assert session.stats.prior_estimations == 2
    assert session.stats.prior_cache_hits == 1


def test_scalar_and_uniform_bandwidth_share_a_cache_entry(tiny_adult):
    session = Session(tiny_adult)
    session.priors(0.3)
    uniform = Bandwidth.uniform(tiny_adult.quasi_identifier_names, 0.3)
    session.priors(uniform)
    assert session.stats.prior_estimations == 1
    assert session.stats.prior_cache_hits == 1


def test_differing_max_cells_never_collide_in_the_cache(tiny_adult):
    """Backend config is part of the prior cache key (regression: it wasn't)."""
    session = Session(tiny_adult)
    factored = session.priors(0.3, max_cells=64_000_000)
    flat = session.priors(0.3, max_cells=0)
    assert session.stats.prior_estimations == 2
    assert session.stats.prior_cache_hits == 0
    # Both configs stay individually cached ...
    assert session.priors(0.3, max_cells=64_000_000) is factored
    assert session.priors(0.3, max_cells=0) is flat
    assert session.stats.prior_estimations == 2
    assert session.stats.prior_cache_hits == 2
    # ... and agree numerically (the blocked contraction is exact).
    np.testing.assert_allclose(factored.matrix, flat.matrix, atol=1e-12, rtol=0)


def test_session_default_max_cells_keys_the_cache(tiny_adult):
    session = Session(tiny_adult, max_cells=1_000)
    session.priors(0.3)
    session.priors(0.3, max_cells=1_000)  # explicit == session default: a hit
    session.priors(0.3, max_cells=2_000)  # different budget: a separate entry
    assert session.stats.prior_estimations == 2
    assert session.stats.prior_cache_hits == 1


def test_session_priors_match_direct_estimation(tiny_adult):
    from repro.knowledge.prior import kernel_prior

    session = Session(tiny_adult)
    np.testing.assert_allclose(
        session.priors(0.3).matrix, kernel_prior(tiny_adult, 0.3).matrix
    )


def test_session_release_matches_plain_anonymize(tiny_adult):
    from repro.anonymize.anonymizer import anonymize

    plain = anonymize(tiny_adult, BTPrivacy(0.3, 0.25), k=3)
    session = Session(tiny_adult)
    cached = session.anonymize(BTPrivacy(0.3, 0.25), k=3)
    assert len(plain.release.groups) == len(cached.release.groups)
    for a, b in zip(plain.release.groups, cached.release.groups):
        np.testing.assert_array_equal(a, b)


def test_prepare_model_walks_composites_and_skylines(tiny_adult):
    session = Session(tiny_adult)
    skyline = SkylineBTPrivacy([(0.3, 0.3), (0.5, 0.2)])
    requirement = CompositeModel([KAnonymity(3), skyline])
    session.prepare_model(requirement)
    assert all(point.has_priors for point in skyline.points)
    assert session.stats.prior_estimations == 2  # one per distinct bandwidth
    # The matched (b = 0.3) point shares the cache with a later audit adversary.
    session.attack([np.arange(tiny_adult.n_rows)], b_prime=0.3, threshold=0.3)
    assert session.stats.prior_estimations == 2
    assert session.stats.prior_cache_hits >= 1


def test_attack_adversary_is_cached(tiny_adult):
    session = Session(tiny_adult)
    groups = [np.arange(tiny_adult.n_rows)]
    session.attack(groups, b_prime=0.3, threshold=0.2)
    session.attack(groups, b_prime=0.3, threshold=0.4)
    assert session.stats.attack_builds == 1
    assert session.stats.attack_cache_hits == 1


def test_baseline_estimators_available(tiny_adult):
    session = Session(tiny_adult)
    uniform = session.priors(estimator="uniform")
    m = tiny_adult.sensitive_domain().size
    np.testing.assert_allclose(uniform.matrix, np.full((tiny_adult.n_rows, m), 1.0 / m))
    # Parameter-free estimators ignore the kernel and need no bandwidth.
    session.priors(estimator="uniform")
    assert session.stats.prior_cache_hits == 1


def test_kernel_estimator_requires_bandwidth(tiny_adult):
    from repro.exceptions import KnowledgeError

    session = Session(tiny_adult)
    with pytest.raises(KnowledgeError, match="requires a bandwidth"):
        session.priors()


def test_audit_skyline_reuses_and_fills_the_prior_cache(tiny_adult):
    from repro.privacy.disclosure import BackgroundKnowledgeAttack

    session = Session(tiny_adult)
    groups = session.anonymize("distinct-l", params={"l": 3}, k=3).release.groups
    session.priors(0.3)  # one point is already cached
    report = session.audit_skyline(groups, [(0.1, 0.3), (0.3, 0.25), (0.5, 0.2)])
    assert session.stats.prior_cache_hits == 1
    # 0.3 was estimated above; the audit adds 0.1 and 0.5 in one batch.
    assert session.stats.prior_estimations == 3
    # The skyline's bandwidths entered the cache: a later single-adversary
    # attack is free.
    session.attack(groups, b_prime=0.5, threshold=0.2)
    assert session.stats.prior_estimations == 3
    # And the report matches the per-adversary attack exactly.
    reference = BackgroundKnowledgeAttack(tiny_adult, 0.5).attack(groups, 0.2)
    np.testing.assert_allclose(report.entries[2].attack.risks, reference.risks, atol=1e-9)


def test_audit_skyline_duplicate_points_estimate_once(tiny_adult):
    session = Session(tiny_adult)
    groups = session.anonymize("distinct-l", params={"l": 3}, k=3).release.groups
    session.audit_skyline(groups, [(0.25, 0.1), (0.25, 0.2)])
    assert session.stats.prior_estimations == 1


def test_session_stream_publishes_seed_and_appends(tiny_adult):
    session = Session(tiny_adult)
    publisher = session.stream("distinct-l", params={"l": 3}, k=4, skyline=[(0.3, 0.3)])
    assert len(publisher.store) == 1  # the seed release is already published
    assert publisher.latest.n_rows == tiny_adult.n_rows
    version = publisher.append(tiny_adult.rows()[:40])
    assert version.version == 1
    assert version.n_rows == tiny_adult.n_rows + 40
    assert version.report is not None


def test_session_stream_defaults_skyline_to_bt_model(tiny_adult):
    session = Session(tiny_adult)
    publisher = session.stream("bt", params={"b": 0.3, "t": 0.3}, k=4)
    assert len(publisher.skyline) == 1
    bandwidth, t = publisher.skyline[0]
    assert t == 0.3
    assert dict(bandwidth.items()) == {
        name: 0.3 for name in tiny_adult.quasi_identifier_names
    }


def test_session_accepts_a_table_source(tiny_adult):
    from repro.data.source import InMemoryTableSource

    resident = Session(tiny_adult)
    sourced = Session(InMemoryTableSource(tiny_adult, chunk_rows=64))
    assert sourced.table.n_rows == tiny_adult.n_rows
    a = resident.anonymize("distinct-l", params={"l": 3}, k=4)
    b = sourced.anonymize("distinct-l", params={"l": 3}, k=4)
    assert all(
        np.array_equal(x, y) for x, y in zip(a.release.groups, b.release.groups)
    )


def test_estimator_config_and_legacy_kwargs_agree(tiny_adult):
    from repro.knowledge.backend import EstimatorConfig

    config = EstimatorConfig(kernel="gaussian", max_cells=500, jobs=1)
    configured = Session(tiny_adult, config=config)
    legacy = Session(tiny_adult, kernel="gaussian", max_cells=500, jobs=1)
    assert configured.config == legacy.config
    assert configured.default_kernel == legacy.default_kernel == "gaussian"
    assert configured.max_cells == legacy.max_cells == 500
    a = configured.priors(0.3)
    b = legacy.priors(0.3)
    assert a.matrix.tobytes() == b.matrix.tobytes()


def test_legacy_kwargs_override_the_config(tiny_adult):
    from repro.knowledge.backend import EstimatorConfig

    session = Session(
        tiny_adult, config=EstimatorConfig(max_cells=50, kernel="uniform"),
        max_cells=70,
    )
    assert session.max_cells == 70  # explicit kwarg wins over the config
    assert session.default_kernel == "uniform"  # untouched knobs survive
