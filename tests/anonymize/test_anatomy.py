"""Tests for Anatomy bucketization."""

import numpy as np
import pytest

from repro.anonymize.anatomy import anatomy_partition
from repro.anonymize.partition import AnonymizedRelease
from repro.data.schema import Schema, categorical_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError


def _partition_is_valid(table, groups):
    covered = np.concatenate(groups)
    assert sorted(covered.tolist()) == list(range(table.n_rows))


def test_buckets_are_l_diverse(tiny_adult):
    groups = anatomy_partition(tiny_adult, 3)
    _partition_is_valid(tiny_adult, groups)
    codes = tiny_adult.sensitive_codes()
    for group in groups:
        values = codes[group]
        # Every bucket has at least l distinct values...
        assert len(set(values.tolist())) >= 3
        # ... and at least l tuples.
        assert len(group) >= 3


def test_bucket_value_counts_are_balanced(tiny_adult):
    """The creation phase takes one tuple per value, so counts stay near-singular."""
    groups = anatomy_partition(tiny_adult, 4)
    codes = tiny_adult.sensitive_codes()
    for group in groups:
        counts = np.bincount(codes[group])
        # No sensitive value dominates a bucket after residue assignment.
        assert counts.max() <= max(2, len(group) // 2)


def test_determinism_with_fixed_rng(tiny_adult):
    first = anatomy_partition(tiny_adult, 3, rng=np.random.default_rng(5))
    second = anatomy_partition(tiny_adult, 3, rng=np.random.default_rng(5))
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.tolist() == b.tolist()


def test_invalid_l_rejected(tiny_adult):
    with pytest.raises(AnonymizationError):
        anatomy_partition(tiny_adult, 0)


def test_too_many_distinct_values_required(tiny_adult):
    with pytest.raises(AnonymizationError):
        anatomy_partition(tiny_adult, 100)


def test_eligibility_condition():
    """A table dominated by one sensitive value cannot be bucketized."""
    schema = Schema([categorical_qi("Sex"), sensitive("Disease")])
    table = MicrodataTable.from_columns(
        schema,
        {"Sex": ["M"] * 10, "Disease": ["Flu"] * 8 + ["Cancer", "HIV"]},
    )
    with pytest.raises(AnonymizationError) as excinfo:
        anatomy_partition(table, 2)
    assert "eligibility" in str(excinfo.value)


def test_small_balanced_table():
    schema = Schema([categorical_qi("Sex"), sensitive("Disease")])
    table = MicrodataTable.from_columns(
        schema,
        {
            "Sex": ["M", "F", "M", "F", "M", "F"],
            "Disease": ["Flu", "Cancer", "Flu", "Cancer", "HIV", "HIV"],
        },
    )
    groups = anatomy_partition(table, 2)
    _partition_is_valid(table, groups)
    codes = table.sensitive_codes()
    for group in groups:
        assert len(set(codes[group].tolist())) >= 2


def test_release_wrapping_and_bucketized_view(tiny_adult):
    groups = anatomy_partition(tiny_adult, 3)
    release = AnonymizedRelease(tiny_adult, groups, method="anatomy-l3")
    qit, st = release.bucketized_tables()
    assert len(qit) == tiny_adult.n_rows
    total = sum(row["Count"] for row in st)
    assert total == tiny_adult.n_rows
