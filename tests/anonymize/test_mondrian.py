"""Tests for the Mondrian multidimensional partitioner."""

import numpy as np
import pytest

from repro.anonymize.mondrian import MondrianAnonymizer
from repro.anonymize.partition import AnonymizedRelease
from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError
from repro.privacy.models import (
    BTPrivacy,
    CompositeModel,
    DistinctLDiversity,
    KAnonymity,
    SkylineBTPrivacy,
    TCloseness,
)


def _partition_is_valid(table, groups):
    covered = np.concatenate(groups)
    assert sorted(covered.tolist()) == list(range(table.n_rows))
    assert len(set(covered.tolist())) == table.n_rows


def test_invalid_strategy_rejected():
    with pytest.raises(AnonymizationError):
        MondrianAnonymizer(KAnonymity(2), split_strategy="zigzag")


def test_k_anonymity_partition(tiny_adult):
    mondrian = MondrianAnonymizer(KAnonymity(5))
    groups = mondrian.partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    assert all(len(group) >= 5 for group in groups)
    # Mondrian should actually split a 300-row table with k=5.
    assert len(groups) > 10
    assert mondrian.statistics.n_groups == len(groups)
    assert mondrian.statistics.max_depth >= 1


def test_smaller_k_gives_finer_partition(tiny_adult):
    coarse = MondrianAnonymizer(KAnonymity(25)).partition(tiny_adult)
    fine = MondrianAnonymizer(KAnonymity(5)).partition(tiny_adult)
    assert len(fine) > len(coarse)


def test_l_diversity_partition(tiny_adult):
    model = CompositeModel([KAnonymity(3), DistinctLDiversity(3)])
    groups = MondrianAnonymizer(model).partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    codes = tiny_adult.sensitive_codes()
    for group in groups:
        assert len(set(codes[group].tolist())) >= 3


def test_t_closeness_partition(tiny_adult):
    model = CompositeModel([KAnonymity(3), TCloseness(0.3)])
    groups = MondrianAnonymizer(model).partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    model.prepare(tiny_adult)
    for group in groups:
        assert model.is_satisfied(group)


def test_bt_privacy_partition_respects_requirement(tiny_adult):
    model = BTPrivacy(0.3, 0.25)
    mondrian = MondrianAnonymizer(CompositeModel([KAnonymity(3), model]))
    groups = mondrian.partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    for group in groups:
        assert model.group_risk(group) <= 0.25 + 1e-9


def test_impossible_requirement_raises(tiny_adult):
    # More distinct values than the sensitive domain holds -> even the root fails.
    model = DistinctLDiversity(100)
    with pytest.raises(AnonymizationError):
        MondrianAnonymizer(model).partition(tiny_adult)


def test_round_robin_strategy_also_valid(tiny_adult):
    widest = MondrianAnonymizer(KAnonymity(10)).partition(tiny_adult)
    round_robin = MondrianAnonymizer(KAnonymity(10), split_strategy="round_robin").partition(
        tiny_adult
    )
    _partition_is_valid(tiny_adult, round_robin)
    assert all(len(group) >= 10 for group in round_robin)
    # Both produce a real partitioning (not necessarily the same one).
    assert len(widest) > 1 and len(round_robin) > 1


def test_prepare_flag_skips_model_preparation(tiny_adult):
    model = DistinctLDiversity(2)
    model.prepare(tiny_adult)
    groups = MondrianAnonymizer(model).partition(tiny_adult, prepare=False)
    _partition_is_valid(tiny_adult, groups)


def test_median_split_handles_skewed_column():
    """A column where the median equals the maximum still splits correctly."""
    schema = Schema([numeric_qi("Age"), sensitive("Disease")])
    table = MicrodataTable.from_columns(
        schema,
        {
            "Age": [1, 5, 5, 5, 5, 5, 5, 5],
            "Disease": ["a", "b", "a", "b", "a", "b", "a", "b"],
        },
    )
    groups = MondrianAnonymizer(KAnonymity(1)).partition(table)
    _partition_is_valid(table, groups)
    assert len(groups) >= 2


def test_constant_qi_cannot_split():
    """If every QI value is identical the whole table stays one group."""
    schema = Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])
    table = MicrodataTable.from_columns(
        schema,
        {
            "Age": [30] * 6,
            "Sex": ["M"] * 6,
            "Disease": ["a", "b", "c", "a", "b", "c"],
        },
    )
    groups = MondrianAnonymizer(KAnonymity(1)).partition(table)
    assert len(groups) == 1
    assert len(groups[0]) == 6


def test_partition_wraps_into_release(tiny_adult):
    groups = MondrianAnonymizer(KAnonymity(4)).partition(tiny_adult)
    release = AnonymizedRelease(tiny_adult, groups, method="mondrian-k4")
    assert release.n_groups == len(groups)


def test_rejected_splits_are_counted(tiny_adult):
    mondrian = MondrianAnonymizer(CompositeModel([KAnonymity(3), DistinctLDiversity(4)]))
    mondrian.partition(tiny_adult)
    stats = mondrian.statistics
    assert stats.n_split_attempts >= stats.n_groups - 1
    assert stats.n_rejected_splits >= 0


def test_batched_split_checks_match_scalar_path(tiny_adult):
    """The one-call left/right evaluation must not change any partition."""
    batched_model = CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)])
    batched = MondrianAnonymizer(batched_model).partition(tiny_adult)

    scalar_model = CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)])
    # Force the pre-batching behaviour: every group checked one at a time
    # through the scalar entry point.
    scalar_model.is_satisfied_batch = lambda groups: [
        scalar_model.is_satisfied(group) for group in groups
    ]
    scalar = MondrianAnonymizer(scalar_model).partition(tiny_adult)

    assert len(batched) == len(scalar)
    for a, b in zip(batched, scalar):
        np.testing.assert_array_equal(a, b)


def test_bt_risk_memoisation_counts(tiny_adult):
    model = CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)])
    MondrianAnonymizer(model).partition(tiny_adult)
    bt = model.models[1]
    assert bt.risk_evaluations > 0
    # Re-checking the final groups hits the memo, not the posterior kernel.
    evaluations = bt.risk_evaluations
    groups = MondrianAnonymizer(model).partition(tiny_adult, prepare=False)
    assert bt.risk_cache_hits > 0
    del groups, evaluations


def test_skyline_model_partition_checks_every_point(tiny_adult):
    model = CompositeModel(
        [KAnonymity(3), SkylineBTPrivacy([(0.2, 0.3), (0.5, 0.25)])]
    )
    groups = MondrianAnonymizer(model).partition(tiny_adult)
    for point in model.models[1].points:
        for group in groups:
            assert point.is_satisfied(group)
