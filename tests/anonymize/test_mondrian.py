"""Tests for the Mondrian multidimensional partitioner."""

import numpy as np
import pytest

from repro.anonymize.mondrian import (
    MondrianAnonymizer,
    MondrianNode,
    MondrianSplit,
    spilled_value_matrix,
)
from repro.anonymize.partition import AnonymizedRelease
from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError
from repro.privacy.models import (
    BTPrivacy,
    CompositeModel,
    DistinctLDiversity,
    KAnonymity,
    SkylineBTPrivacy,
    TCloseness,
)


def _partition_is_valid(table, groups):
    covered = np.concatenate(groups)
    assert sorted(covered.tolist()) == list(range(table.n_rows))
    assert len(set(covered.tolist())) == table.n_rows


def test_invalid_strategy_rejected():
    with pytest.raises(AnonymizationError):
        MondrianAnonymizer(KAnonymity(2), split_strategy="zigzag")


def test_k_anonymity_partition(tiny_adult):
    mondrian = MondrianAnonymizer(KAnonymity(5))
    groups = mondrian.partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    assert all(len(group) >= 5 for group in groups)
    # Mondrian should actually split a 300-row table with k=5.
    assert len(groups) > 10
    assert mondrian.statistics.n_groups == len(groups)
    assert mondrian.statistics.max_depth >= 1


def test_smaller_k_gives_finer_partition(tiny_adult):
    coarse = MondrianAnonymizer(KAnonymity(25)).partition(tiny_adult)
    fine = MondrianAnonymizer(KAnonymity(5)).partition(tiny_adult)
    assert len(fine) > len(coarse)


def test_l_diversity_partition(tiny_adult):
    model = CompositeModel([KAnonymity(3), DistinctLDiversity(3)])
    groups = MondrianAnonymizer(model).partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    codes = tiny_adult.sensitive_codes()
    for group in groups:
        assert len(set(codes[group].tolist())) >= 3


def test_t_closeness_partition(tiny_adult):
    model = CompositeModel([KAnonymity(3), TCloseness(0.3)])
    groups = MondrianAnonymizer(model).partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    model.prepare(tiny_adult)
    for group in groups:
        assert model.is_satisfied(group)


def test_bt_privacy_partition_respects_requirement(tiny_adult):
    model = BTPrivacy(0.3, 0.25)
    mondrian = MondrianAnonymizer(CompositeModel([KAnonymity(3), model]))
    groups = mondrian.partition(tiny_adult)
    _partition_is_valid(tiny_adult, groups)
    for group in groups:
        assert model.group_risk(group) <= 0.25 + 1e-9


def test_impossible_requirement_raises(tiny_adult):
    # More distinct values than the sensitive domain holds -> even the root fails.
    model = DistinctLDiversity(100)
    with pytest.raises(AnonymizationError):
        MondrianAnonymizer(model).partition(tiny_adult)


def test_round_robin_strategy_also_valid(tiny_adult):
    widest = MondrianAnonymizer(KAnonymity(10)).partition(tiny_adult)
    round_robin = MondrianAnonymizer(KAnonymity(10), split_strategy="round_robin").partition(
        tiny_adult
    )
    _partition_is_valid(tiny_adult, round_robin)
    assert all(len(group) >= 10 for group in round_robin)
    # Both produce a real partitioning (not necessarily the same one).
    assert len(widest) > 1 and len(round_robin) > 1


def test_prepare_flag_skips_model_preparation(tiny_adult):
    model = DistinctLDiversity(2)
    model.prepare(tiny_adult)
    groups = MondrianAnonymizer(model).partition(tiny_adult, prepare=False)
    _partition_is_valid(tiny_adult, groups)


def test_median_split_handles_skewed_column():
    """A column where the median equals the maximum still splits correctly."""
    schema = Schema([numeric_qi("Age"), sensitive("Disease")])
    table = MicrodataTable.from_columns(
        schema,
        {
            "Age": [1, 5, 5, 5, 5, 5, 5, 5],
            "Disease": ["a", "b", "a", "b", "a", "b", "a", "b"],
        },
    )
    groups = MondrianAnonymizer(KAnonymity(1)).partition(table)
    _partition_is_valid(table, groups)
    assert len(groups) >= 2


def test_constant_qi_cannot_split():
    """If every QI value is identical the whole table stays one group."""
    schema = Schema([numeric_qi("Age"), categorical_qi("Sex"), sensitive("Disease")])
    table = MicrodataTable.from_columns(
        schema,
        {
            "Age": [30] * 6,
            "Sex": ["M"] * 6,
            "Disease": ["a", "b", "c", "a", "b", "c"],
        },
    )
    groups = MondrianAnonymizer(KAnonymity(1)).partition(table)
    assert len(groups) == 1
    assert len(groups[0]) == 6


def test_partition_wraps_into_release(tiny_adult):
    groups = MondrianAnonymizer(KAnonymity(4)).partition(tiny_adult)
    release = AnonymizedRelease(tiny_adult, groups, method="mondrian-k4")
    assert release.n_groups == len(groups)


def test_rejected_splits_are_counted(tiny_adult):
    mondrian = MondrianAnonymizer(CompositeModel([KAnonymity(3), DistinctLDiversity(4)]))
    mondrian.partition(tiny_adult)
    stats = mondrian.statistics
    assert stats.n_split_attempts >= stats.n_groups - 1
    assert stats.n_rejected_splits >= 0


def test_batched_split_checks_match_scalar_path(tiny_adult):
    """The one-call left/right evaluation must not change any partition."""
    batched_model = CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)])
    batched = MondrianAnonymizer(batched_model).partition(tiny_adult)

    scalar_model = CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)])
    # Force the pre-batching behaviour: every group checked one at a time
    # through the scalar entry point.
    scalar_model.is_satisfied_batch = lambda groups: [
        scalar_model.is_satisfied(group) for group in groups
    ]
    scalar = MondrianAnonymizer(scalar_model).partition(tiny_adult)

    assert len(batched) == len(scalar)
    for a, b in zip(batched, scalar):
        np.testing.assert_array_equal(a, b)


def test_bt_risk_memoisation_counts(tiny_adult):
    model = CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)])
    MondrianAnonymizer(model).partition(tiny_adult)
    bt = model.models[1]
    assert bt.risk_evaluations > 0
    # Re-checking the final groups hits the memo, not the posterior kernel.
    evaluations = bt.risk_evaluations
    groups = MondrianAnonymizer(model).partition(tiny_adult, prepare=False)
    assert bt.risk_cache_hits > 0
    del groups, evaluations


def test_skyline_model_partition_checks_every_point(tiny_adult):
    model = CompositeModel(
        [KAnonymity(3), SkylineBTPrivacy([(0.2, 0.3), (0.5, 0.25)])]
    )
    groups = MondrianAnonymizer(model).partition(tiny_adult)
    for point in model.models[1].points:
        for group in groups:
            assert point.is_satisfied(group)


# -- vectorised candidate search and recorded split trees ---------------------------


class _ScalarSearchMondrian(MondrianAnonymizer):
    """Reference implementation: the pre-vectorisation per-attribute search."""

    def _find_split(self, values, indices, qi_names, spans, depth):
        widths = {}
        for column, name in enumerate(qi_names):
            sub = values[indices, column]
            widths[name] = float(sub.max() - sub.min()) / spans[column]
        candidates = [name for name in qi_names if widths[name] > 0.0]
        if not candidates:
            return None
        if self.split_strategy != "round_robin":
            ordered = sorted(candidates, key=lambda name: widths[name], reverse=True)
        else:
            offset = depth % len(candidates)
            ordered = candidates[offset:] + candidates[:offset]
        for name in ordered:
            column = qi_names.index(name)
            sub = values[indices, column]
            median = float(np.median(sub))
            left_mask = sub <= median
            inclusive = True
            if left_mask.all():
                left_mask = sub < median
                inclusive = False
            if not left_mask.any() or left_mask.all():
                continue
            left, right = indices[left_mask], indices[~left_mask]
            self.statistics.n_split_attempts += 1
            if all(self.model.is_satisfied_batch((left, right))):
                split = MondrianSplit(attribute=name, threshold=median, inclusive=inclusive)
                return split, left, right
            self.statistics.n_rejected_splits += 1
        return None


@pytest.mark.parametrize(
    "model_factory",
    [
        lambda: KAnonymity(5),
        lambda: CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)]),
    ],
)
def test_vectorised_search_matches_scalar_reference(tiny_adult, model_factory):
    """One-NumPy-pass widths/medians must not change any depth-first partition."""
    batched = MondrianAnonymizer(model_factory(), split_strategy="dfs").partition(
        tiny_adult
    )
    scalar = _ScalarSearchMondrian(model_factory(), split_strategy="dfs").partition(
        tiny_adult
    )
    assert len(batched) == len(scalar)
    for a, b in zip(batched, scalar):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize(
    "model_factory",
    [
        lambda: KAnonymity(5),
        lambda: CompositeModel([KAnonymity(3), DistinctLDiversity(3)]),
        lambda: CompositeModel([KAnonymity(3), BTPrivacy(0.3, 0.25)]),
    ],
)
def test_frontier_default_matches_dfs_partition(tiny_adult, model_factory):
    """The frontier default cuts the identical partition the DFS opt-out does."""
    frontier = MondrianAnonymizer(model_factory()).partition(tiny_adult)
    dfs = MondrianAnonymizer(model_factory(), split_strategy="dfs").partition(tiny_adult)
    assert sorted(tuple(g.tolist()) for g in frontier) == sorted(
        tuple(g.tolist()) for g in dfs
    )


def test_frontier_partition_order_is_deterministic_tree_order(tiny_adult):
    """Default groups come in the recorded tree's left-to-right leaf order."""
    model = CompositeModel([KAnonymity(3), DistinctLDiversity(3)])
    first = MondrianAnonymizer(model).partition(tiny_adult)
    second = MondrianAnonymizer(model).partition(tiny_adult, prepare=False)
    tree = MondrianAnonymizer(model).partition_tree(tiny_adult, prepare=False)
    leaves = [leaf.indices for leaf in tree.leaves()]
    assert len(first) == len(second) == len(leaves)
    for a, b, c in zip(first, second, leaves):
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)


@pytest.mark.parametrize("strategy", ["widest", "round_robin"])
def test_partition_tree_leaves_match_partition(tiny_adult, strategy):
    model = CompositeModel([KAnonymity(3), DistinctLDiversity(3)])
    groups = MondrianAnonymizer(model, split_strategy=strategy).partition(tiny_adult)
    tree = MondrianAnonymizer(model, split_strategy=strategy).partition_tree(tiny_adult)
    leaves = [leaf.indices for leaf in tree.leaves()]
    assert sorted(tuple(g.tolist()) for g in groups) == sorted(
        tuple(leaf.tolist()) for leaf in leaves
    )
    for leaf in tree.leaves():
        assert leaf.searched_size == leaf.indices.size


def test_partition_tree_records_routable_splits(tiny_adult):
    tree = MondrianAnonymizer(KAnonymity(10)).partition_tree(tiny_adult)
    assert isinstance(tree, MondrianNode)
    node = tree
    # Every internal split routes its own members consistently.
    values = (
        tiny_adult.column(node.split.attribute)
        if tiny_adult.schema[node.split.attribute].is_numeric
        else tiny_adult.codes(node.split.attribute).astype(np.float64)
    )
    left_leaf_rows = np.concatenate([leaf.indices for leaf in node.left.leaves()])
    right_leaf_rows = np.concatenate([leaf.indices for leaf in node.right.leaves()])
    assert node.split.goes_left(values[left_leaf_rows]).all()
    assert not node.split.goes_left(values[right_leaf_rows]).any()


def test_partition_forest_partitions_each_region(tiny_adult):
    model = KAnonymity(4)
    model.prepare(tiny_adult)
    regions = [
        np.arange(0, 150, dtype=np.int64),
        np.arange(150, 300, dtype=np.int64),
    ]
    mondrian = MondrianAnonymizer(model)
    roots = mondrian.partition_forest(tiny_adult, regions, depths=[2, 2])
    assert len(roots) == 2
    for region, root in zip(regions, roots):
        covered = np.concatenate([leaf.indices for leaf in root.leaves()])
        assert sorted(covered.tolist()) == region.tolist()
        for leaf in root.leaves():
            assert leaf.indices.size >= 4
            assert leaf.depth >= 2


# -- spilled value matrix (the out-of-core recursion) ---------------------------------


def test_spilled_value_matrix_is_bitwise_the_resident_one(tiny_adult):
    from repro.data.source import InMemoryTableSource

    qi_names = list(tiny_adult.quasi_identifier_names)
    resident = MondrianAnonymizer._value_matrix(tiny_adult, qi_names)
    spilled = spilled_value_matrix(InMemoryTableSource(tiny_adult, chunk_rows=37))
    assert isinstance(spilled, np.memmap)
    assert spilled.dtype == resident.dtype and spilled.shape == resident.shape
    assert spilled.tobytes() == resident.tobytes()


@pytest.mark.parametrize("strategy", ["widest", "round_robin", "dfs"])
def test_spilled_partition_identical_to_resident_recursion(tiny_adult, strategy):
    """Frontier recursion over the spill cuts the exact resident partition -
    same groups, same order - for every traversal strategy."""
    from repro.data.source import InMemoryTableSource

    model = CompositeModel([KAnonymity(4), DistinctLDiversity(3)])
    resident = MondrianAnonymizer(model, split_strategy=strategy).partition(tiny_adult)
    spilled = MondrianAnonymizer(model, split_strategy=strategy).partition(
        tiny_adult,
        values=spilled_value_matrix(InMemoryTableSource(tiny_adult, chunk_rows=64)),
    )
    assert len(spilled) == len(resident)
    assert all(np.array_equal(a, b) for a, b in zip(spilled, resident))


def test_spilled_source_row_mismatch_raises(tiny_adult):
    from repro.data.source import InMemoryTableSource

    class TruncatedSource(InMemoryTableSource):
        def iter_chunks(self, chunk_rows=None):
            yield next(super().iter_chunks(chunk_rows=100))

    with pytest.raises(AnonymizationError, match="declared"):
        spilled_value_matrix(TruncatedSource(tiny_adult))


def test_anonymize_spill_option_matches_resident_release(tiny_adult):
    from repro.anonymize.anonymizer import anonymize

    model = DistinctLDiversity(3)
    resident = anonymize(tiny_adult, model, k=4)
    spilled = anonymize(tiny_adult, model, k=4, spill=True)
    assert len(spilled.release.groups) == len(resident.release.groups)
    assert all(
        np.array_equal(a, b)
        for a, b in zip(spilled.release.groups, resident.release.groups)
    )
