"""Tests for partitions, generalized groups and the release container."""

import numpy as np
import pytest

from repro.anonymize.partition import AnonymizedRelease, GeneralizedValue, generalize_group
from repro.data.examples import table_i_groups
from repro.exceptions import AnonymizationError


@pytest.fixture()
def release(patients):
    return AnonymizedRelease(patients, table_i_groups(), method="paper-table-1b")


def test_generalize_group_matches_table_ib(patients):
    """The first group of Table I(b) generalizes to Age [45,69], Sex *."""
    group = generalize_group(patients, np.array([0, 1, 2]))
    by_name = group.generalized_by_name()
    assert by_name["Age"].low == 45.0
    assert by_name["Age"].high == 69.0
    assert str(by_name["Age"]) == "[45,69]"
    assert set(by_name["Sex"].values) == {"M", "F"}
    assert sorted(group.sensitive_values) == ["Cancer", "Emphysema", "Flu"]


def test_generalize_group_single_valued_categorical(patients):
    group = generalize_group(patients, np.array([3, 4, 5]))
    by_name = group.generalized_by_name()
    assert str(by_name["Sex"]) == "F"
    assert by_name["Age"].low == 42.0 and by_name["Age"].high == 47.0


def test_generalize_empty_group_rejected(patients):
    with pytest.raises(AnonymizationError):
        generalize_group(patients, np.array([], dtype=int))


def test_generalized_value_rendering():
    assert str(GeneralizedValue("Age", low=30.0, high=30.0)) == "30"
    assert str(GeneralizedValue("Age", low=30.0, high=40.0)) == "[30,40]"
    assert str(GeneralizedValue("Sex", values=("M",))) == "M"
    assert str(GeneralizedValue("Sex", values=("F", "M"))) == "{F,M}"
    assert str(GeneralizedValue("Work", label="Government", values=("Federal", "State"))) == "Government"


def test_release_basic_accessors(patients, release):
    assert release.table is patients
    assert release.n_groups == 3
    assert release.method == "paper-table-1b"
    assert release.group_sizes().tolist() == [3, 3, 3]
    assert release.average_group_size() == pytest.approx(3.0)


def test_release_group_of_tuples(release):
    assignment = release.group_of_tuples()
    assert assignment.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_release_rejects_overlapping_groups(patients):
    with pytest.raises(AnonymizationError):
        AnonymizedRelease(patients, [np.array([0, 1]), np.array([1, 2])])


def test_release_rejects_partial_cover(patients):
    with pytest.raises(AnonymizationError):
        AnonymizedRelease(patients, [np.array([0, 1, 2])])


def test_release_rejects_out_of_range_indices(patients):
    with pytest.raises(AnonymizationError):
        AnonymizedRelease(patients, [np.array([0, 99])])


def test_release_rejects_empty_partition(patients):
    with pytest.raises(AnonymizationError):
        AnonymizedRelease(patients, [])


def test_generalized_rows_cover_all_tuples(patients, release):
    rows = release.generalized_rows()
    assert len(rows) == patients.n_rows
    # Tuple 0 (Bob) sits in the first group of Table I(b).
    assert rows[0]["Age"] == "[45,69]"
    assert rows[0]["Disease"] in {"Emphysema", "Cancer", "Flu"}
    # Every row has all attributes.
    for row in rows:
        assert set(row) == {"Age", "Sex", "Disease"}


def test_generalized_rows_keep_sensitive_multiset(patients, release):
    rows = release.generalized_rows()
    published = sorted(row["Disease"] for row in rows)
    original = sorted(str(v) for v in patients.sensitive_values())
    assert published == original


def test_bucketized_tables(patients, release):
    qit, st = release.bucketized_tables()
    assert len(qit) == patients.n_rows
    assert {row["GroupID"] for row in qit} == {0, 1, 2}
    # The sensitive table counts per group sum to the group sizes.
    for group_id in range(3):
        total = sum(row["Count"] for row in st if row["GroupID"] == group_id)
        assert total == 3
    # QI values in the QIT are exact (bucketization does not generalize).
    assert qit[0]["Age"] == 69.0
