"""Tests for the high-level anonymize() API."""

import numpy as np
import pytest

from repro.anonymize.anonymizer import anonymize
from repro.exceptions import AnonymizationError
from repro.privacy.models import BTPrivacy, DistinctLDiversity, SkylineBTPrivacy, TCloseness


def test_mondrian_default_algorithm(tiny_adult):
    result = anonymize(tiny_adult, DistinctLDiversity(3), k=3)
    release = result.release
    assert release.n_groups > 1
    assert release.group_sizes().min() >= 3
    assert "mondrian" in release.method
    assert result.prepare_seconds >= 0.0
    assert result.partition_seconds > 0.0
    assert result.total_seconds == pytest.approx(
        result.prepare_seconds + result.partition_seconds
    )


def test_k_parameter_enforces_group_size(tiny_adult):
    result = anonymize(tiny_adult, DistinctLDiversity(2), k=10)
    assert result.release.group_sizes().min() >= 10
    assert "k-anonymity" in result.model_description


def test_without_k_parameter(tiny_adult):
    result = anonymize(tiny_adult, DistinctLDiversity(2))
    codes = tiny_adult.sensitive_codes()
    for group in result.release.groups:
        assert len(set(codes[group].tolist())) >= 2


def test_bt_privacy_prepare_time_reported(tiny_adult):
    result = anonymize(tiny_adult, BTPrivacy(0.3, 0.25), k=3)
    # Kernel estimation happens in the preparation phase, not partitioning.
    assert result.prepare_seconds > 0.0
    model = BTPrivacy(0.3, 0.25)
    model.prepare(tiny_adult)
    for group in result.release.groups:
        assert model.group_risk(group) <= 0.25 + 1e-9


def test_skyline_model_through_anonymize(tiny_adult):
    skyline = SkylineBTPrivacy([(0.3, 0.3), (0.5, 0.2)])
    result = anonymize(tiny_adult, skyline, k=3)
    for point in skyline.points:
        for group in result.release.groups:
            assert point.is_satisfied(group)


def test_anatomy_algorithm(tiny_adult):
    result = anonymize(tiny_adult, DistinctLDiversity(3), algorithm="anatomy", anatomy_l=3)
    release = result.release
    assert "anatomy" in release.method
    codes = tiny_adult.sensitive_codes()
    for group in release.groups:
        assert len(set(codes[group].tolist())) >= 3


def test_anatomy_requires_l():
    import repro.data.adult as adult

    table = adult.generate_adult(100, seed=0)
    with pytest.raises(AnonymizationError):
        anonymize(table, DistinctLDiversity(2), algorithm="anatomy")


def test_anatomy_reports_model_misses(tiny_adult):
    """Anatomy only targets l-diversity; other requirements may be missed but are surfaced."""
    result = anonymize(tiny_adult, TCloseness(0.01), algorithm="anatomy", anatomy_l=3)
    assert "anatomy" in result.release.method


def test_unknown_algorithm(tiny_adult):
    with pytest.raises(AnonymizationError):
        anonymize(tiny_adult, DistinctLDiversity(2), algorithm="teleport")


def test_mondrian_vs_anatomy_group_structure(tiny_adult):
    mondrian = anonymize(tiny_adult, DistinctLDiversity(3), k=3).release
    anatomy = anonymize(tiny_adult, DistinctLDiversity(3), algorithm="anatomy", anatomy_l=3).release
    # Both cover the table exactly once.
    for release in (mondrian, anatomy):
        covered = np.concatenate(release.groups)
        assert sorted(covered.tolist()) == list(range(tiny_adult.n_rows))
