"""Tests for association-rule background knowledge (the Injector baseline)."""

import numpy as np
import pytest

from repro.data.schema import Schema, categorical_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.association import (
    AssociationRule,
    mine_negative_rules,
    mine_positive_rules,
    rule_violation_mass,
)
from repro.knowledge.prior import kernel_prior, overall_prior


@pytest.fixture()
def gendered_table():
    """Males never have OvarianCancer; females never have ProstateCancer."""
    schema = Schema([categorical_qi("Sex"), sensitive("Disease")])
    rows = []
    for _ in range(30):
        rows.append({"Sex": "M", "Disease": "Flu"})
        rows.append({"Sex": "M", "Disease": "ProstateCancer"})
        rows.append({"Sex": "F", "Disease": "Flu"})
        rows.append({"Sex": "F", "Disease": "OvarianCancer"})
    return MicrodataTable.from_rows(schema, rows)


def test_negative_rules_found(gendered_table):
    rules = mine_negative_rules(gendered_table, min_support=10)
    as_text = {str(rule) for rule in rules}
    assert any("Sex=M" in text and "OvarianCancer" in text for text in as_text)
    assert any("Sex=F" in text and "ProstateCancer" in text for text in as_text)
    assert all(rule.negative for rule in rules)
    assert all(rule.confidence == 1.0 for rule in rules)


def test_negative_rules_respect_min_support(gendered_table):
    rules = mine_negative_rules(gendered_table, min_support=1000)
    assert rules == []


def test_positive_rules_found(gendered_table):
    rules = mine_positive_rules(gendered_table, min_support=10, min_confidence=0.45)
    assert any(
        rule.attribute == "Sex" and rule.value == "M" and rule.sensitive_value == "Flu"
        for rule in rules
    )
    assert all(not rule.negative for rule in rules)


def test_parameter_validation(gendered_table):
    with pytest.raises(KnowledgeError):
        mine_negative_rules(gendered_table, min_support=0)
    with pytest.raises(KnowledgeError):
        mine_negative_rules(gendered_table, min_confidence=0.0)
    with pytest.raises(KnowledgeError):
        mine_positive_rules(gendered_table, min_support=-1)
    with pytest.raises(KnowledgeError):
        mine_positive_rules(gendered_table, min_confidence=1.5)


def test_rule_str_format():
    rule = AssociationRule("Sex", "M", "OvarianCancer", support=50, confidence=1.0, negative=True)
    text = str(rule)
    assert "Sex=M" in text and "!=" in text and "OvarianCancer" in text


def test_kernel_prior_subsumes_negative_rules(gendered_table):
    """Section II-D: small-bandwidth kernel priors assign ~0 mass to impossible values."""
    rules = mine_negative_rules(gendered_table, min_support=10)
    sharp = kernel_prior(gendered_table, 0.05)
    mass = rule_violation_mass(gendered_table, sharp.matrix, rules)
    assert mass < 1e-6


def test_overall_prior_violates_negative_rules(gendered_table):
    """The t-closeness adversary does not encode the mined negative rules."""
    rules = mine_negative_rules(gendered_table, min_support=10)
    beliefs = overall_prior(gendered_table)
    mass = rule_violation_mass(gendered_table, beliefs.matrix, rules)
    assert mass > 0.05


def test_violation_mass_empty_rules(gendered_table):
    beliefs = overall_prior(gendered_table)
    assert rule_violation_mass(gendered_table, beliefs.matrix, []) == 0.0


def test_violation_mass_shape_check(gendered_table):
    with pytest.raises(KnowledgeError):
        rule_violation_mass(gendered_table, np.ones((3, 2)), [])


def test_adult_has_gender_occupation_negative_rules(small_adult):
    """The synthetic Adult data contains Injector-style negative rules to mine."""
    rules = mine_negative_rules(small_adult, min_support=50)
    gender_rules = [rule for rule in rules if rule.attribute == "Gender"]
    assert gender_rules, "expected at least one Gender => not-Occupation rule"
