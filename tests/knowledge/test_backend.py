"""Hierarchical blocked contraction vs the flat reference sweep.

Wide / high-cardinality schemas used to force the batched estimator back to
the flat ``O(n^2 d)`` sweep whenever the joint rest-combination count blew
the ``max_cells`` budget.  The backend now splits the rest attributes into
blocks whose chained contractions stay under budget; these tests pin the
core contract: for *any* budget the priors match the flat reference to
``<= 1e-12``, and tiny budgets really do produce multi-block splits.
"""

import numpy as np
import pytest

from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.backend import EstimatorConfig, FactoredPriorBackend
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.kernels import kernel_names
from repro.knowledge.prior import BatchedKernelPriorEstimator, kernel_prior

N_ATTRIBUTES = 12


def _wide_table(n_rows: int = 420, n_attributes: int = N_ATTRIBUTES, seed: int = 3):
    """A wide table: >= 12 mixed low-cardinality QI attributes, 5 sensitive values.

    Low per-attribute cardinality keeps the observed per-block combination
    counts growing gradually with the block width, so shrinking ``max_cells``
    walks through every block-split depth instead of jumping straight from
    one block to singletons.
    """
    rng = np.random.default_rng(seed)
    attributes = []
    columns: dict = {}
    for i in range(n_attributes):
        name = f"Q{i:02d}"
        if i % 3 == 0:
            attributes.append(numeric_qi(name))
            columns[name] = rng.integers(0, 3, n_rows).astype(float)
        else:
            attributes.append(categorical_qi(name))
            columns[name] = rng.choice(["a", "b"], n_rows).tolist()
    attributes.append(sensitive("Disease"))
    columns["Disease"] = rng.choice(
        ["flu", "cancer", "hiv", "cold", "ulcer"], n_rows
    ).tolist()
    return MicrodataTable.from_columns(Schema(attributes), columns)


@pytest.fixture(scope="module")
def wide_table():
    table = _wide_table()
    assert len(table.quasi_identifier_names) >= 12
    return table


@pytest.fixture(scope="module")
def per_attribute_bandwidth(wide_table):
    names = list(wide_table.quasi_identifier_names)
    return Bandwidth({name: 0.15 + 0.05 * (i % 5) for i, name in enumerate(names)})


def _flat_reference(table, bandwidth, kernel="epanechnikov"):
    return kernel_prior(table, bandwidth, kernel=kernel, max_cells=0).matrix


def test_wide_schema_blows_single_joint_budget(wide_table):
    """The wide fixture really is the regime the blocked mode exists for."""
    backend = FactoredPriorBackend(EstimatorConfig(max_cells=600)).fit(wide_table)
    assert backend.mode == "factored"
    assert backend.n_blocks >= 2
    # Every block joint respects the budget on its own.
    for block_names in backend.blocks:
        assert len(block_names) >= 1


@pytest.mark.parametrize("kernel", kernel_names())
def test_blocked_matches_flat_reference_every_kernel(
    wide_table, per_attribute_bandwidth, kernel
):
    estimator = BatchedKernelPriorEstimator(kernel=kernel, max_cells=600).fit(wide_table)
    assert estimator.mode == "factored"
    assert estimator.backend.n_blocks >= 2
    blocked = estimator.prior_for_table([per_attribute_bandwidth, 0.3])
    for bandwidth, priors in zip([per_attribute_bandwidth, 0.3], blocked):
        reference = _flat_reference(wide_table, bandwidth, kernel=kernel)
        np.testing.assert_allclose(priors.matrix, reference, atol=1e-12, rtol=0)


def test_tiny_budgets_force_1_2_and_3_block_splits(wide_table, per_attribute_bandwidth):
    """Shrinking max_cells splits the rest attributes into more blocks, exactly."""
    reference = _flat_reference(wide_table, per_attribute_bandwidth)
    seen_blocks = []
    for max_cells in (64_000_000, 20_000, 1_000, 100, 10, 1):
        estimator = BatchedKernelPriorEstimator(max_cells=max_cells).fit(wide_table)
        assert estimator.mode == "factored"
        seen_blocks.append(estimator.backend.n_blocks)
        matrix = estimator.prior_for_table([per_attribute_bandwidth])[0].matrix
        np.testing.assert_allclose(matrix, reference, atol=1e-12, rtol=0)
    # Budgets are monotone: smaller budgets never merge blocks ...
    assert seen_blocks == sorted(seen_blocks)
    # ... and the ladder passes through single-, two- and three-block splits
    # down to fully singleton blocks (one per rest attribute).
    assert seen_blocks[0] == 1
    assert 2 in seen_blocks
    assert 3 in seen_blocks
    assert seen_blocks[-1] == len(wide_table.quasi_identifier_names) - 1


def test_blocked_block_layout_covers_every_rest_attribute(wide_table):
    backend = FactoredPriorBackend(EstimatorConfig(max_cells=400)).fit(wide_table)
    covered = [name for block in backend.blocks for name in block]
    qi_names = list(wide_table.quasi_identifier_names)
    solo = qi_names[backend._solo_index]
    assert sorted(covered) == sorted(name for name in qi_names if name != solo)
    # Deterministic, documented layout: schema order with the solo removed.
    assert covered == [name for name in qi_names if name != solo]


def test_blocked_incremental_append_matches_scratch(per_attribute_bandwidth):
    """append_rows equivalence under the blocked mode (the streaming contract)."""
    full = _wide_table(n_rows=300)
    tables = [full.select(np.arange(stop)) for stop in (200, 240, 270, 300)]
    estimator = BatchedKernelPriorEstimator(incremental=True, max_cells=400)
    estimator.fit(tables[0])
    assert estimator.backend.n_blocks >= 3
    estimator.prior_for_table([per_attribute_bandwidth, 0.3])  # populate the caches
    for grown in tables[1:]:
        assert estimator.append_rows(grown) == "incremental"
        updated = estimator.prior_for_table([per_attribute_bandwidth, 0.3])
        scratch = BatchedKernelPriorEstimator(max_cells=400).fit(grown)
        for a, b in zip(updated, scratch.prior_for_table([per_attribute_bandwidth, 0.3])):
            np.testing.assert_allclose(a.matrix, b.matrix, atol=1e-12, rtol=0)
        flat = _flat_reference(grown, per_attribute_bandwidth)
        np.testing.assert_allclose(updated[0].matrix, flat, atol=1e-12, rtol=0)


def test_blocked_incremental_keeps_far_priors_bitwise_unchanged():
    seed_table = _wide_table(n_rows=220)
    estimator = BatchedKernelPriorEstimator(incremental=True, max_cells=400)
    estimator.fit(seed_table)
    before = estimator.prior_for_table([0.1])[0].matrix
    # Append twins of the first rows with a *different* sensitive value: at
    # b=0.1 (exact-match kernel support) exactly those rows' priors move.
    twins = [dict(seed_table.row(i)) for i in range(10)]
    for row in twins:
        row["Disease"] = "flu" if row["Disease"] != "flu" else "cancer"
    grown = seed_table.extend(
        {name: [row[name] for row in twins] for name in seed_table.schema.names}
    )
    assert estimator.append_rows(grown) == "incremental"
    after = estimator.prior_for_table([0.1])[0].matrix
    unchanged = (after[:220] == before).all(axis=1)
    assert 0 < unchanged.sum() < 220
    scratch = BatchedKernelPriorEstimator(max_cells=400).fit(grown)
    np.testing.assert_allclose(
        after, scratch.prior_for_table([0.1])[0].matrix, atol=1e-12, rtol=0
    )


def test_prior_for_codes_matches_flat_reference(wide_table, per_attribute_bandwidth):
    """The generic query-codes path (unseen combinations included) is exact too."""
    config = EstimatorConfig(max_cells=400)
    blocked = FactoredPriorBackend(config).fit(wide_table)
    flat = FactoredPriorBackend(EstimatorConfig(max_cells=0)).fit(wide_table)
    rng = np.random.default_rng(5)
    sizes = [wide_table.domain(n).size for n in wide_table.quasi_identifier_names]
    queries = np.column_stack([rng.integers(0, s, 40) for s in sizes])
    np.testing.assert_allclose(
        blocked.matrix_for_codes(queries, per_attribute_bandwidth),
        flat.matrix_for_codes(queries, per_attribute_bandwidth),
        atol=1e-12,
        rtol=0,
    )


def test_estimator_config_validation():
    with pytest.raises(KnowledgeError, match="batch_size"):
        EstimatorConfig(batch_size=0)
    with pytest.raises(KnowledgeError, match="max_cells"):
        EstimatorConfig(max_cells=-1)
    with pytest.raises(KnowledgeError, match="max_count_cells"):
        EstimatorConfig(max_count_cells=0)
    assert EstimatorConfig(max_cells=0).backend_name == "flat"
    assert EstimatorConfig().backend_name == "factored"


def test_count_tensor_memory_guard_falls_back_to_flat(wide_table, per_attribute_bandwidth):
    """Pathological count tensors trip the absolute guard (bounded memory wins)."""
    guarded = FactoredPriorBackend(
        EstimatorConfig(max_cells=400, max_count_cells=100)
    ).fit(wide_table)
    assert guarded.mode == "flat"
    # The guard is independent of max_cells: a tiny contraction budget with a
    # roomy count guard still takes the blocked factored path.
    blocked = FactoredPriorBackend(EstimatorConfig(max_cells=400)).fit(wide_table)
    assert blocked.mode == "factored"
    np.testing.assert_allclose(
        guarded.matrices([per_attribute_bandwidth])[0],
        blocked.matrices([per_attribute_bandwidth])[0],
        atol=1e-12,
        rtol=0,
    )


def test_append_growth_past_block_budget_reblocks():
    """A multi-attribute block outgrowing max_cells triggers a re-blocking refit."""
    schema = Schema(
        [numeric_qi("A"), categorical_qi("B"), categorical_qi("C"), sensitive("S")]
    )
    table = MicrodataTable.from_columns(
        schema,
        {
            # Observed (B, C) combos: (p,x), (q,x), (p,y) - 3 of the 4 possible.
            "A": [float(v) for v in range(12)],
            "B": ["p", "q", "p"] * 4,
            "C": ["x", "x", "y"] * 4,
            "S": ["s1", "s2"] * 6,
        },
    )
    backend = FactoredPriorBackend(EstimatorConfig(max_cells=9), incremental=True)
    backend.fit(table)
    assert backend.mode == "factored"
    assert backend.blocks == (("B", "C"),)  # c=3, 3^2 <= 9: one block
    backend.matrices([0.4])
    # The fourth combo (q, y) pushes the block to c=4 (16 > 9): refit re-blocks.
    grown = table.extend({"A": [3.0], "B": ["q"], "C": ["y"], "S": ["s1"]})
    assert backend.append_rows(grown) == "refit"
    assert backend.mode == "factored"
    assert backend.blocks == (("B",), ("C",))
    reference = FactoredPriorBackend(EstimatorConfig(max_cells=0)).fit(grown)
    np.testing.assert_allclose(
        backend.matrices([0.4])[0], reference.matrices([0.4])[0], atol=1e-12, rtol=0
    )


def test_append_growth_past_count_guard_refits():
    full = _wide_table(n_rows=300)
    seed_table = full.select(np.arange(200))
    m = full.sensitive_domain().size
    # Probe the seed's exact count-tensor size, then pin the guard to it so
    # the fit succeeds but any slot growth breaches the guard.
    probe = FactoredPriorBackend(EstimatorConfig(max_cells=400)).fit(seed_table)
    assert probe.mode == "factored"
    threshold = probe._count_storage.shape[0] * probe._n_combos * m
    backend = FactoredPriorBackend(
        EstimatorConfig(max_cells=400, max_count_cells=threshold), incremental=True
    ).fit(seed_table)
    assert backend.mode == "factored"
    assert backend.append_rows(full) == "refit"
    assert backend.mode == "flat"
    reference = FactoredPriorBackend(EstimatorConfig(max_cells=0)).fit(full)
    np.testing.assert_allclose(
        backend.matrices([0.3])[0], reference.matrices([0.3])[0], atol=1e-12, rtol=0
    )


def test_backend_requires_fit():
    backend = FactoredPriorBackend()
    with pytest.raises(KnowledgeError, match="not fitted"):
        backend.matrices([0.3])
    with pytest.raises(KnowledgeError, match="not fitted"):
        backend.append_rows(_wide_table(n_rows=20))
