"""Tests for kernel functions and the kernel registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import KnowledgeError
from repro.knowledge.kernels import (
    biweight_kernel,
    epanechnikov_kernel,
    gaussian_kernel,
    get_kernel,
    kernel_names,
    register_kernel,
    triangular_kernel,
    uniform_kernel,
)

ALL_KERNELS = [
    epanechnikov_kernel,
    uniform_kernel,
    triangular_kernel,
    biweight_kernel,
    gaussian_kernel,
]


def test_epanechnikov_matches_paper_formula():
    bandwidth = 0.5
    x = np.array([0.0, 0.25, 0.49, 0.5, 0.8])
    weights = epanechnikov_kernel(x, bandwidth)
    expected_inside = 0.75 / bandwidth * (1 - (x[:3] / bandwidth) ** 2)
    assert np.allclose(weights[:3], expected_inside)
    assert weights[3] == 0.0
    assert weights[4] == 0.0


def test_epanechnikov_peak_at_zero():
    weights = epanechnikov_kernel(np.array([0.0]), 0.3)
    assert weights[0] == pytest.approx(0.75 / 0.3)


def test_uniform_kernel_constant_inside_support():
    weights = uniform_kernel(np.array([0.0, 0.2, 0.4, 0.41]), 0.4)
    assert weights[0] == weights[1] == weights[2] == pytest.approx(0.5 / 0.4)
    assert weights[3] == 0.0


def test_triangular_kernel_decreases_linearly():
    weights = triangular_kernel(np.array([0.0, 0.1, 0.2]), 0.2)
    assert weights[0] > weights[1] > weights[2]
    assert weights[2] == pytest.approx(0.0)


def test_gaussian_kernel_has_unbounded_support():
    weights = gaussian_kernel(np.array([0.0, 1.0, 5.0]), 0.3)
    assert np.all(weights > 0.0)
    assert weights[0] > weights[1] > weights[2]


@pytest.mark.parametrize("kernel", ALL_KERNELS)
def test_kernels_are_nonnegative_and_peak_at_zero(kernel):
    distances = np.linspace(0.0, 1.0, 21)
    weights = kernel(distances, 0.35)
    assert np.all(weights >= 0.0)
    assert weights[0] == weights.max()


@pytest.mark.parametrize("kernel", ALL_KERNELS)
def test_kernels_are_monotone_nonincreasing(kernel):
    distances = np.linspace(0.0, 1.0, 50)
    weights = kernel(distances, 0.4)
    assert np.all(np.diff(weights) <= 1e-12)


@pytest.mark.parametrize("kernel", ALL_KERNELS)
def test_kernels_reject_bad_bandwidths(kernel):
    with pytest.raises(KnowledgeError):
        kernel(np.array([0.1]), 0.0)
    with pytest.raises(KnowledgeError):
        kernel(np.array([0.1]), -1.0)
    with pytest.raises(KnowledgeError):
        kernel(np.array([0.1]), float("nan"))


def test_registry_lookup():
    assert get_kernel("epanechnikov") is epanechnikov_kernel
    assert get_kernel("Epanechnikov") is epanechnikov_kernel
    assert set(kernel_names()) >= {"epanechnikov", "uniform", "gaussian", "triangular", "biweight"}


def test_registry_unknown_kernel():
    with pytest.raises(KnowledgeError):
        get_kernel("tophat-banana")


def test_register_custom_kernel():
    def flat(distances, bandwidth):
        return np.ones_like(np.asarray(distances, dtype=float))

    register_kernel("flat-test-kernel", flat)
    assert get_kernel("flat-test-kernel") is flat
    with pytest.raises(KnowledgeError):
        register_kernel("flat-test-kernel", flat)


@settings(max_examples=50, deadline=None)
@given(
    distance=st.floats(min_value=0.0, max_value=2.0),
    bandwidth=st.floats(min_value=0.01, max_value=2.0),
)
def test_compact_support_property(distance, bandwidth):
    """Property: compact-support kernels vanish exactly outside |x/B| < 1."""
    for kernel in (epanechnikov_kernel, triangular_kernel, biweight_kernel):
        weight = float(kernel(np.array([distance]), bandwidth)[0])
        if distance >= bandwidth:
            assert weight == 0.0
        else:
            assert weight > 0.0
