"""Append-only updates of the batched kernel prior estimator."""

import numpy as np
import pytest

from repro.data.adult import generate_adult
from repro.data.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.prior import BatchedKernelPriorEstimator

BANDWIDTHS = [0.1, 0.3, 0.5]


def _grown_tables(total_rows=900, seed_rows=600, step=100):
    full = generate_adult(total_rows, seed=11)
    tables = [full.select(np.arange(seed_rows))]
    for stop in range(seed_rows + step, total_rows + 1, step):
        tables.append(full.select(np.arange(stop)))
    return tables


@pytest.mark.parametrize("incremental", [False, True])
def test_append_rows_matches_scratch_fit(incremental):
    tables = _grown_tables()
    estimator = BatchedKernelPriorEstimator(incremental=incremental)
    estimator.fit(tables[0])
    estimator.prior_for_table(BANDWIDTHS)  # populate any caches
    assert estimator.mode == "factored"
    for grown in tables[1:]:
        mode = estimator.append_rows(grown)
        assert mode == "incremental"
        updated = estimator.prior_for_table(BANDWIDTHS)
        scratch = BatchedKernelPriorEstimator().fit(grown).prior_for_table(BANDWIDTHS)
        for a, b in zip(updated, scratch):
            assert a.matrix.shape == b.matrix.shape
            np.testing.assert_allclose(a.matrix, b.matrix, atol=1e-12, rtol=0)


def test_append_rows_keeps_far_priors_bitwise_unchanged():
    """Compact-support kernels: rows far from every appended row keep their
    exact prior - the invariant the publisher's dirty tracking relies on."""
    tables = _grown_tables()
    estimator = BatchedKernelPriorEstimator(incremental=True)
    estimator.fit(tables[0])
    before = estimator.prior_for_table([0.1])[0].matrix
    estimator.append_rows(tables[1])
    after = estimator.prior_for_table([0.1])[0].matrix
    n_previous = before.shape[0]
    unchanged = (after[:n_previous] == before).all(axis=1)
    # Some priors must move (the batch is in-distribution) and, at b=0.1,
    # many rows are outside every appended row's kernel support.
    assert 0 < unchanged.sum() < n_previous


def test_append_rows_with_new_domain_values_refits():
    tables = _grown_tables(total_rows=700, seed_rows=600, step=100)
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(tables[0])
    estimator.prior_for_table([0.3])
    # A grown table with an unseen Age value gets fresh domains -> refit.
    grown = tables[1]
    columns = {name: grown.column(name).copy() for name in grown.schema.names}
    columns["Age"][-1] = 123.0
    rebuilt = MicrodataTable(grown.schema, columns)
    assert estimator.append_rows(rebuilt) == "refit"
    scratch = BatchedKernelPriorEstimator().fit(rebuilt)
    np.testing.assert_allclose(
        estimator.prior_for_table([0.3])[0].matrix,
        scratch.prior_for_table([0.3])[0].matrix,
        atol=1e-12,
        rtol=0,
    )


def test_append_rows_flat_reference_mode_refits():
    """The flat reference (max_cells=0) has no incremental state: it refits."""
    tables = _grown_tables(total_rows=700, seed_rows=600, step=100)
    estimator = BatchedKernelPriorEstimator(incremental=True, max_cells=0).fit(tables[0])
    assert estimator.mode == "flat"
    assert estimator.append_rows(tables[1]) == "refit"
    np.testing.assert_allclose(
        estimator.prior_for_table([0.3])[0].matrix,
        BatchedKernelPriorEstimator().fit(tables[1]).prior_for_table([0.3])[0].matrix,
        atol=1e-12,
        rtol=0,
    )


def test_append_rows_single_qi_table_stays_factored():
    """A lone quasi-identifier no longer forces the flat sweep (zero rest blocks)."""
    schema = Schema(
        [
            Attribute("Age", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER),
            Attribute("Disease", AttributeKind.CATEGORICAL, AttributeRole.SENSITIVE),
        ]
    )
    table = MicrodataTable.from_columns(
        schema, {"Age": [30.0, 40.0, 50.0], "Disease": ["a", "b", "a"]}
    )
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(table)
    assert estimator.mode == "factored"
    assert estimator.blocks == ()
    grown = table.extend({"Age": [40.0], "Disease": ["b"]})
    assert estimator.append_rows(grown) == "incremental"
    np.testing.assert_allclose(
        estimator.prior_for_table([0.3])[0].matrix,
        BatchedKernelPriorEstimator(max_cells=0).fit(grown).prior_for_table([0.3])[0].matrix,
        atol=1e-12,
        rtol=0,
    )


def test_append_rows_rejects_shrunken_tables():
    tables = _grown_tables(total_rows=700, seed_rows=600, step=100)
    estimator = BatchedKernelPriorEstimator().fit(tables[1])
    with pytest.raises(KnowledgeError):
        estimator.append_rows(tables[0])


def test_append_rows_requires_fit():
    with pytest.raises(KnowledgeError):
        BatchedKernelPriorEstimator().append_rows(generate_adult(50, seed=1))
