"""Tests for data-driven bandwidth selection."""

import numpy as np
import pytest

from repro.data.schema import Schema, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.selection import BandwidthScore, cross_validation_score, select_bandwidth


@pytest.fixture(scope="module")
def correlated_table():
    """Age strongly predicts the disease, with a little noise."""
    rng = np.random.default_rng(3)
    n = 400
    ages = rng.integers(20, 80, size=n)
    disease = np.where(
        ages >= 50,
        rng.choice(["Emphysema", "Flu"], size=n, p=[0.9, 0.1]),
        rng.choice(["Emphysema", "Flu"], size=n, p=[0.1, 0.9]),
    )
    schema = Schema([numeric_qi("Age"), sensitive("Disease")])
    return MicrodataTable.from_columns(schema, {"Age": ages, "Disease": disease})


def test_score_is_finite_and_negative(correlated_table):
    score = cross_validation_score(correlated_table, 0.3, n_folds=4)
    assert np.isfinite(score)
    assert score < 0.0  # log-likelihood of probabilities <= 1


def test_informative_bandwidth_beats_uninformative(correlated_table):
    """A moderate bandwidth captures the Age <-> Disease correlation; a huge one
    (the overall-distribution adversary) cannot."""
    moderate = cross_validation_score(correlated_table, 0.2, n_folds=4)
    huge = cross_validation_score(correlated_table, 5.0, n_folds=4)
    assert moderate > huge


def test_tiny_bandwidth_overfits(correlated_table):
    """An extremely small bandwidth conditions on nearly-exact ages and
    generalises worse than a moderate one on held-out data."""
    tiny = cross_validation_score(correlated_table, 0.005, n_folds=4)
    moderate = cross_validation_score(correlated_table, 0.2, n_folds=4)
    assert moderate >= tiny


def test_score_accepts_bandwidth_object(correlated_table):
    bandwidth = Bandwidth({"Age": 0.25})
    score = cross_validation_score(correlated_table, bandwidth, n_folds=3)
    assert np.isfinite(score)


def test_score_is_deterministic_for_seed(correlated_table):
    first = cross_validation_score(correlated_table, 0.3, n_folds=4, seed=9)
    second = cross_validation_score(correlated_table, 0.3, n_folds=4, seed=9)
    assert first == pytest.approx(second)


def test_validation_errors(correlated_table):
    with pytest.raises(KnowledgeError):
        cross_validation_score(correlated_table, 0.3, n_folds=1)
    small = correlated_table.select(np.arange(5))
    with pytest.raises(KnowledgeError):
        cross_validation_score(small, 0.3, n_folds=5)
    with pytest.raises(KnowledgeError):
        select_bandwidth(correlated_table, candidates=())


def test_select_bandwidth_returns_best_and_all_scores(correlated_table):
    best, scores = select_bandwidth(
        correlated_table, candidates=(0.1, 0.3, 2.0), n_folds=3
    )
    assert isinstance(scores[0], BandwidthScore)
    assert len(scores) == 3
    assert best in {score.b for score in scores}
    best_score = max(scores, key=lambda s: s.log_likelihood)
    assert best == best_score.b
    # The huge bandwidth should not be the winner on strongly correlated data.
    assert best != 2.0


def test_select_bandwidth_on_adult(small_adult):
    """select_bandwidth works end-to-end on the six-attribute Adult-like table.

    With only 1 000 rows and six QI attributes the likelihood profile is fairly
    flat (small-bandwidth product kernels find few exact neighbours), so this
    test only checks structure, not which candidate wins.
    """
    best, scores = select_bandwidth(small_adult, candidates=(0.3, 1.5), n_folds=3)
    assert best in {0.3, 1.5}
    assert all(np.isfinite(score.log_likelihood) for score in scores)
    assert all(score.n_folds == 3 for score in scores)
