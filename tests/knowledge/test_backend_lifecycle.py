"""Full-lifecycle backend deltas: remove_rows / update_rows equivalence.

The contract under test: after retracting or correcting rows, the maintained
factored state produces priors that match a from-scratch fit of the
post-batch table to ``<= 1e-12`` (the incremental paths are in fact exact:
count deltas are integer arithmetic in float64 and affected queries are
fully recontracted), for every kernel, with per-attribute bandwidths, and
across the retired-slot refit guard.
"""

import numpy as np
import pytest

from repro.data.adult import generate_adult
from repro.data.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import BatchedKernelPriorEstimator

BANDWIDTHS = [0.1, 0.3, 0.5]


def _dense_table(n=400, seed=3):
    """A table whose rest combinations repeat heavily (no singleton slots)."""
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Attribute("A", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER),
            Attribute("B", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("C", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("S", AttributeKind.CATEGORICAL, AttributeRole.SENSITIVE),
        ]
    )
    columns = {
        "A": rng.integers(0, 12, n).astype(float),
        "B": rng.choice(list("xyz"), n),
        "C": rng.choice(list("pq"), n),
        "S": rng.choice(["flu", "cold", "hiv", "ok"], n),
    }
    return MicrodataTable(schema, columns)


def _scratch(table, bandwidths, **options):
    return BatchedKernelPriorEstimator(**options).fit(table).prior_for_table(bandwidths)


def _max_difference(maintained, reference):
    return max(
        float(np.abs(a.matrix - b.matrix).max()) for a, b in zip(maintained, reference)
    )


def _replace(table, positions, donor_positions, sensitive_only=False):
    """An in-domain correction: rows at ``positions`` copy donor rows."""
    columns = {name: table.column(name).copy() for name in table.schema.names}
    names = [table.sensitive_name] if sensitive_only else list(table.schema.names)
    for name in names:
        columns[name][positions] = table.column(name)[donor_positions]
    domains = {name: table.domain(name) for name in table.schema.names}
    return MicrodataTable(table.schema, columns, domains=domains)


@pytest.mark.parametrize("kernel", ["epanechnikov", "triangular", "uniform"])
def test_remove_rows_matches_scratch_fit(kernel):
    table = _dense_table()
    estimator = BatchedKernelPriorEstimator(kernel=kernel, incremental=True).fit(table)
    estimator.prior_for_table(BANDWIDTHS)  # populate the contraction caches
    rng = np.random.default_rng(11)
    removed = np.sort(rng.choice(table.n_rows, size=35, replace=False))
    shrunk = table.select(np.setdiff1d(np.arange(table.n_rows), removed))
    mode = estimator.remove_rows(shrunk, removed)
    assert mode == "incremental"
    difference = _max_difference(
        estimator.prior_for_table(BANDWIDTHS), _scratch(shrunk, BANDWIDTHS, kernel=kernel)
    )
    assert difference <= 1e-12


@pytest.mark.parametrize("sensitive_only", [True, False], ids=["sensitive", "full-row"])
def test_update_rows_matches_scratch_fit(sensitive_only):
    table = _dense_table(seed=5)
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(table)
    estimator.prior_for_table(BANDWIDTHS)
    rng = np.random.default_rng(13)
    positions = np.sort(rng.choice(table.n_rows, size=30, replace=False))
    donors = rng.integers(0, table.n_rows, size=30)
    updated = _replace(table, positions, donors, sensitive_only=sensitive_only)
    mode = estimator.update_rows(updated, positions)
    assert mode == "incremental"
    difference = _max_difference(
        estimator.prior_for_table(BANDWIDTHS), _scratch(updated, BANDWIDTHS)
    )
    assert difference <= 1e-12


def test_per_attribute_bandwidths_survive_lifecycle():
    table = _dense_table(seed=7)
    names = table.quasi_identifier_names
    bandwidths = [
        Bandwidth({names[0]: 0.1, names[1]: 0.4, names[2]: 0.2}),
        Bandwidth({names[0]: 0.3, names[1]: 0.1, names[2]: 0.5}),
    ]
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(table)
    estimator.prior_for_table(bandwidths)
    rng = np.random.default_rng(17)
    removed = np.sort(rng.choice(table.n_rows, size=25, replace=False))
    shrunk = table.select(np.setdiff1d(np.arange(table.n_rows), removed))
    assert estimator.remove_rows(shrunk, removed) == "incremental"
    positions = np.sort(rng.choice(shrunk.n_rows, size=20, replace=False))
    updated = _replace(shrunk, positions, rng.integers(0, shrunk.n_rows, size=20))
    assert estimator.update_rows(updated, positions) == "incremental"
    difference = _max_difference(
        estimator.prior_for_table(bandwidths), _scratch(updated, bandwidths)
    )
    assert difference <= 1e-12


def test_interleaved_lifecycle_stays_exact():
    """remove -> update -> append -> remove keeps matching scratch fits."""
    table = _dense_table(seed=9)
    extra = _dense_table(n=60, seed=10)
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(table)
    estimator.prior_for_table(BANDWIDTHS)
    rng = np.random.default_rng(19)

    removed = np.sort(rng.choice(table.n_rows, size=30, replace=False))
    current = table.select(np.setdiff1d(np.arange(table.n_rows), removed))
    estimator.remove_rows(current, removed)

    positions = np.sort(rng.choice(current.n_rows, size=25, replace=False))
    current = _replace(current, positions, rng.integers(0, current.n_rows, size=25))
    estimator.update_rows(current, positions)

    current = current.extend({name: extra.column(name) for name in table.schema.names})
    estimator.append_rows(current)

    removed = np.sort(rng.choice(current.n_rows, size=20, replace=False))
    current = current.select(np.setdiff1d(np.arange(current.n_rows), removed))
    estimator.remove_rows(current, removed)

    difference = _max_difference(
        estimator.prior_for_table(BANDWIDTHS), _scratch(current, BANDWIDTHS)
    )
    assert difference <= 1e-12


def test_retired_slot_guard_refits_and_stays_exact():
    """Adult-style singleton slots: removals retire slots exactly in place
    until the retired fraction breaches the guard, which forces a compact
    refit - and the priors match a scratch fit throughout."""
    table = generate_adult(600, seed=11)
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(table)
    estimator.prior_for_table(BANDWIDTHS)
    rng = np.random.default_rng(23)
    modes = []
    current = table
    for _ in range(12):
        removed = np.sort(rng.choice(current.n_rows, size=40, replace=False))
        current = current.select(np.setdiff1d(np.arange(current.n_rows), removed))
        modes.append(estimator.remove_rows(current, removed))
        backend = estimator.backend
        retired = int(
            (backend._slot_totals[: backend._n_combos] == 0.0).sum()
        )
        assert retired <= max(16, backend._n_combos // 4 + 1)
    assert "incremental" in modes and "refit" in modes
    difference = _max_difference(
        estimator.prior_for_table(BANDWIDTHS), _scratch(current, BANDWIDTHS)
    )
    assert difference <= 1e-12


def test_update_with_unseen_rest_combination_grows_slots():
    base = _dense_table(seed=21)
    # Suppress the (B='z', C='q') rest combination so a correction can
    # introduce it (domains still cover both values individually).
    columns = {name: base.column(name).copy() for name in base.schema.names}
    columns["C"][columns["B"] == "z"] = "p"
    table = MicrodataTable(base.schema, columns)
    assert not np.any((table.column("B") == "z") & (table.column("C") == "q"))
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(table)
    estimator.prior_for_table(BANDWIDTHS)
    combos_before = estimator.backend._n_combos

    corrected = {name: table.column(name).copy() for name in table.schema.names}
    corrected["B"][0], corrected["C"][0] = "z", "q"
    updated = MicrodataTable(
        table.schema, corrected, domains={n: table.domain(n) for n in table.schema.names}
    )
    mode = estimator.update_rows(updated, np.asarray([0]))
    assert mode == "incremental"
    assert estimator.backend._n_combos == combos_before + 1
    difference = _max_difference(
        estimator.prior_for_table(BANDWIDTHS), _scratch(updated, BANDWIDTHS)
    )
    assert difference <= 1e-12


def test_flat_reference_mode_refits():
    table = _dense_table(seed=25)
    estimator = BatchedKernelPriorEstimator(max_cells=0, incremental=True).fit(table)
    removed = np.asarray([0, 5, 9])
    shrunk = table.select(np.setdiff1d(np.arange(table.n_rows), removed))
    assert estimator.remove_rows(shrunk, removed) == "refit"
    difference = _max_difference(
        estimator.prior_for_table(BANDWIDTHS),
        _scratch(shrunk, BANDWIDTHS, max_cells=0),
    )
    assert difference <= 1e-12


def test_lifecycle_validation_errors():
    table = _dense_table(seed=27)
    estimator = BatchedKernelPriorEstimator(incremental=True).fit(table)
    shrunk = table.select(np.arange(1, table.n_rows))
    with pytest.raises(KnowledgeError):
        estimator.remove_rows(shrunk, np.asarray([], dtype=np.int64))
    with pytest.raises(KnowledgeError):
        estimator.remove_rows(shrunk, np.asarray([table.n_rows]))
    with pytest.raises(KnowledgeError):
        estimator.remove_rows(shrunk, np.asarray([0, 1]))  # row-count mismatch
    with pytest.raises(KnowledgeError):
        estimator.remove_rows(table, np.arange(table.n_rows))  # remove everything
    with pytest.raises(KnowledgeError):
        estimator.update_rows(table, np.asarray([], dtype=np.int64))
    with pytest.raises(KnowledgeError):
        estimator.update_rows(table, np.asarray([-1]))
    with pytest.raises(KnowledgeError):
        estimator.update_rows(shrunk, np.asarray([0]))  # row-count mismatch
