"""Tests for bandwidth vectors (the Adv(B) parameterisation)."""

import pytest

from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth


def test_uniform_bandwidth():
    bandwidth = Bandwidth.uniform(["Age", "Sex"], 0.3)
    assert bandwidth["Age"] == 0.3
    assert bandwidth["Sex"] == 0.3
    assert len(bandwidth) == 2
    assert bandwidth.attribute_names == ("Age", "Sex")


def test_split_bandwidth():
    bandwidth = Bandwidth.split(["A1", "A2", "A3"], 0.2, ["A4", "A5", "A6"], 0.4)
    assert bandwidth["A1"] == 0.2
    assert bandwidth["A6"] == 0.4
    assert len(bandwidth) == 6


def test_split_rejects_overlapping_blocks():
    with pytest.raises(KnowledgeError):
        Bandwidth.split(["A1", "A2"], 0.2, ["A2", "A3"], 0.4)


def test_dict_constructor_and_as_dict():
    bandwidth = Bandwidth({"Age": 0.25, "Sex": 0.5})
    assert bandwidth.as_dict() == {"Age": 0.25, "Sex": 0.5}
    assert dict(bandwidth.items()) == {"Age": 0.25, "Sex": 0.5}


def test_non_positive_bandwidth_rejected():
    with pytest.raises(KnowledgeError):
        Bandwidth({"Age": 0.0})
    with pytest.raises(KnowledgeError):
        Bandwidth({"Age": -0.3})


def test_empty_bandwidth_rejected():
    with pytest.raises(KnowledgeError):
        Bandwidth({})


def test_missing_attribute_raises():
    bandwidth = Bandwidth({"Age": 0.3})
    with pytest.raises(KnowledgeError):
        bandwidth["Sex"]
    assert "Sex" not in bandwidth
    assert "Age" in bandwidth


def test_iteration_order():
    bandwidth = Bandwidth({"Age": 0.3, "Sex": 0.4, "Race": 0.5})
    assert list(bandwidth) == ["Age", "Sex", "Race"]


def test_restricted_to():
    bandwidth = Bandwidth({"Age": 0.3, "Sex": 0.4, "Race": 0.5})
    restricted = bandwidth.restricted_to(["Race", "Age"])
    assert restricted.attribute_names == ("Race", "Age")
    assert restricted["Race"] == 0.5


def test_describe_scalar_and_mixed():
    assert Bandwidth.uniform(["A", "B"], 0.3).describe() == "b=0.3"
    mixed = Bandwidth({"A": 0.2, "B": 0.4}).describe()
    assert "A=0.2" in mixed and "B=0.4" in mixed


def test_equality_and_hashability():
    first = Bandwidth({"Age": 0.3})
    second = Bandwidth({"Age": 0.3})
    third = Bandwidth({"Age": 0.4})
    assert first == second
    assert first != third
    assert len({first, second, third}) == 2
