"""Tests for kernel-regression prior estimation (Sections II-B to II-D)."""

import numpy as np
import pytest

from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import (
    KernelPriorEstimator,
    PriorBeliefs,
    kernel_prior,
    mle_prior,
    overall_prior,
    uniform_prior,
)


@pytest.fixture()
def toy_table():
    """A tiny table with a deterministic Age <-> Disease relationship.

    Ages 20-22 always have Flu, ages 80-82 always have Cancer, so a
    small-bandwidth adversary should be near-certain about every tuple while a
    huge-bandwidth adversary only knows the 50/50 overall distribution.
    """
    schema = Schema([numeric_qi("Age"), sensitive("Disease")])
    return MicrodataTable.from_columns(
        schema,
        {
            "Age": [20, 21, 22, 80, 81, 82],
            "Disease": ["Flu", "Flu", "Flu", "Cancer", "Cancer", "Cancer"],
        },
    )


def test_prior_beliefs_validation():
    with pytest.raises(KnowledgeError):
        PriorBeliefs(matrix=np.array([[0.5, 0.6]]))  # does not sum to 1
    with pytest.raises(KnowledgeError):
        PriorBeliefs(matrix=np.array([[1.5, -0.5]]))  # negative entry
    with pytest.raises(KnowledgeError):
        PriorBeliefs(matrix=np.array([0.5, 0.5]))  # not 2-D
    beliefs = PriorBeliefs(matrix=np.array([[0.25, 0.75]]))
    assert beliefs.n_rows == 1
    assert beliefs.n_sensitive_values == 2


def test_rows_are_distributions(small_adult, small_adult_priors):
    matrix = small_adult_priors.matrix
    assert matrix.shape == (small_adult.n_rows, small_adult.sensitive_domain().size)
    assert np.allclose(matrix.sum(axis=1), 1.0)
    assert matrix.min() >= 0.0


def test_small_bandwidth_sharpens_toward_true_value(toy_table):
    priors = kernel_prior(toy_table, 0.05)
    codes = toy_table.sensitive_codes()
    for row in range(toy_table.n_rows):
        assert priors.matrix[row, codes[row]] > 0.95


def test_large_bandwidth_with_uniform_kernel_recovers_overall(toy_table):
    """Section II-D: bandwidth = domain range + uniform kernel = t-closeness adversary."""
    priors = kernel_prior(toy_table, 1.0, kernel="uniform")
    overall = toy_table.sensitive_distribution()
    assert np.allclose(priors.matrix, overall, atol=1e-12)


def test_bandwidth_monotonicity_of_knowledge(small_adult):
    """Smaller bandwidths concentrate more prior mass on each tuple's true value."""
    sharp = kernel_prior(small_adult, 0.1)
    blunt = kernel_prior(small_adult, 0.8)
    codes = small_adult.sensitive_codes()
    rows = np.arange(small_adult.n_rows)
    sharp_mass = sharp.matrix[rows, codes].mean()
    blunt_mass = blunt.matrix[rows, codes].mean()
    assert sharp_mass > blunt_mass


def test_priors_always_average_to_overall_distribution(small_adult):
    """Kernel priors are consistent with the data: no adversary disputes the marginal."""
    priors = kernel_prior(small_adult, 0.3)
    overall = small_adult.sensitive_distribution()
    assert np.allclose(priors.matrix.mean(axis=0), overall, atol=0.03)


def test_estimator_requires_fit(small_adult):
    estimator = KernelPriorEstimator(Bandwidth.uniform(small_adult.quasi_identifier_names, 0.3))
    with pytest.raises(KnowledgeError):
        estimator.prior_for_table()


def test_estimator_requires_full_bandwidth_coverage(small_adult):
    estimator = KernelPriorEstimator(Bandwidth({"Age": 0.3}))
    with pytest.raises(KnowledgeError) as excinfo:
        estimator.fit(small_adult)
    assert "Workclass" in str(excinfo.value)


def test_bad_batch_size_rejected():
    with pytest.raises(KnowledgeError):
        KernelPriorEstimator(Bandwidth({"Age": 0.3}), batch_size=0)


def test_batch_size_does_not_change_result(toy_table):
    big = kernel_prior(toy_table, 0.3, batch_size=1000)
    small = kernel_prior(toy_table, 0.3, batch_size=1)
    assert np.allclose(big.matrix, small.matrix)


def test_query_codes_shape_validation(toy_table):
    estimator = KernelPriorEstimator(Bandwidth({"Age": 0.3})).fit(toy_table)
    with pytest.raises(KnowledgeError):
        estimator.prior_for_codes(np.zeros((2, 3), dtype=np.int64))


def test_per_attribute_bandwidth(small_adult):
    """A Bandwidth object with different per-attribute values is accepted."""
    names = small_adult.quasi_identifier_names
    bandwidth = Bandwidth.split(list(names[:3]), 0.2, list(names[3:]), 0.5)
    priors = kernel_prior(small_adult, bandwidth)
    assert np.allclose(priors.matrix.sum(axis=1), 1.0)


def test_prior_for_other_table(small_adult):
    """Priors can be evaluated for tuples of a different table over the same domains."""
    estimator = KernelPriorEstimator(
        Bandwidth.uniform(small_adult.quasi_identifier_names, 0.3)
    ).fit(small_adult)
    subset = small_adult.select(np.arange(50))
    beliefs = estimator.prior_for_table(subset)
    full = estimator.prior_for_table()
    assert beliefs.matrix.shape[0] == 50
    assert np.allclose(beliefs.matrix, full.matrix[:50])


def test_uniform_prior_is_inconsistent_ignorant_adversary(small_adult):
    beliefs = uniform_prior(small_adult)
    m = small_adult.sensitive_domain().size
    assert np.allclose(beliefs.matrix, 1.0 / m)


def test_overall_prior_matches_table_distribution(small_adult):
    beliefs = overall_prior(small_adult)
    assert np.allclose(beliefs.matrix[0], small_adult.sensitive_distribution())
    assert np.allclose(beliefs.matrix, beliefs.matrix[0])


def test_mle_prior_conditions_on_exact_qi(toy_table):
    beliefs = mle_prior(toy_table)
    codes = toy_table.sensitive_codes()
    for row in range(toy_table.n_rows):
        # Every QI value is unique in the toy table, so the MLE is degenerate.
        assert beliefs.matrix[row, codes[row]] == pytest.approx(1.0)


def test_mle_prior_groups_identical_qi_values():
    schema = Schema([categorical_qi("Sex"), sensitive("Disease")])
    table = MicrodataTable.from_columns(
        schema, {"Sex": ["M", "M", "F", "F"], "Disease": ["Flu", "Cancer", "Flu", "Flu"]}
    )
    beliefs = mle_prior(table)
    flu = table.sensitive_domain().code_of("Flu")
    males = [i for i, v in enumerate(table.column("Sex")) if v == "M"]
    for index in males:
        assert beliefs.matrix[index, flu] == pytest.approx(0.5)
