"""Chunked (out-of-core) prior fits are bitwise identical to resident fits.

The tentpole contract of the TableSource ingestion layer: feeding
:meth:`FactoredPriorBackend.fit` a chunk stream - first chunk through the
ordinary fit, later chunks through the exact ``append_rows`` deltas, one
final slot canonicalisation - produces the *same bits* as fitting the fully
resident table, for every kernel, for the blocked wide-schema mode, and for
any chunk size.  ``<= 1e-12`` is not good enough here: the streamed fit must
be indistinguishable so that chunked publications and audits are exactly
the resident ones.

The subprocess harness at the bottom then pins the point of the exercise:
the chunked 100k-row fit stays under the peak RSS the in-RAM pipeline
spends on the same data.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.source import InMemoryTableSource, NpzTableSource, write_npz
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.backend import EstimatorConfig, FactoredPriorBackend
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.kernels import kernel_names
from repro.knowledge.prior import BatchedKernelPriorEstimator, kernel_prior

ROWS = 900


def _wide_table(n_rows: int = 420, n_attributes: int = 12, seed: int = 3):
    """The blocked-mode regime (mirrors tests/knowledge/test_backend.py)."""
    rng = np.random.default_rng(seed)
    attributes = []
    columns: dict = {}
    for i in range(n_attributes):
        name = f"Q{i:02d}"
        if i % 3 == 0:
            attributes.append(numeric_qi(name))
            columns[name] = rng.integers(0, 3, n_rows).astype(float)
        else:
            attributes.append(categorical_qi(name))
            columns[name] = rng.choice(["a", "b"], n_rows).tolist()
    attributes.append(sensitive("Disease"))
    columns["Disease"] = rng.choice(
        ["flu", "cancer", "hiv", "cold", "ulcer"], n_rows
    ).tolist()
    return MicrodataTable.from_columns(Schema(attributes), columns)


@pytest.fixture(scope="module")
def table():
    return generate_adult(ROWS, seed=11)


@pytest.fixture(scope="module")
def npz_source(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("scale") / "adult.npz"
    write_npz(path, table)
    return NpzTableSource(path, adult_schema())


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and a.tobytes() == b.tobytes()


@pytest.mark.parametrize("kernel", kernel_names())
def test_chunked_fit_matches_resident_fit_bitwise_every_kernel(
    table, npz_source, kernel
):
    resident = kernel_prior(table, 0.3, kernel=kernel).matrix
    chunked = kernel_prior(
        npz_source, 0.3, kernel=kernel, config=EstimatorConfig(chunk_rows=128)
    ).matrix
    assert _bitwise_equal(chunked, resident)


@pytest.mark.parametrize("chunk_rows", [1, 7, 128, ROWS, ROWS + 50])
def test_chunked_fit_is_chunk_size_invariant(table, npz_source, chunk_rows):
    resident = kernel_prior(table, 0.25).matrix
    chunked = kernel_prior(
        npz_source, 0.25, config=EstimatorConfig(chunk_rows=chunk_rows)
    ).matrix
    assert _bitwise_equal(chunked, resident)


def test_chunked_fit_matches_on_blocked_wide_schema():
    """The blocked (wide-schema) mode streams bitwise too."""
    wide = _wide_table(n_rows=420)
    bandwidth = Bandwidth(
        {name: 0.15 + 0.05 * (i % 5) for i, name in enumerate(wide.quasi_identifier_names)}
    )
    config = EstimatorConfig(max_cells=600)
    resident_backend = FactoredPriorBackend(config).fit(wide)
    assert len(resident_backend.blocks) > 1  # really the blocked regime
    resident = BatchedKernelPriorEstimator(config=config)
    resident.fit(wide)
    chunked = BatchedKernelPriorEstimator(
        config=EstimatorConfig(max_cells=600, chunk_rows=64)
    )
    chunked.fit(InMemoryTableSource(wide))
    a = resident.prior_for_table([bandwidth])[0].matrix
    b = chunked.prior_for_table([bandwidth])[0].matrix
    assert _bitwise_equal(b, a)


def test_flat_reference_accepts_sources(table, npz_source):
    """max_cells=0 (the flat sweep) accumulates the chunks and still matches."""
    resident = kernel_prior(table, 0.3, max_cells=0).matrix
    chunked = kernel_prior(
        npz_source, 0.3, config=EstimatorConfig(max_cells=0, chunk_rows=100)
    ).matrix
    assert _bitwise_equal(chunked, resident)


def test_source_row_count_mismatch_raises(table):
    class TruncatedSource(InMemoryTableSource):
        """Declares the full row count but stops after one chunk."""

        def iter_chunks(self, chunk_rows=None):
            yield next(super().iter_chunks(chunk_rows=chunk_rows))

    with pytest.raises(KnowledgeError, match="declared"):
        FactoredPriorBackend(EstimatorConfig(chunk_rows=100)).fit(
            TruncatedSource(table)
        )


# -- the peak-RSS harness -------------------------------------------------------------
#
# Both children fit the same 100k-row table (bandwidth 0.3) and report their
# lifetime ru_maxrss; the resident child first *builds* the table in RAM (the
# raw-value columns the pre-TableSource pipeline had to hold), the chunked
# child memory-maps the npz and streams 8k-row chunks.  The ceiling the
# chunked fit must stay under is exactly the resident child's footprint.

HARNESS_ROWS = int(os.environ.get("REPRO_TEST_RSS_ROWS", "100000"))
HARNESS_CHUNK = 8192
_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_harness_child(role: str, npz_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        _SRC + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else _SRC
    )
    completed = subprocess.run(
        [sys.executable, __file__, role, str(npz_path), str(HARNESS_ROWS)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 0, f"{role} child failed:\n{completed.stderr}"
    return json.loads(completed.stdout.splitlines()[-1])


def _child_peak_rss_mb() -> float:
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / (1024 * 1024) if sys.platform == "darwin" else peak / 1024


def _child(role: str, npz_path: str, rows: int) -> dict:
    if role == "prepare":
        write_npz(npz_path, generate_adult(rows, seed=4))
        return {"rows": rows}
    if role == "resident":
        resident_table = generate_adult(rows, seed=4)
        matrix = kernel_prior(resident_table, 0.3).matrix
    else:
        source = NpzTableSource(npz_path, adult_schema())
        matrix = kernel_prior(
            source, 0.3, config=EstimatorConfig(chunk_rows=HARNESS_CHUNK)
        ).matrix
    return {
        "peak_rss_mb": _child_peak_rss_mb(),
        "checksum": float(matrix.sum()),
        "shape": list(matrix.shape),
    }


def test_chunked_fit_stays_under_the_resident_footprint(tmp_path):
    npz_path = tmp_path / f"adult-{HARNESS_ROWS}.npz"
    _run_harness_child("prepare", npz_path)
    chunked = _run_harness_child("chunked", npz_path)
    resident = _run_harness_child("resident", npz_path)
    assert chunked["shape"] == resident["shape"]
    assert chunked["checksum"] == resident["checksum"]  # same bits, same sum
    ceiling = resident["peak_rss_mb"]
    assert chunked["peak_rss_mb"] < ceiling, (
        f"chunked fit peaked at {chunked['peak_rss_mb']:.0f} MB, not under the "
        f"resident pipeline's {ceiling:.0f} MB"
    )


if __name__ == "__main__":
    print(json.dumps(_child(sys.argv[1], sys.argv[2], int(sys.argv[3]))))
