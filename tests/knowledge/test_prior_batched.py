"""Batched-vs-legacy equivalence for the multi-bandwidth kernel estimator."""

import numpy as np
import pytest

from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import (
    BatchedKernelPriorEstimator,
    KernelPriorEstimator,
    batched_kernel_priors,
    kernel_prior,
)

BANDWIDTHS = (0.1, 0.3, 0.5)


@pytest.fixture(scope="module")
def factored(tiny_adult_module):
    estimator = BatchedKernelPriorEstimator().fit(tiny_adult_module)
    assert estimator.mode == "factored"
    return estimator


@pytest.fixture(scope="module")
def tiny_adult_module():
    from repro.data.adult import generate_adult

    return generate_adult(300, seed=7)


def test_factored_matches_legacy_per_bandwidth(factored, tiny_adult_module):
    batched = factored.prior_for_table(BANDWIDTHS)
    for b, priors in zip(BANDWIDTHS, batched):
        reference = kernel_prior(tiny_adult_module, b)
        np.testing.assert_allclose(priors.matrix, reference.matrix, atol=1e-9)
        assert priors.description == reference.description


def test_flat_fallback_matches_legacy(tiny_adult_module):
    estimator = BatchedKernelPriorEstimator(max_cells=0).fit(tiny_adult_module)
    assert estimator.mode == "flat"
    batched = estimator.prior_for_table(BANDWIDTHS)
    for b, priors in zip(BANDWIDTHS, batched):
        reference = kernel_prior(tiny_adult_module, b)
        np.testing.assert_allclose(priors.matrix, reference.matrix, atol=1e-12)


@pytest.mark.parametrize("kernel", ["gaussian", "triangular", "uniform"])
def test_other_kernels_match(tiny_adult_module, kernel):
    batched = batched_kernel_priors(tiny_adult_module, [0.3], kernel=kernel)[0]
    reference = kernel_prior(tiny_adult_module, 0.3, kernel=kernel)
    np.testing.assert_allclose(batched.matrix, reference.matrix, atol=1e-9)


def test_per_attribute_bandwidth_matches(factored, tiny_adult_module):
    names = list(tiny_adult_module.quasi_identifier_names)
    bandwidth = Bandwidth.split(names[:2], 0.15, names[2:], 0.45)
    batched = factored.prior_for_table([bandwidth])[0]
    legacy = (
        KernelPriorEstimator(bandwidth).fit(tiny_adult_module).prior_for_table()
    )
    np.testing.assert_allclose(batched.matrix, legacy.matrix, atol=1e-9)


def test_duplicate_bandwidths_share_one_computation(factored):
    first, second = factored.prior_for_table([0.3, 0.3])
    assert first.matrix is second.matrix


def test_rows_are_distributions(factored):
    for priors in factored.prior_for_table(BANDWIDTHS):
        np.testing.assert_allclose(priors.matrix.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(priors.matrix >= -1e-12)


def test_unfitted_estimator_rejected():
    with pytest.raises(KnowledgeError, match="not fitted"):
        BatchedKernelPriorEstimator().prior_for_table([0.3])


def test_uncovering_bandwidth_rejected(factored):
    partial = Bandwidth({"Age": 0.3})
    with pytest.raises(KnowledgeError, match="does not cover"):
        factored.prior_for_table([partial])
