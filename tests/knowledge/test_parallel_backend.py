"""Threaded-vs-serial equivalence for the parallel factored contraction.

The contract under test: ``jobs=N`` never changes results.  Per-tile tasks
write disjoint output slices with arithmetic identical to the serial loop,
and bandwidth sharing evaluates the same elementwise kernels on the same
values - so threaded priors are *bitwise* equal to ``jobs=1``, across every
kernel, per-attribute bandwidths, blocked wide schemas, generic unseen-combo
queries and the full incremental lifecycle.  The growth-aware block layout
is separately checked against the flat reference sweep to ``<= 1e-12``.
"""

import numpy as np
import pytest

from repro.data.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.backend import EstimatorConfig, FactoredPriorBackend
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.parallel import (
    JOBS_ENV,
    default_jobs,
    parse_jobs,
    resolve_jobs,
    run_tasks,
)
from repro.knowledge.prior import BatchedKernelPriorEstimator

KERNELS = ["epanechnikov", "uniform", "triangular", "biweight", "gaussian"]
BANDWIDTHS = [0.1, 0.3, 0.5]
JOBS = 4  # the container may have one core; the pool still runs 4 threads


def _dense_table(n=400, seed=3):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Attribute("A", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER),
            Attribute("B", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("C", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("S", AttributeKind.CATEGORICAL, AttributeRole.SENSITIVE),
        ]
    )
    columns = {
        "A": rng.integers(0, 12, n).astype(float),
        "B": rng.choice(list("xyz"), n),
        "C": rng.choice(list("pq"), n),
        "S": rng.choice(["flu", "cold", "hiv", "ok"], n),
    }
    return MicrodataTable(schema, columns)


def _wide_table(n=300, seed=41, qi=11):
    """A 12-attribute table whose rest set splits into several blocks."""
    rng = np.random.default_rng(seed)
    attributes = [
        Attribute(f"q{i}", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER)
        for i in range(qi)
    ]
    attributes.append(Attribute("S", AttributeKind.CATEGORICAL, AttributeRole.SENSITIVE))
    columns = {
        f"q{i}": rng.choice([f"v{i}-{j}" for j in range(2 + i % 3)], n)
        for i in range(qi)
    }
    columns["S"] = rng.choice(["flu", "cold", "hiv", "ok"], n)
    return MicrodataTable(Schema(attributes), columns)


def _priors(table, bandwidths, **options):
    estimator = BatchedKernelPriorEstimator(**options).fit(table)
    return [beliefs.matrix for beliefs in estimator.prior_for_table(bandwidths)]


def _assert_bitwise(threaded, serial):
    assert len(threaded) == len(serial)
    for a, b in zip(threaded, serial):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("kernel", KERNELS)
def test_threaded_priors_bitwise_match_serial(kernel):
    table = _dense_table()
    _assert_bitwise(
        _priors(table, BANDWIDTHS, kernel=kernel, jobs=JOBS),
        _priors(table, BANDWIDTHS, kernel=kernel, jobs=1),
    )


def test_per_attribute_bandwidths_bitwise_match_serial():
    table = _dense_table(seed=7)
    names = table.quasi_identifier_names
    bandwidths = [
        Bandwidth({names[0]: 0.1, names[1]: 0.4, names[2]: 0.2}),
        Bandwidth({names[0]: 0.3, names[1]: 0.1, names[2]: 0.5}),
    ]
    _assert_bitwise(
        _priors(table, bandwidths, jobs=JOBS), _priors(table, bandwidths, jobs=1)
    )


@pytest.mark.parametrize("kernel", ["epanechnikov", "gaussian"])
def test_wide_blocked_schema_threaded_matches_serial_and_flat(kernel):
    table = _wide_table()
    threaded = BatchedKernelPriorEstimator(
        kernel=kernel, max_cells=256, jobs=JOBS
    ).fit(table)
    assert threaded.backend.n_blocks > 1  # the budget forces a real split
    serial = _priors(table, BANDWIDTHS, kernel=kernel, max_cells=256, jobs=1)
    _assert_bitwise(
        [beliefs.matrix for beliefs in threaded.prior_for_table(BANDWIDTHS)], serial
    )
    flat = _priors(table, BANDWIDTHS, kernel=kernel, max_cells=0)
    difference = max(
        float(np.abs(a - b).max()) for a, b in zip(serial, flat)
    )
    assert difference <= 1e-12


@pytest.mark.parametrize("kernel", ["epanechnikov", "gaussian"])
def test_matrix_for_codes_unseen_combos_bitwise_match_serial(kernel):
    table = _dense_table(seed=9)
    threaded = BatchedKernelPriorEstimator(kernel=kernel, jobs=JOBS).fit(table).backend
    serial = BatchedKernelPriorEstimator(kernel=kernel, jobs=1).fit(table).backend
    sizes = table.qi_code_matrix().max(axis=0) + 1
    # The full code grid: includes combinations absent from the table.
    grids = np.meshgrid(*[np.arange(size) for size in sizes], indexing="ij")
    queries = np.stack([grid.ravel() for grid in grids], axis=1)
    for b in (0.2, Bandwidth.uniform(table.quasi_identifier_names, 0.4)):
        assert np.array_equal(
            threaded.matrix_for_codes(queries, b), serial.matrix_for_codes(queries, b)
        )


def _replace(table, positions, donor_positions):
    columns = {name: table.column(name).copy() for name in table.schema.names}
    for name in table.schema.names:
        columns[name][positions] = table.column(name)[donor_positions]
    domains = {name: table.domain(name) for name in table.schema.names}
    return MicrodataTable(table.schema, columns, domains=domains)


def test_incremental_lifecycle_threaded_matches_serial():
    """append -> remove -> update keeps jobs=4 bitwise equal to jobs=1."""
    table = _dense_table(seed=11)
    extra = _dense_table(n=80, seed=12)
    estimators = {
        jobs: BatchedKernelPriorEstimator(incremental=True, jobs=jobs).fit(table)
        for jobs in (1, JOBS)
    }
    for estimator in estimators.values():
        estimator.prior_for_table(BANDWIDTHS)  # populate the contraction caches
    rng = np.random.default_rng(19)

    current = table.extend({name: extra.column(name) for name in table.schema.names})
    assert {e.append_rows(current) for e in estimators.values()} == {"incremental"}
    _assert_bitwise(
        [p.matrix for p in estimators[JOBS].prior_for_table(BANDWIDTHS)],
        [p.matrix for p in estimators[1].prior_for_table(BANDWIDTHS)],
    )

    removed = np.sort(rng.choice(current.n_rows, size=40, replace=False))
    current = current.select(np.setdiff1d(np.arange(current.n_rows), removed))
    assert {
        e.remove_rows(current, removed) for e in estimators.values()
    } == {"incremental"}
    _assert_bitwise(
        [p.matrix for p in estimators[JOBS].prior_for_table(BANDWIDTHS)],
        [p.matrix for p in estimators[1].prior_for_table(BANDWIDTHS)],
    )

    positions = np.sort(rng.choice(current.n_rows, size=30, replace=False))
    current = _replace(current, positions, rng.integers(0, current.n_rows, size=30))
    assert {
        e.update_rows(current, positions) for e in estimators.values()
    } == {"incremental"}
    _assert_bitwise(
        [p.matrix for p in estimators[JOBS].prior_for_table(BANDWIDTHS)],
        [p.matrix for p in estimators[1].prior_for_table(BANDWIDTHS)],
    )

    # And the maintained threaded state still matches a scratch fit.
    scratch = _priors(current, BANDWIDTHS)
    maintained = [p.matrix for p in estimators[JOBS].prior_for_table(BANDWIDTHS)]
    assert max(
        float(np.abs(a - b).max()) for a, b in zip(maintained, scratch)
    ) <= 1e-12


@pytest.mark.parametrize("kernel", KERNELS)
def test_bandwidth_sharing_off_matches_on(kernel):
    table = _dense_table(seed=13)
    shared = FactoredPriorBackend(EstimatorConfig(kernel=kernel)).fit(table)
    rebuilt = FactoredPriorBackend(
        EstimatorConfig(kernel=kernel, share_bandwidths=False)
    ).fit(table)
    _assert_bitwise(shared.matrices(BANDWIDTHS), rebuilt.matrices(BANDWIDTHS))


def _skewed_table(n=500, seed=29):
    """Solo A; rest X1 (card 10), X2 correlated with X1, X3 independent."""
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Attribute("A", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER),
            Attribute("X1", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("X3", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("X2", AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER),
            Attribute("S", AttributeKind.CATEGORICAL, AttributeRole.SENSITIVE),
        ]
    )
    base = rng.integers(0, 10, n)
    columns = {
        "A": rng.integers(0, 50, n).astype(float),
        "X1": np.asarray([f"v{i}" for i in base]),
        "X2": np.asarray([f"w{i}" for i in base]),  # a function of X1
        "X3": rng.choice([f"u{i}" for i in range(9)], n),
        "S": rng.choice(["flu", "cold", "hiv", "ok"], n),
    }
    return MicrodataTable(schema, columns)


def test_growth_aware_layout_groups_correlated_attributes():
    """X2 is a function of X1, so blocking them together costs c_b=10 while
    any pairing with X3 realizes ~90 combos; the growth-aware layout must
    put the correlated pair in one block under a budget that only fits it."""
    table = _skewed_table()
    estimator = BatchedKernelPriorEstimator(max_cells=150).fit(table)
    blocks = estimator.backend.blocks
    assert any({"X1", "X2"} <= set(block) for block in blocks)
    assert all("X3" not in block or len(block) == 1 for block in blocks)
    # The layout choice never changes the estimate: compare to the flat sweep.
    blocked = _priors(table, BANDWIDTHS, max_cells=150)
    flat = _priors(table, BANDWIDTHS, max_cells=0)
    assert max(
        float(np.abs(a - b).max()) for a, b in zip(blocked, flat)
    ) <= 1e-12


def test_single_block_layout_keeps_schema_order():
    """When the whole rest set fits one block, unique-count monotonicity
    makes the greedy loop add every column - reproducing the pre-existing
    schema-order single block exactly."""
    table = _dense_table(seed=15)
    estimator = BatchedKernelPriorEstimator().fit(table)
    rest = [
        name
        for name in table.quasi_identifier_names
        if name != table.quasi_identifier_names[0]  # "A" is solo (largest domain)
    ]
    assert estimator.backend.blocks == (tuple(rest),)


def test_jobs_validation():
    for bad in (0, -1, 2.5, "many", True):
        with pytest.raises(KnowledgeError):
            parse_jobs(bad)
        with pytest.raises(KnowledgeError):
            EstimatorConfig(jobs=bad)
    with pytest.raises(KnowledgeError):
        BatchedKernelPriorEstimator(jobs=0)
    assert parse_jobs(3) == 3
    assert parse_jobs("5") == 5
    assert resolve_jobs(2) == 2


def test_jobs_env_default(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "3")
    assert default_jobs() == 3
    assert resolve_jobs(None) == 3
    estimator = BatchedKernelPriorEstimator().fit(_dense_table(n=50, seed=17))
    assert estimator.backend.jobs == 3
    # An explicit count always beats the environment.
    explicit = BatchedKernelPriorEstimator(jobs=2).fit(_dense_table(n=50, seed=17))
    assert explicit.backend.jobs == 2
    monkeypatch.setenv(JOBS_ENV, "zero-cores")
    with pytest.raises(KnowledgeError):
        default_jobs()
    monkeypatch.delenv(JOBS_ENV)
    assert default_jobs() >= 1


def test_run_tasks_preserves_order_and_propagates_errors():
    tasks = [lambda value=value: value * value for value in range(20)]
    assert run_tasks(tasks, 1) == [value * value for value in range(20)]
    assert run_tasks(tasks, JOBS) == [value * value for value in range(20)]

    def boom():
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        run_tasks([lambda: 1, boom, lambda: 3], JOBS)
