"""Property-based integration tests over randomly generated microdata tables."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anonymize.anonymizer import anonymize
from repro.anonymize.mondrian import MondrianAnonymizer
from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.inference.exact import group_sensitive_counts
from repro.inference.omega import omega_posterior
from repro.knowledge.prior import kernel_prior
from repro.privacy.measures import sensitive_distance_measure
from repro.privacy.models import BTPrivacy, KAnonymity
from repro.privacy.disclosure import worst_case_disclosure_risk


def _random_table(draw):
    n_rows = draw(st.integers(min_value=20, max_value=80))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            numeric_qi("Age"),
            categorical_qi("Sex"),
            categorical_qi("City"),
            sensitive("Disease"),
        ]
    )
    # Correlate Disease with Age and Sex so kernel priors are informative.
    ages = rng.integers(18, 80, size=n_rows)
    sexes = rng.choice(["M", "F"], size=n_rows)
    cities = rng.choice(["North", "South", "East"], size=n_rows)
    diseases = np.where(
        ages > 55,
        rng.choice(["Emphysema", "Cancer", "Flu"], size=n_rows, p=[0.5, 0.3, 0.2]),
        rng.choice(["Emphysema", "Cancer", "Flu"], size=n_rows, p=[0.1, 0.2, 0.7]),
    )
    return MicrodataTable.from_columns(
        schema, {"Age": ages, "Sex": sexes, "City": cities, "Disease": diseases}
    )


@st.composite
def tables(draw):
    return _random_table(draw)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(table=tables(), k=st.integers(min_value=2, max_value=6))
def test_mondrian_always_produces_valid_k_anonymous_partition(table, k):
    """Property: Mondrian partitions cover every tuple once and respect k."""
    groups = MondrianAnonymizer(KAnonymity(k)).partition(table)
    covered = np.concatenate(groups)
    assert sorted(covered.tolist()) == list(range(table.n_rows))
    assert min(len(group) for group in groups) >= k


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(table=tables(), b=st.sampled_from([0.2, 0.3, 0.5]), t=st.sampled_from([0.15, 0.25, 0.4]))
def test_bt_privacy_release_always_bounds_matched_adversary(table, b, t):
    """Property: a (B,t)-private release keeps the matched adversary's worst-case
    knowledge gain below t, for any table, b, and t where a release exists."""
    release = anonymize(table, BTPrivacy(b, t), k=2).release
    priors = kernel_prior(table, b)
    measure = sensitive_distance_measure(table)
    worst = worst_case_disclosure_risk(priors, table.sensitive_codes(), release.groups, measure)
    assert worst <= t + 1e-9


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(table=tables(), b=st.sampled_from([0.1, 0.3, 0.6]))
def test_kernel_priors_are_always_valid_distributions(table, b):
    """Property: kernel priors are row-stochastic whatever the table and bandwidth."""
    priors = kernel_prior(table, b)
    assert priors.matrix.shape == (table.n_rows, table.sensitive_domain().size)
    assert np.allclose(priors.matrix.sum(axis=1), 1.0)
    assert priors.matrix.min() >= 0.0


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(table=tables(), b=st.sampled_from([0.2, 0.4]), group_size=st.integers(3, 8))
def test_omega_posterior_never_leaks_absent_values(table, b, group_size):
    """Property: posterior mass only lands on sensitive values present in the group."""
    priors = kernel_prior(table, b)
    rng = np.random.default_rng(0)
    indices = rng.choice(table.n_rows, size=min(group_size, table.n_rows), replace=False)
    counts = group_sensitive_counts(
        table.sensitive_codes()[indices], table.sensitive_domain().size
    )
    posterior = omega_posterior(priors.matrix[indices], counts)
    assert np.allclose(posterior[:, counts == 0], 0.0)
    assert np.allclose(posterior.sum(axis=1), 1.0)
