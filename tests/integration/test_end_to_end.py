"""End-to-end integration tests: data -> priors -> anonymization -> attack -> utility."""

import numpy as np
import pytest

from repro import (
    BTPrivacy,
    BackgroundKnowledgeAttack,
    Bandwidth,
    DistinctLDiversity,
    ProbabilisticLDiversity,
    SkylineBTPrivacy,
    TCloseness,
    anonymize,
    generate_adult,
    kernel_prior,
    sensitive_distance_measure,
    tuple_disclosure_risks,
    worst_case_disclosure_risk,
)
from repro.utility import (
    QueryWorkloadGenerator,
    average_relative_error,
    discernibility_metric,
    global_certainty_penalty,
)


@pytest.fixture(scope="module")
def table():
    return generate_adult(900, seed=31)


def test_full_pipeline_bt_privacy(table):
    """The paper's headline workflow, end to end."""
    # 1. Publisher picks an adversary profile and a disclosure budget.
    result = anonymize(table, BTPrivacy(b=0.3, t=0.2), k=4)
    release = result.release

    # 2. The release is a valid partition with k-anonymous groups.
    covered = np.concatenate(release.groups)
    assert sorted(covered.tolist()) == list(range(table.n_rows))
    assert release.group_sizes().min() >= 4

    # 3. The matched adversary gains at most t about any individual.
    attack = BackgroundKnowledgeAttack(table, 0.3)
    outcome = attack.attack(release.groups, 0.2)
    assert outcome.vulnerable_tuples == 0
    assert outcome.worst_case_risk <= 0.2 + 1e-9

    # 4. The release still answers aggregate queries.
    queries = QueryWorkloadGenerator(table, query_dimension=3, selectivity=0.1, seed=1).generate(50)
    assert average_relative_error(release, queries) < 100.0


def test_baselines_are_vulnerable_but_useful(table):
    """l-diversity and t-closeness keep utility but fail against the kernel adversary."""
    bt = anonymize(table, BTPrivacy(0.3, 0.2), k=4).release
    baselines = {
        "distinct-l": anonymize(table, DistinctLDiversity(4), k=4).release,
        "probabilistic-l": anonymize(table, ProbabilisticLDiversity(4), k=4).release,
        "t-closeness": anonymize(table, TCloseness(0.2), k=4).release,
    }
    attack = BackgroundKnowledgeAttack(table, 0.3)
    bt_vulnerable = attack.attack(bt.groups, 0.2).vulnerable_tuples
    for name, release in baselines.items():
        vulnerable = attack.attack(release.groups, 0.2).vulnerable_tuples
        assert vulnerable > bt_vulnerable, name
        # Comparable utility (within an order of magnitude, as in Figure 5).
        assert discernibility_metric(bt) < 10 * discernibility_metric(release) + 1e-9
        assert global_certainty_penalty(bt) < 10 * global_certainty_penalty(release) + 1e-9


def test_skyline_protects_multiple_adversaries(table):
    """Definition 2: a skyline bounds the risk for every configured adversary."""
    skyline = [(0.2, 0.3), (0.4, 0.2)]
    release = anonymize(table, SkylineBTPrivacy(skyline), k=3).release
    measure = sensitive_distance_measure(table)
    for b_prime, threshold in skyline:
        priors = kernel_prior(table, b_prime)
        worst = worst_case_disclosure_risk(
            priors, table.sensitive_codes(), release.groups, measure
        )
        assert worst <= threshold + 1e-9


def test_per_attribute_bandwidth_pipeline(table):
    """An adversary who knows more about demographics than about work attributes."""
    qi = list(table.quasi_identifier_names)
    bandwidth = Bandwidth.split(qi[:3], 0.2, qi[3:], 0.5)
    release = anonymize(table, BTPrivacy(bandwidth, 0.25), k=3).release
    measure = sensitive_distance_measure(table)
    priors = kernel_prior(table, bandwidth)
    worst = worst_case_disclosure_risk(priors, table.sensitive_codes(), release.groups, measure)
    assert worst <= 0.25 + 1e-9


def test_generalization_and_bucketization_equivalence(table):
    """Section III-A: once the adversary knows who is in the table, generalization
    and bucketization of the *same partition* leak exactly the same information."""
    release = anonymize(table, DistinctLDiversity(3), k=3).release
    measure = sensitive_distance_measure(table)
    priors = kernel_prior(table, 0.3)
    risks_from_groups = tuple_disclosure_risks(
        priors, table.sensitive_codes(), release.groups, measure
    )
    # Rebuild the grouping from the published bucketized (Anatomy-style) view:
    # the QIT lists every tuple with its GroupID, in group order.
    qit, _ = release.bucketized_tables()
    assignment = release.group_of_tuples()
    rebuilt = [
        np.flatnonzero(assignment == group_id) for group_id in range(release.n_groups)
    ]
    assert sum(len(group) for group in rebuilt) == len(qit)
    risks_from_buckets = tuple_disclosure_risks(
        priors, table.sensitive_codes(), rebuilt, measure
    )
    assert np.allclose(risks_from_groups, risks_from_buckets)


def test_stricter_parameters_trade_utility_for_privacy(table):
    """para1 -> para4 style sweep: tighter t forces coarser groups."""
    loose = anonymize(table, BTPrivacy(0.3, 0.3), k=3).release
    tight = anonymize(table, BTPrivacy(0.3, 0.1), k=3).release
    assert tight.n_groups <= loose.n_groups
    assert discernibility_metric(tight) >= discernibility_metric(loose)
    attack = BackgroundKnowledgeAttack(table, 0.3)
    assert attack.attack(tight.groups, 0.1).vulnerable_tuples == 0
    assert attack.attack(loose.groups, 0.3).vulnerable_tuples == 0


def test_anatomy_release_feeds_same_attack_machinery(table):
    release = anonymize(table, DistinctLDiversity(4), algorithm="anatomy", anatomy_l=4).release
    attack = BackgroundKnowledgeAttack(table, 0.3)
    outcome = attack.attack(release.groups, 0.25)
    assert outcome.risks.shape == (table.n_rows,)
    assert 0 <= outcome.vulnerable_tuples <= table.n_rows
