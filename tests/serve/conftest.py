"""Fixtures for the serving-layer tests.

The HTTP tests run a real :class:`~repro.serve.ServeApp` on an event loop in
a background thread and talk to it over actual sockets with ``urllib`` - the
project has no async test plugin, and the daemon's concurrency claims
(lock-free reads during an in-flight publication) are only meaningful
against the real wire protocol anyway.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.data.adult import generate_adult
from repro.serve import ServeApp


def json_rows(table, start=0, stop=None):
    """Table rows as JSON-native dictionaries (numpy scalars unwrapped)."""
    stop = table.n_rows if stop is None else stop
    return [
        {
            name: (value.item() if hasattr(value, "item") else value)
            for name, value in table.row(index).items()
        }
        for index in range(start, stop)
    ]


@pytest.fixture(scope="session")
def adult_rows():
    """320 deterministic Adult rows: 260 for seeding, the rest for appends."""
    return json_rows(generate_adult(320, seed=11))


class LiveServer:
    """One running daemon on an ephemeral port, driven over real HTTP."""

    def __init__(self, data_dir, *, coalesce_ms=25.0, **app_kwargs):
        self.app = ServeApp(data_dir, port=0, coalesce_ms=coalesce_ms, **app_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.app.start(), self._loop).result(30)
        self._closed = False

    @property
    def base_url(self):
        return f"http://127.0.0.1:{self.app.port}"

    def request(self, method, path, payload=None, timeout=180):
        """One request; returns ``(status, decoded_json, raw_body_bytes)``."""
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                raw = response.read()
                return response.status, json.loads(raw), raw
        except urllib.error.HTTPError as error:
            raw = error.read()
            return error.code, json.loads(raw), raw

    def request_with_headers(self, method, path, payload=None, timeout=180):
        """Like :meth:`request`, but returns the response *headers* instead
        of the raw body - for contracts like 429's ``Retry-After``."""
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read()), dict(response.headers)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    def close(self):
        if self._closed:
            return
        self._closed = True
        asyncio.run_coroutine_threadsafe(self.app.stop(), self._loop).result(60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


@pytest.fixture
def live_server(tmp_path):
    """Factory for live daemons; every started server is torn down."""
    servers = []

    def start(data_dir=None, **kwargs):
        server = LiveServer(data_dir or tmp_path / "serve-data", **kwargs)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()
