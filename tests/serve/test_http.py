"""The daemon over real sockets: lifecycle, concurrency, failure semantics.

Each test starts a genuine :class:`~repro.serve.ServeApp` on an ephemeral
port (event loop in a background thread) and drives it with ``urllib`` /
``http.client``, exactly as an external client would.
"""

import http.client
import json
import threading
import time

from repro.serve.app import MAX_BODY_BYTES

#: Small stream config that keeps the full pipeline fast in CI.
FAST_CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2, "max_cells": 20000}
SEED_ROWS = 260


def _create(server, name, rows, config=FAST_CONFIG):
    return server.request(
        "POST", "/streams", {"name": name, "rows": rows, "config": config}
    )


def test_full_lifecycle_over_http(live_server, adult_rows):
    server = live_server()
    seed, rest = adult_rows[:SEED_ROWS], adult_rows[SEED_ROWS:]

    status, payload, _ = server.request("GET", "/healthz")
    assert status == 200 and payload == {"status": "ok", "streams": []}

    status, payload, _ = _create(server, "census", seed)
    assert status == 201
    assert payload["stream"]["name"] == "census"
    assert payload["stream"]["versions"] == 1
    assert payload["stream"]["rows"] == SEED_ROWS

    status, payload, _ = server.request(
        "POST", "/streams/census/append", {"rows": rest[:30]}
    )
    assert status == 200 and payload["version"]["version"] == 1
    status, payload, _ = server.request(
        "POST", "/streams/census/delete", {"positions": [0, 5, 11]}
    )
    assert status == 200 and payload["version"]["version"] == 2
    status, payload, _ = server.request(
        "POST",
        "/streams/census/update",
        {"positions": [3, 4], "rows": [seed[20], seed[21]]},
    )
    assert status == 200 and payload["version"]["version"] == 3

    status, payload, _ = server.request("GET", "/streams/census/versions")
    assert status == 200 and len(payload["versions"]) == 4
    status, payload, _ = server.request("GET", "/streams/census/versions/2")
    assert status == 200 and payload["version"]["version"] == 2
    status, payload, _ = server.request("GET", "/streams/census/versions/0/audit")
    assert status == 200 and "audit" in payload
    status, latest, _ = server.request("GET", "/streams/census/audit")
    assert status == 200 and latest["version"] == 3

    status, payload, _ = server.request("GET", "/metrics")
    assert status == 200
    stream = payload["streams"]["census"]
    assert stream["counters"]["publishes"] == 3
    assert stream["counters"]["append_batches"] == 1
    assert stream["counters"]["delete_batches"] == 1
    assert stream["counters"]["update_batches"] == 1
    assert stream["counters"]["failed_batches"] == 0
    assert stream["publish_seconds"]["count"] == 3
    assert payload["server"]["counters"]["writes"] == 4
    assert payload["server"]["counters"]["errors"] == 0
    assert payload["server"]["read_seconds"]["count"] >= 1


def test_error_statuses(live_server, adult_rows):
    server = live_server()
    _create(server, "census", adult_rows[:SEED_ROWS])

    assert server.request("GET", "/streams/nope")[0] == 404
    assert server.request("GET", "/streams/census/versions/99")[0] == 404
    assert server.request("GET", "/no/such/route")[0] == 404
    assert server.request("DELETE", "/streams/census")[0] == 405
    assert server.request("POST", "/streams/census/append", {"rows": []})[0] == 400
    assert server.request("GET", "/streams/census/versions/abc")[0] == 400
    status, payload, _ = server.request(
        "POST", "/streams/census/append", {"rows": [{"Age": "zebra"}]}
    )
    assert status == 400 and "bad" in payload["message"].lower()
    # A malformed batch never reaches the worker, so the stream is unharmed.
    status, payload, _ = server.request(
        "POST", "/streams/census/append", {"rows": adult_rows[SEED_ROWS:SEED_ROWS + 10]}
    )
    assert status == 200 and payload["version"]["version"] == 1
    # Duplicate creation is a conflict.
    assert _create(server, "census", adult_rows[:SEED_ROWS])[0] == 409


def test_oversized_body_is_413(live_server, adult_rows):
    server = live_server()
    connection = http.client.HTTPConnection("127.0.0.1", server.app.port, timeout=30)
    try:
        # Announce an impossible body; the daemon must answer from the
        # Content-Length alone instead of buffering 64 MiB.
        connection.putrequest("POST", "/streams")
        connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 413
        assert b"exceeds" in response.read()
    finally:
        connection.close()


def test_concurrent_reads_are_byte_identical_during_publication(
    live_server, adult_rows
):
    server = live_server()
    _create(server, "census", adult_rows[:SEED_ROWS])
    baseline = server.request("GET", "/streams/census/versions/0")[2]
    audit_baseline = server.request("GET", "/streams/census/versions/0/audit")[2]

    # Hold the write worker so the publication is genuinely in flight while
    # the readers hammer the historical version.
    host = server.app.registry.get("census")
    host.pause()
    write_result = {}

    def write():
        write_result["response"] = server.request(
            "POST", "/streams/census/append", {"rows": adult_rows[SEED_ROWS:]}
        )

    writer = threading.Thread(target=write)
    writer.start()

    mismatches = []
    stop_reading = threading.Event()

    def read():
        while not stop_reading.is_set():
            status, _, raw = server.request("GET", "/streams/census/versions/0")
            if status != 200 or raw != baseline:
                mismatches.append(f"version: {status}")
            status, _, raw = server.request(
                "GET", "/streams/census/versions/0/audit"
            )
            if status != 200 or raw != audit_baseline:
                mismatches.append(f"audit: {status}")

    readers = [threading.Thread(target=read) for _ in range(6)]
    for thread in readers:
        thread.start()
    time.sleep(0.3)  # reads while the mutation sits queued behind the gate
    assert writer.is_alive()  # the publication really was held open
    host.unpause()
    # Keep reading while the publication actually executes (this is the
    # window where the publisher internally buffers intermediate versions).
    writer.join(timeout=300)
    stop_reading.set()
    for thread in readers:
        thread.join(timeout=120)

    assert mismatches == []
    status, payload, _ = write_result["response"]
    assert status == 200 and payload["version"]["version"] == 1
    # And the historical bytes are still the same after the publication.
    assert server.request("GET", "/streams/census/versions/0")[2] == baseline


def test_poisoned_stream_is_409_and_siblings_keep_publishing(
    live_server, adult_rows, monkeypatch
):
    from repro.exceptions import StreamError

    server = live_server()
    seed, batch = adult_rows[:SEED_ROWS], adult_rows[SEED_ROWS:SEED_ROWS + 20]
    _create(server, "sick", seed)
    _create(server, "healthy", seed)

    sick = server.app.registry.get("sick")

    def explode(operations):
        sick.publisher._inconsistent = True
        raise StreamError("mid-publication failure")

    monkeypatch.setattr(sick.publisher, "publish_coalesced", explode)
    status, payload, _ = server.request("POST", "/streams/sick/append", {"rows": batch})
    assert status == 409
    assert "poisoned" in payload["message"]
    assert "resume" in payload["message"]

    # Still poisoned on the next write; reads and siblings are unaffected.
    assert server.request("POST", "/streams/sick/append", {"rows": batch})[0] == 409
    assert server.request("GET", "/streams/sick/versions/0")[0] == 200
    status, payload, _ = server.request(
        "POST", "/streams/healthy/append", {"rows": batch}
    )
    assert status == 200 and payload["version"]["version"] == 1
    status, payload, _ = server.request("GET", "/streams/sick")
    assert status == 200 and payload["stream"]["poisoned"] is not None


def test_restart_resumes_streams_over_http(live_server, adult_rows, tmp_path):
    data_dir = tmp_path / "serve-data"
    first = live_server(data_dir)
    seed, rest = adult_rows[:SEED_ROWS], adult_rows[SEED_ROWS:]
    _create(first, "census", seed)
    first.request("POST", "/streams/census/append", {"rows": rest[:30]})
    lineage_before = first.request("GET", "/streams/census/versions")[2]
    first.close()

    second = live_server(data_dir)
    status, payload, _ = second.request("GET", "/healthz")
    assert status == 200 and payload["streams"] == ["census"]
    # History is byte-identical across the restart...
    assert second.request("GET", "/streams/census/versions")[2] == lineage_before
    # ... and the stream continues where it left off.
    status, payload, _ = second.request(
        "POST", "/streams/census/append", {"rows": rest[30:]}
    )
    assert status == 200 and payload["version"]["version"] == 2


def test_responses_are_json_with_sorted_keys(live_server, adult_rows):
    server = live_server()
    _create(server, "census", adult_rows[:SEED_ROWS])
    raw = server.request("GET", "/streams/census")[2]
    decoded = json.loads(raw)
    assert raw == (json.dumps(decoded, sort_keys=True) + "\n").encode()
