"""Bounded write queues: 429 + Retry-After, queue metrics, chunked bodies.

The backpressure contract from the issue: a mutation that would push a
stream's queue past ``max_queue_batches`` / ``max_queued_rows`` is rejected
*immediately* with 429 and a ``Retry-After`` hint instead of buffering
without bound - and a client that honors the hint loses nothing: its
retried batch publishes into the same stream it would have reached
unthrottled.  The queue's pressure history (high-water marks, cumulative
rejected count) stays visible in ``/metrics`` after the burst passes.
"""

import threading

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.data.table import MicrodataTable
from repro.privacy.models import BTPrivacy
from repro.serve import Response, StreamRegistry, TooManyRequests
from repro.stream import IncrementalPublisher

FAST_CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2, "max_cells": 20000}

SEED_ROWS = 260
SCHEMA = adult_schema()
ROWS = generate_adult(320, seed=11).rows()


def _table(rows):
    return MicrodataTable.from_rows(SCHEMA, rows)


SEED_TABLE = _table(ROWS[:SEED_ROWS])


def _registry(tmp_path, **kwargs):
    return StreamRegistry(tmp_path / "data", coalesce_ms=0.0, **kwargs)


# -- registry-level backpressure -----------------------------------------------------------


def test_full_queue_rejects_with_429_and_retry_hint(tmp_path):
    registry = _registry(tmp_path, max_queue_batches=1)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        host.pause()
        batch_a = _table(ROWS[SEED_ROWS:SEED_ROWS + 20])
        batch_b = _table(ROWS[SEED_ROWS + 20:SEED_ROWS + 40])
        queued = host.submit(("append", batch_a))
        with pytest.raises(TooManyRequests) as excinfo:
            host.submit(("append", batch_b))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1
        assert excinfo.value.headers()["Retry-After"] == str(
            excinfo.value.retry_after
        )
        # The rejection is observable after the fact...
        assert host.metrics.counters.rejected_batches == 1
        stats = host.queue_stats()
        assert stats["queue_high_water"] == 1
        assert stats["max_queue_batches"] == 1
        # ... and rejected != poisoned: the stream stays healthy.
        assert host.poisoned is None
        host.unpause()
        assert queued.result(timeout=300).version == 1
    finally:
        registry.close()


def test_row_bound_rejects_large_backlogs(tmp_path):
    registry = _registry(tmp_path, max_queued_rows=25)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        host.pause()
        host.submit(("append", _table(ROWS[SEED_ROWS:SEED_ROWS + 20])))
        # 20 rows queued; another 20 would cross the 25-row bound...
        with pytest.raises(TooManyRequests):
            host.submit(("append", _table(ROWS[SEED_ROWS + 20:SEED_ROWS + 40])))
        # ... but a small delete (3 rows of accounting) still fits.
        future = host.submit(("delete", [0, 1, 2]))
        assert host.queue_stats()["queue_depth_rows"] == 23
        host.unpause()
        assert future.result(timeout=300).version == 1
    finally:
        registry.close()


def test_rejected_then_retried_batch_reaches_same_final_version(tmp_path):
    """A 429'd client that retries ends up exactly where an unthrottled
    client would have: the throttle costs availability, never data."""
    batch_a = _table(ROWS[SEED_ROWS:SEED_ROWS + 20])
    batch_b = _table(ROWS[SEED_ROWS + 20:SEED_ROWS + 40])

    registry = _registry(tmp_path, max_queue_batches=1)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        host.pause()
        first = host.submit(("append", batch_a))
        with pytest.raises(TooManyRequests):
            host.submit(("append", batch_b))
        host.unpause()
        first.result(timeout=300)
        # The retry (after the in-flight publication drained the queue).
        final = host.submit(("append", batch_b)).result(timeout=300)
    finally:
        registry.close()

    twin = IncrementalPublisher(
        _table(ROWS[:SEED_ROWS]),
        BTPrivacy(FAST_CONFIG["b"], FAST_CONFIG["t"]),
        k=FAST_CONFIG["k"],
        max_cells=FAST_CONFIG["max_cells"],
    )
    twin.publish()
    twin.append(batch_a)
    twin.append(batch_b)
    expected = twin.store.latest()
    assert final.version == expected.version == 2
    assert final.n_rows == expected.n_rows
    assert all(
        np.array_equal(a, b)
        for a, b in zip(final.release.groups, expected.release.groups)
    )


# -- the same contract over real HTTP ------------------------------------------------------


def test_http_429_carries_retry_after_and_metrics_remember(live_server, adult_rows):
    server = live_server(coalesce_ms=0.0, max_queue_batches=1)
    status, payload, _ = server.request(
        "POST",
        "/streams",
        {"name": "census", "rows": adult_rows[:SEED_ROWS], "config": FAST_CONFIG},
    )
    assert status == 201

    host = server.app.registry.get("census")
    host.pause()
    results = {}

    def blocked_append():
        results["first"] = server.request(
            "POST", "/streams/census/append", {"rows": adult_rows[SEED_ROWS:SEED_ROWS + 20]}
        )

    writer = threading.Thread(target=blocked_append)
    writer.start()
    # Wait until the first append actually occupies the queue slot.
    deadline_reached = False
    for _ in range(500):
        if host.queue_depth >= 1:
            deadline_reached = True
            break
        threading.Event().wait(0.01)
    assert deadline_reached

    retry_rows = adult_rows[SEED_ROWS + 20:SEED_ROWS + 40]
    status, payload, headers = server.request_with_headers(
        "POST", "/streams/census/append", {"rows": retry_rows}
    )
    assert status == 429
    assert payload["error"] == "Too Many Requests"
    assert "queue is full" in payload["message"]
    assert int(headers["Retry-After"]) >= 1

    host.unpause()
    writer.join(timeout=300)
    assert results["first"][0] == 200

    # Honoring Retry-After: the retried batch lands as the next version.
    status, payload, _ = server.request(
        "POST", "/streams/census/append", {"rows": retry_rows}
    )
    assert status == 200
    assert payload["version"]["version"] == 2

    # The burst is over, but /metrics still shows the pressure history.
    status, metrics, _ = server.request("GET", "/metrics")
    assert status == 200
    stream = metrics["streams"]["census"]
    assert stream["queue_depth"] == 0
    assert stream["queue_high_water"] == 1
    assert stream["counters"]["rejected_batches"] == 1
    assert stream["versions"] == 3


# -- chunked streaming bodies --------------------------------------------------------------


def test_body_chunks_concatenate_byte_identically():
    payload = {"rows": [{"index": i, "text": "x" * 40} for i in range(500)]}
    response = Response(200, payload, stream=True)
    chunks = list(response.body_chunks(chunk_bytes=1024))
    assert len(chunks) > 1
    assert all(len(chunk) >= 1024 for chunk in chunks[:-1])
    assert b"".join(chunks) == response.body()
