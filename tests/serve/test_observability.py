"""The daemon's observability surface: trace ids, Prometheus, span stitching."""

import os
import urllib.request

from repro.serve import StreamRegistry

#: Same small stream config the HTTP lifecycle tests use.
FAST_CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2, "max_cells": 20000}
SEED_ROWS = 260


def _create(server, name, rows, config=FAST_CONFIG):
    return server.request(
        "POST", "/streams", {"name": name, "rows": rows, "config": config}
    )


def _raw_get(server, path):
    """GET a non-JSON endpoint: (status, text, headers)."""
    with urllib.request.urlopen(server.base_url + path, timeout=120) as response:
        return response.status, response.read().decode("utf-8"), dict(response.headers)


# -- per-request trace ids -----------------------------------------------------------------


def test_every_response_echoes_a_fresh_trace_id(live_server, adult_rows):
    server = live_server()
    _create(server, "census", adult_rows[:SEED_ROWS])
    seen = set()
    for path in ("/healthz", "/streams/census", "/healthz"):
        status, _, headers = server.request_with_headers("GET", path)
        assert status == 200
        trace_id = headers["X-Repro-Trace-Id"]
        assert len(trace_id) == 32
        int(trace_id, 16)
        seen.add(trace_id)
    assert len(seen) == 3, "trace ids are per-request, never reused"
    # Errors carry one too - the id is how a 4xx is found in the logs.
    status, _, headers = server.request_with_headers("GET", "/streams/absent")
    assert status == 404 and len(headers["X-Repro-Trace-Id"]) == 32


def test_write_trace_ids_land_on_the_published_tick_span(live_server, adult_rows):
    """The id echoed to a mutating client is recorded on the tick span that
    published its batch - the log line, the response header and the version's
    trace all correlate."""
    server = live_server(coalesce_ms=0.0)
    _create(server, "census", adult_rows[:SEED_ROWS])
    status, body, headers = server.request_with_headers(
        "POST", "/streams/census/append", {"rows": adult_rows[SEED_ROWS:SEED_ROWS + 30]}
    )
    assert status == 200
    trace_id = headers["X-Repro-Trace-Id"]
    version = body["version"]["version"]

    status, detail, _ = server.request("GET", f"/streams/census/versions/{version}")
    assert status == 200
    assert trace_id in detail["trace"]["attributes"]["trace_ids"]


# -- version detail: span-derived stage breakdown ------------------------------------------


def test_version_detail_carries_trace_and_stage_breakdown(live_server, adult_rows):
    server = live_server(coalesce_ms=0.0)
    _create(server, "census", adult_rows[:SEED_ROWS])
    status, body, _ = server.request(
        "POST", "/streams/census/append", {"rows": adult_rows[SEED_ROWS:SEED_ROWS + 30]}
    )
    assert status == 200
    version = body["version"]["version"]

    status, detail, _ = server.request("GET", f"/streams/census/versions/{version}")
    assert status == 200
    trace = detail["trace"]
    assert trace["name"] == "serve.publish_tick"
    assert trace["attributes"]["stream"] == "census"
    stages = detail["stages"]
    assert stages["publish"].startswith("publish.")
    assert stages["duration_s"] > 0.0
    assert stages["stages"], "the publish span recorded stage children"
    for name, seconds in stages["stages"].items():
        assert isinstance(name, str) and seconds >= 0.0
    # The breakdown is derived from the trace, so it cannot disagree with it.
    total = sum(stages["stages"].values())
    assert total <= stages["duration_s"] + 1e-6

    # The seed version was published by ``create`` itself, outside any tick:
    # it carries no trace, and the field is simply absent rather than null.
    status, seed_detail, _ = server.request("GET", "/streams/census/versions/0")
    assert status == 200
    assert seed_detail["version"]["version"] == 0
    assert "trace" not in seed_detail and "stages" not in seed_detail


# -- Prometheus exposition over HTTP -------------------------------------------------------


def test_metrics_format_negotiation(live_server, adult_rows):
    server = live_server()
    _create(server, "census", adult_rows[:SEED_ROWS])

    status, text, headers = _raw_get(server, "/metrics?format=prometheus")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert text.endswith("\n")
    assert "# TYPE repro_server_uptime_seconds gauge" in text
    assert 'repro_stream_versions{stream="census"} 1' in text

    # The .prom alias serves the same exposition for scrapers that cannot
    # set query parameters; the JSON document is untouched.
    alias_status, alias_text, _ = _raw_get(server, "/metrics.prom")
    assert alias_status == 200
    assert alias_text.splitlines()[0] == text.splitlines()[0]
    status, body, _ = server.request("GET", "/metrics")
    assert status == 200 and body["streams"]["census"]["versions"] == 1

    status, body, _ = server.request("GET", "/metrics?format=xml")
    assert status == 400 and "unknown metrics format" in body["message"]


# -- pool mode: worker traces stitched under the parent tick -------------------------------


def test_pool_publish_trace_is_stitched_from_the_worker(tmp_path):
    """The acceptance path: with a publication process pool, the per-stage
    spans are recorded *inside the worker process* and arrive stitched under
    the parent's tick span, pid and all."""
    from repro.data.adult import adult_schema, generate_adult
    from repro.data.table import MicrodataTable

    schema = adult_schema()
    rows = generate_adult(SEED_ROWS + 30, seed=11).rows()
    registry = StreamRegistry(
        tmp_path / "data", coalesce_ms=0.0, publish_workers=1
    )
    try:
        host = registry.create("census", rows[:SEED_ROWS], FAST_CONFIG)
        batch = MicrodataTable.from_rows(schema, rows[SEED_ROWS:])
        version = host.submit(("append", batch)).result(timeout=300)
        assert version.version == 1

        trace = host.trace_for(1)
        assert trace is not None
        assert trace["name"] == "serve.publish_tick"
        worker = trace["children"][0]
        assert worker["name"] == "pool.worker"
        assert worker["attributes"]["stream"] == "census"
        assert worker["attributes"]["pid"] != os.getpid()

        def find(node, name):
            if node["name"].startswith(name):
                return node
            for child in node["children"]:
                found = find(child, name)
                if found is not None:
                    return found
            return None

        publish = find(worker, "publish.")
        assert publish is not None, "the worker shipped its publish span"
        assert publish["children"], "stage spans crossed the process boundary"
        assert host.trace_for(99) is None
    finally:
        registry.close()
