"""StreamRegistry / StreamHost: creation, coalescing, poisoning, resume.

The load-bearing contracts from the issue:

* N batches queued against one stream coalesce into ONE published version
  whose release matches a sequential publish of the same batches to within
  ``1e-12``;
* a publication failure poisons only its own stream - siblings keep
  publishing and the poisoned stream keeps serving history;
* a new registry over the same data directory resumes every stream, and the
  next published version is identical to an uninterrupted publisher's.
"""

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.data.table import MicrodataTable
from repro.exceptions import StreamError
from repro.privacy.models import BTPrivacy
from repro.serve import BadRequest, Conflict, NotFound, StreamRegistry
from repro.serve.registry import CONFIG_DEFAULTS
from repro.stream import IncrementalPublisher

#: Small stream config that keeps the full pipeline fast in CI.
FAST_CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2, "max_cells": 20000}

SEED_ROWS = 260
SCHEMA = adult_schema()
ROWS = generate_adult(320, seed=11).rows()


def _table(rows):
    # The same construction the daemon uses for HTTP payloads, so the twin
    # publisher sees identical domains (and therefore identical splits).
    return MicrodataTable.from_rows(SCHEMA, rows)


SEED_TABLE = _table(ROWS[:SEED_ROWS])


def _registry(tmp_path, **kwargs):
    return StreamRegistry(tmp_path / "data", coalesce_ms=0.0, **kwargs)


def _twin_publisher(store_path=None):
    """A plain sequential publisher configured exactly like FAST_CONFIG."""
    return IncrementalPublisher(
        _table(ROWS[:SEED_ROWS]),
        BTPrivacy(FAST_CONFIG["b"], FAST_CONFIG["t"]),
        k=FAST_CONFIG["k"],
        max_cells=FAST_CONFIG["max_cells"],
        store_path=store_path,
    )


def _operations():
    """The mixed batch every equivalence test replays."""
    return [
        ("append", _table(ROWS[SEED_ROWS:SEED_ROWS + 30])),
        ("delete", [0, 7, 19, 42]),
        ("append", _table(ROWS[SEED_ROWS + 30:SEED_ROWS + 60])),
    ]


def _apply_sequentially(publisher, operations):
    for kind, payload in operations:
        if kind == "append":
            publisher.append(payload)
        elif kind == "delete":
            publisher.delete(payload)
        else:
            publisher.update(*payload)
    return publisher.store.latest()


def _assert_same_release(actual, expected, tolerance=1e-12):
    assert actual.n_rows == expected.n_rows
    assert actual.n_groups == expected.n_groups
    assert len(actual.release.groups) == len(expected.release.groups)
    assert all(
        np.array_equal(a, b)
        for a, b in zip(actual.release.groups, expected.release.groups)
    )
    assert actual.report is not None and expected.report is not None
    for ours, theirs in zip(actual.report.entries, expected.report.entries):
        assert float(np.max(np.abs(ours.attack.risks - theirs.attack.risks))) <= tolerance


# -- creation and lookup ------------------------------------------------------------------


def test_create_publishes_seed_and_registers(tmp_path):
    registry = _registry(tmp_path)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        assert registry.names() == ["census"]
        assert registry.get("census") is host
        summary = host.describe()
        assert summary["versions"] == 1
        assert summary["rows"] == SEED_ROWS
        assert summary["poisoned"] is None
        assert summary["config"]["b"] == FAST_CONFIG["b"]
        # The shard persists the creation config for restart-resume.
        assert (registry.data_dir / "census" / "stream.json").exists()
    finally:
        registry.close()


def test_create_rejects_bad_names_duplicates_and_configs(tmp_path):
    registry = _registry(tmp_path)
    try:
        rows = SEED_TABLE.rows()
        for name in ("", ".hidden", "a b", "x" * 65, "../escape"):
            with pytest.raises(BadRequest):
                registry.create(name, rows, FAST_CONFIG)
        registry.create("census", rows, FAST_CONFIG)
        with pytest.raises(Conflict):
            registry.create("census", rows, FAST_CONFIG)
        with pytest.raises(BadRequest):
            registry.create("other", rows, {"nope": 1})
        with pytest.raises(BadRequest):
            registry.create("other", rows, {"model": "nope"})
        with pytest.raises(BadRequest):
            registry.create("other", rows, {"b": "many"})
        with pytest.raises(BadRequest):
            registry.create("other", [{"Age": "not a row"}], FAST_CONFIG)
        # Failed creations must not leave half-built shards behind.
        assert not (registry.data_dir / "other").exists()
        with pytest.raises(NotFound):
            registry.get("other")
    finally:
        registry.close()


def test_resolve_config_fills_defaults():
    resolved = StreamRegistry.resolve_config({"b": "0.4", "k": "3"})
    assert resolved["b"] == 0.4
    assert resolved["k"] == 3
    assert resolved["model"] == CONFIG_DEFAULTS["model"]
    assert resolved["method"] == "omega"


# -- coalescing ----------------------------------------------------------------------------


def test_queued_batches_coalesce_into_one_version(tmp_path):
    registry = _registry(tmp_path)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        host.pause()
        futures = [host.submit(operation) for operation in _operations()]
        assert host.queue_depth == len(futures)
        host.unpause()
        versions = [future.result(timeout=300) for future in futures]

        # One tick, one version, shared by every waiter.
        assert len(host.store) == 2
        assert {version.version for version in versions} == {1}
        assert versions[0].delta.coalesced_operations == 3
        assert host.metrics.counters.publishes == 1
        assert host.metrics.counters.coalesced_operations == 3
        assert host.metrics.counters.append_batches == 2
        assert host.metrics.counters.delete_batches == 1
    finally:
        registry.close()


def test_coalesced_version_matches_sequential_publish(tmp_path):
    registry = _registry(tmp_path)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        host.pause()
        futures = [host.submit(operation) for operation in _operations()]
        host.unpause()
        coalesced = futures[-1].result(timeout=300)
    finally:
        registry.close()

    twin = _twin_publisher()
    twin.publish()
    sequential = _apply_sequentially(twin, _operations())

    # Same rows, same groups, risks within 1e-12 of the sequential stream -
    # intermediate versions simply never exist on the coalesced side.
    assert coalesced.version == 1
    assert sequential.version == len(_operations())
    _assert_same_release(coalesced, sequential)


# -- poisoning isolation -------------------------------------------------------------------


def test_poisoning_is_contained_to_one_stream(tmp_path, monkeypatch):
    registry = _registry(tmp_path)
    try:
        sick = registry.create("sick", SEED_TABLE.rows(), FAST_CONFIG)
        healthy = registry.create("healthy", SEED_TABLE.rows(), FAST_CONFIG)

        def explode(operations):
            sick.publisher._inconsistent = True
            raise StreamError("mid-publication failure")

        monkeypatch.setattr(sick.publisher, "publish_coalesced", explode)
        batch = _table(ROWS[SEED_ROWS:SEED_ROWS + 20])
        future = sick.submit(("append", batch))
        with pytest.raises(StreamError):
            future.result(timeout=300)

        # The stream is poisoned: new writes are refused up front...
        assert sick.poisoned is not None
        with pytest.raises(StreamError, match="poisoned"):
            sick.submit(("append", batch))
        assert sick.metrics.counters.failed_batches == 1
        # ... but history stays servable and the sibling keeps publishing.
        assert len(sick.store) == 1
        assert sick.store[0].n_rows == SEED_ROWS
        version = healthy.submit(("append", batch)).result(timeout=300)
        assert version.version == 1
        assert healthy.poisoned is None
    finally:
        registry.close()


def test_validation_failures_do_not_poison(tmp_path):
    registry = _registry(tmp_path)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        future = host.submit(("delete", [10**9]))
        with pytest.raises(Exception):
            future.result(timeout=300)
        # Rejected input never began a publication: the stream stays healthy.
        assert host.poisoned is None
        batch = _table(ROWS[SEED_ROWS:SEED_ROWS + 20])
        assert host.submit(("append", batch)).result(timeout=300).version == 1
    finally:
        registry.close()


# -- restart-resume ------------------------------------------------------------------------


def test_restart_resumes_every_stream_identically(tmp_path):
    operations = _operations()
    first = _registry(tmp_path)
    try:
        host = first.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        for operation in operations[:2]:
            host.submit(operation).result(timeout=300)
        first.create("second", SEED_TABLE.rows(), FAST_CONFIG)
        lineage_before = host.store.lineage()
    finally:
        first.close()

    second = _registry(tmp_path)
    try:
        assert second.names() == ["census", "second"]
        resumed = second.get("census")
        assert resumed.store.lineage() == lineage_before
        # The next version after a restart is identical to an uninterrupted
        # publisher's: same groups, risks within 1e-12.
        final = resumed.submit(operations[2]).result(timeout=300)
    finally:
        second.close()

    twin = _twin_publisher()
    twin.publish()
    expected = _apply_sequentially(twin, operations)
    assert final.version == expected.version == 3
    _assert_same_release(final, expected)


def test_resume_fails_loudly_on_unreadable_config(tmp_path):
    registry = _registry(tmp_path)
    try:
        registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
    finally:
        registry.close()
    (tmp_path / "data" / "census" / "stream.json").write_text("{broken")
    with pytest.raises(StreamError, match="census"):
        _registry(tmp_path)
