"""Process-parallel publication: equivalence, crash isolation, timeouts.

The load-bearing contracts from the issue:

* a registry with ``publish_workers=N`` publishes versions whose releases
  match thread-mode (``publish_workers=0``) to within ``1e-12`` and whose
  lineage JSON is equal once per-run timings are stripped;
* a worker crash (SIGKILL mid-job) or a job timeout poisons exactly the
  stream whose job died - a sibling stream sharing the same worker slot
  keeps publishing through the respawned worker;
* a data directory written in process mode restart-resumes (in either
  mode), with the next version identical to an uninterrupted publisher's.
"""

import os
import signal

import numpy as np
import pytest

from repro.data.adult import adult_schema, generate_adult
from repro.data.table import MicrodataTable
from repro.exceptions import StreamError
from repro.privacy.models import BTPrivacy
from repro.serve import PublicationError, StreamRegistry
from repro.stream import IncrementalPublisher

FAST_CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2, "max_cells": 20000}

SEED_ROWS = 260
SCHEMA = adult_schema()
ROWS = generate_adult(320, seed=11).rows()


def _table(rows):
    return MicrodataTable.from_rows(SCHEMA, rows)


SEED_TABLE = _table(ROWS[:SEED_ROWS])


def _registry(tmp_path, sub="data", **kwargs):
    return StreamRegistry(tmp_path / sub, coalesce_ms=0.0, **kwargs)


def _twin_publisher(store_path=None):
    return IncrementalPublisher(
        _table(ROWS[:SEED_ROWS]),
        BTPrivacy(FAST_CONFIG["b"], FAST_CONFIG["t"]),
        k=FAST_CONFIG["k"],
        max_cells=FAST_CONFIG["max_cells"],
        store_path=store_path,
    )


def _operations():
    return [
        ("append", _table(ROWS[SEED_ROWS:SEED_ROWS + 30])),
        ("delete", [0, 7, 19, 42]),
        ("append", _table(ROWS[SEED_ROWS + 30:SEED_ROWS + 60])),
    ]


def _assert_same_release(actual, expected, tolerance=1e-12):
    assert actual.n_rows == expected.n_rows
    assert actual.n_groups == expected.n_groups
    assert len(actual.release.groups) == len(expected.release.groups)
    assert all(
        np.array_equal(a, b)
        for a, b in zip(actual.release.groups, expected.release.groups)
    )
    assert actual.report is not None and expected.report is not None
    for ours, theirs in zip(actual.report.entries, expected.report.entries):
        assert float(np.max(np.abs(ours.attack.risks - theirs.attack.risks))) <= tolerance


def _canonical(payload):
    """Lineage JSON minus per-run timings, floats rounded to 12 digits."""
    if isinstance(payload, dict):
        return {
            key: _canonical(value)
            for key, value in payload.items()
            if key != "timings" and not key.endswith("_seconds")
        }
    if isinstance(payload, list):
        return [_canonical(value) for value in payload]
    if isinstance(payload, float):
        return float(f"{payload:.12g}")
    return payload


def _wait_dead(process, timeout=30.0):
    # join() reaps the SIGKILLed child; a bare os.kill(pid, 0) probe would
    # keep succeeding against the zombie.
    process.join(timeout=timeout)
    assert not process.is_alive(), f"worker pid {process.pid} did not die"


# -- equivalence ---------------------------------------------------------------------------


def test_process_mode_matches_thread_mode(tmp_path):
    """Same operations, both modes: equal groups, risks within 1e-12."""
    operations = _operations()
    finals = {}
    lineages = {}
    for mode, workers in (("threads", 0), ("procs", 2)):
        registry = _registry(tmp_path, mode, publish_workers=workers)
        try:
            host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
            for operation in operations:
                final = host.submit(operation).result(timeout=300)
            finals[mode] = final
            lineages[mode] = host.store.lineage()
        finally:
            registry.close()

    assert finals["procs"].version == finals["threads"].version == 3
    _assert_same_release(finals["procs"], finals["threads"])
    # The lineage rows (deltas, audit summaries, row counts) agree too -
    # only the wall-clock timings differ between a thread-mode publish and
    # a worker-process publish.
    assert _canonical(lineages["procs"]) == _canonical(lineages["threads"])


def test_process_mode_coalesces_into_one_version(tmp_path):
    registry = _registry(tmp_path, publish_workers=1)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        host.pause()
        futures = [host.submit(operation) for operation in _operations()]
        host.unpause()
        versions = [future.result(timeout=300) for future in futures]
        assert len(host.store) == 2
        assert {version.version for version in versions} == {1}
        assert host.metrics.counters.publishes == 1
        coalesced = versions[0]
    finally:
        registry.close()

    twin = _twin_publisher()
    twin.publish()
    for kind, payload in _operations():
        if kind == "append":
            twin.append(payload)
        elif kind == "delete":
            twin.delete(payload)
        else:
            twin.update(*payload)
    _assert_same_release(coalesced, twin.store.latest())


def test_process_mode_restart_resumes(tmp_path):
    """A shard published by workers resumes cleanly - in either mode."""
    operations = _operations()
    first = _registry(tmp_path, publish_workers=1)
    try:
        host = first.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        for operation in operations[:2]:
            host.submit(operation).result(timeout=300)
        lineage_before = host.store.lineage()
    finally:
        first.close()

    second = _registry(tmp_path, publish_workers=1)
    try:
        resumed = second.get("census")
        assert resumed.store.lineage() == lineage_before
        final = resumed.submit(operations[2]).result(timeout=300)
    finally:
        second.close()

    twin = _twin_publisher()
    twin.publish()
    for kind, payload in operations:
        if kind == "append":
            twin.append(payload)
        elif kind == "delete":
            twin.delete(payload)
        else:
            twin.update(*payload)
    expected = twin.store.latest()
    assert final.version == expected.version == 3
    _assert_same_release(final, expected)


# -- failure isolation ---------------------------------------------------------------------


def test_worker_crash_poisons_only_its_stream(tmp_path):
    registry = _registry(tmp_path, publish_workers=1)
    try:
        sick = registry.create("sick", SEED_TABLE.rows(), FAST_CONFIG)
        healthy = registry.create("healthy", SEED_TABLE.rows(), FAST_CONFIG)
        # One worker slot serves both streams: the crash must poison only
        # the stream whose job was in flight.
        assert registry.pool.pid_for("sick") == registry.pool.pid_for("healthy")

        sick.pause()
        batch = _table(ROWS[SEED_ROWS:SEED_ROWS + 20])
        future = sick.submit(("append", batch))
        worker = registry.pool._worker_for("sick")
        pid = worker.process.pid
        os.kill(pid, signal.SIGKILL)
        _wait_dead(worker.process)
        sick.unpause()
        with pytest.raises(PublicationError):
            future.result(timeout=300)

        assert sick.poisoned is not None
        with pytest.raises(StreamError, match="poisoned"):
            sick.submit(("append", batch))
        # History stays servable and the sibling publishes through the
        # respawned worker process.
        assert len(sick.store) == 1
        version = healthy.submit(("append", batch)).result(timeout=300)
        assert version.version == 1
        assert healthy.poisoned is None
        assert registry.pool.pid_for("healthy") != pid
        assert registry.pool.describe()["restarts"] == 1
    finally:
        registry.close()


def test_worker_timeout_poisons_stream_and_shard_resumes(tmp_path):
    registry = _registry(tmp_path, publish_workers=1, publish_timeout=0.02)
    try:
        host = registry.create("census", SEED_TABLE.rows(), FAST_CONFIG)
        batch = _table(ROWS[SEED_ROWS:SEED_ROWS + 20])
        future = host.submit(("append", batch))
        with pytest.raises(PublicationError, match="timed out"):
            future.result(timeout=300)
        assert host.poisoned is not None
        assert len(host.store) == 1
    finally:
        registry.close()

    # The kill landed mid-compute, before anything was persisted: a fresh
    # registry (thread mode here) resumes the seed and publishes on.
    second = _registry(tmp_path)
    try:
        resumed = second.get("census")
        assert len(resumed.store) == 1
        batch = _table(ROWS[SEED_ROWS:SEED_ROWS + 20])
        assert resumed.submit(("append", batch)).result(timeout=300).version == 1
    finally:
        second.close()
