"""Router, Request and Response: matching, params, errors, determinism."""

import json

import pytest

from repro.serve import BadRequest, MethodNotAllowed, NotFound, Request, Response, Router
from repro.serve.router import parse_query


async def _noop(request):
    return Response(200, {"ok": True})


def _router():
    router = Router()
    router.add("GET", "/healthz", _noop)
    router.add("GET", "/streams/{name}", _noop)
    router.add("POST", "/streams/{name}/append", _noop)
    router.add("GET", "/streams/{name}/versions/{version}", _noop)
    return router


def test_literal_and_param_matching():
    router = _router()
    _, params = router.resolve("GET", "/healthz")
    assert params == {}
    _, params = router.resolve("GET", "/streams/census")
    assert params == {"name": "census"}
    _, params = router.resolve("GET", "/streams/census/versions/3")
    assert params == {"name": "census", "version": "3"}


def test_params_are_url_unquoted():
    _, params = _router().resolve("GET", "/streams/a%20b")
    assert params == {"name": "a b"}


def test_trailing_slash_is_tolerated():
    _, params = _router().resolve("GET", "/streams/census/")
    assert params == {"name": "census"}


def test_unknown_path_is_404():
    with pytest.raises(NotFound):
        _router().resolve("GET", "/nope")
    with pytest.raises(NotFound):
        _router().resolve("GET", "/streams/census/versions")


def test_wrong_method_is_405_naming_allowed():
    with pytest.raises(MethodNotAllowed) as excinfo:
        _router().resolve("DELETE", "/streams/census")
    assert "GET" in str(excinfo.value)
    with pytest.raises(MethodNotAllowed):
        _router().resolve("GET", "/streams/census/append")


def test_request_json_rejects_empty_and_malformed_bodies():
    with pytest.raises(BadRequest):
        Request(method="POST", path="/x").json()
    with pytest.raises(BadRequest):
        Request(method="POST", path="/x", body=b"{nope").json()
    assert Request(method="POST", path="/x", body=b'{"a": 1}').json() == {"a": 1}


def test_response_body_is_deterministic():
    # sort_keys makes equal payloads byte-identical regardless of insertion
    # order - the property the concurrent-reader HTTP test leans on.
    first = Response(200, {"b": 1, "a": [1, 2]}).body()
    second = Response(200, {"a": [1, 2], "b": 1}).body()
    assert first == second
    assert json.loads(first) == {"a": [1, 2], "b": 1}
    assert first.endswith(b"\n")


def test_parse_query():
    assert parse_query("a=1&b=x%20y&a=2") == {"a": "2", "b": "x y"}
    assert parse_query("") == {}
