"""Shared pytest fixtures.

The fixtures keep the tables small so the full suite stays fast; experiments
that need statistical signal use the ``small_adult`` (1 000 rows) fixture,
algorithmic unit tests use ``tiny_adult`` (300 rows) or the hand-written
hospital table from the paper.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests without installing the package (offline environments
# may lack the `wheel` package needed for editable installs).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data.adult import generate_adult  # noqa: E402
from repro.data.examples import table_i_patients  # noqa: E402
from repro.knowledge.prior import kernel_prior  # noqa: E402


@pytest.fixture(scope="session")
def small_adult():
    """A 1 000-row synthetic Adult-like table (shared, read-only)."""
    return generate_adult(1_000, seed=11)


@pytest.fixture(scope="session")
def tiny_adult():
    """A 300-row synthetic Adult-like table for fast algorithmic tests."""
    return generate_adult(300, seed=7)


@pytest.fixture(scope="session")
def small_adult_priors(small_adult):
    """Kernel priors (b = 0.3) for the 1 000-row table, shared across tests."""
    return kernel_prior(small_adult, 0.3)


@pytest.fixture()
def patients():
    """The 9-row hospital table of Table I."""
    return table_i_patients()


@pytest.fixture()
def rng():
    """A seeded random generator for per-test randomness."""
    return np.random.default_rng(1234)
