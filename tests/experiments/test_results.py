"""Tests for the ExperimentResult container and its rendering."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.results import ExperimentResult, ExperimentSeries


@pytest.fixture()
def result():
    result = ExperimentResult(
        experiment_id="Figure X",
        title="A test figure",
        x_label="x",
        y_label="y",
    )
    result.add_series("model-a", [1, 2, 3], [0.1, 0.2, 0.3])
    result.add_series("model-b", [1, 2, 3], [1.0, 2.0, 3.0])
    return result


def test_series_length_mismatch_rejected():
    with pytest.raises(ExperimentError):
        ExperimentSeries(label="bad", x=[1, 2], y=[1.0])


def test_series_by_label(result):
    series = result.series_by_label("model-a")
    assert series.y == [0.1, 0.2, 0.3]
    with pytest.raises(ExperimentError):
        result.series_by_label("missing")


def test_as_rows(result):
    rows = result.as_rows()
    assert len(rows) == 6
    assert rows[0] == {"series": "model-a", "x": 1, "y": 0.1}


def test_render_wide_table(result):
    text = result.render()
    assert "Figure X: A test figure" in text
    lines = text.splitlines()
    assert "model-a" in lines[1] and "model-b" in lines[1]
    # One row per x value plus header, separator, and title.
    assert len(lines) == 3 + 3


def test_render_long_format_when_x_differs():
    result = ExperimentResult("Fig", "title", "x", "y")
    result.add_series("a", [1, 2], [0.1, 0.2])
    result.add_series("b", [5], [0.5])
    text = result.render()
    assert "series" in text
    assert text.count("\n") >= 5


def test_render_empty_result_raises():
    result = ExperimentResult("Fig", "title", "x", "y")
    with pytest.raises(ExperimentError):
        result.render()


def test_render_float_format(result):
    text = result.render(float_format="{:.1f}")
    assert "0.1" in text and "3.0" in text
