"""Tests for the per-figure experiment runners (small, fast configurations).

Each test checks structure (series labels, x values) and the *qualitative*
shape the paper reports, on tables small enough to keep the suite fast.
"""

import numpy as np
import pytest

from repro.data.adult import generate_adult
from repro.exceptions import ExperimentError
from repro.experiments.config import MODEL_NAMES, PrivacyParameters
from repro.experiments.figures import (
    figure_1a,
    figure_1b,
    figure_2,
    figure_3a,
    figure_3b,
    figure_4a,
    figure_4b,
    figure_5a,
    figure_5b,
    figure_6a,
    figure_6b,
    four_model_releases,
)


@pytest.fixture(scope="module")
def table():
    return generate_adult(700, seed=17)


@pytest.fixture(scope="module")
def loose_parameters():
    # A slightly looser variant of para1 suited to a 700-row table.
    return PrivacyParameters("para-test", k=3, l=3, t=0.25, b=0.3)


@pytest.fixture(scope="module")
def releases(table, loose_parameters):
    return four_model_releases(table, loose_parameters)


def test_four_model_releases_structure(table, releases):
    assert set(releases) == set(MODEL_NAMES)
    for result in releases.values():
        covered = np.concatenate(result.release.groups)
        assert sorted(covered.tolist()) == list(range(table.n_rows))
        assert result.release.group_sizes().min() >= 3


def test_figure_1a_shape(table, loose_parameters):
    result = figure_1a(table, loose_parameters, b_prime_values=(0.3, 0.5))
    assert {series.label for series in result.series} == set(MODEL_NAMES)
    bt_series = result.series_by_label("(B,t)-privacy")
    ld_series = result.series_by_label("distinct-l-diversity")
    # The matched adversary (b' = publisher's b = 0.3) breaches no tuple of the
    # (B,t)-private table, and at every b' the (B,t) table has fewer vulnerable
    # tuples than distinct l-diversity.
    assert bt_series.y[0] == 0.0
    for bt_count, ld_count in zip(bt_series.y, ld_series.y):
        assert bt_count <= ld_count


def test_figure_1b_shape(table):
    parameter_sets = (
        PrivacyParameters("pa", k=3, l=3, t=0.25, b=0.3),
        PrivacyParameters("pb", k=4, l=4, t=0.2, b=0.3),
    )
    result = figure_1b(table, parameter_sets=parameter_sets, b_prime=0.3)
    assert [series.label for series in result.series] == list(MODEL_NAMES)
    bt = result.series_by_label("(B,t)-privacy")
    assert bt.x == ["pa", "pb"]
    assert all(value == 0.0 for value in bt.y)
    for name in MODEL_NAMES:
        assert all(value >= 0.0 for value in result.series_by_label(name).y)


def test_figure_2_accuracy(table):
    result = figure_2(table, group_sizes=(3, 5), b_values=(0.3,), repeats=15, seed=5)
    series = result.series_by_label("b=0.3")
    assert series.x == [3, 5]
    # The paper reports the Omega-estimate stays within 0.1 of exact inference.
    assert all(error < 0.1 for error in series.y)
    with pytest.raises(ExperimentError):
        figure_2(table, repeats=0)


def test_figure_3a_continuity(table):
    result = figure_3a(
        table,
        table_b_values=(0.25, 0.3, 0.35),
        adversary_b_values=(0.3,),
        t=0.25,
        k=3,
    )
    series = result.series_by_label("b'=0.3")
    assert len(series.y) == 3
    # Risks are valid distances and the matched point (b = b' = 0.3) respects t.
    assert all(0.0 <= value <= 1.0 for value in series.y)
    assert series.y[series.x.index(0.3)] <= 0.25 + 1e-9
    # Continuity: neighbouring b values give risks within a modest step.
    steps = np.abs(np.diff(series.y))
    assert steps.max() < 0.2


def test_figure_3b_grid(table):
    result = figure_3b(
        table,
        b1_values=(0.3, 0.4),
        b2_values=(0.3, 0.4),
        adversary_b=0.3,
        t=0.25,
        k=3,
    )
    assert {series.label for series in result.series} == {"b1=0.3", "b1=0.4"}
    for series in result.series:
        assert len(series.y) == 2
        assert all(0.0 <= value <= 1.0 for value in series.y)


def test_figure_3b_block_validation(table):
    with pytest.raises(ExperimentError):
        figure_3b(table, first_block_size=0)


def test_figure_4a_timings(table, loose_parameters):
    result = figure_4a(table, parameter_sets=(loose_parameters,))
    assert {series.label for series in result.series} == set(MODEL_NAMES)
    for series in result.series:
        assert all(value > 0.0 for value in series.y)


def test_figure_4b_timings():
    result = figure_4b(input_sizes=(300, 600), b_values=(0.3,), seed=3)
    labels = {series.label for series in result.series}
    assert labels == {"input-size=300", "input-size=600"}
    small = result.series_by_label("input-size=300").y[0]
    large = result.series_by_label("input-size=600").y[0]
    assert small > 0.0 and large > 0.0
    # The factored backend makes both estimations sub-millisecond-fast at
    # these sizes, so strict 300-vs-600-row monotonicity is scheduler noise;
    # only guard against a pathological blowup of the larger run.
    assert large < 100 * max(small, 1e-4)


def test_figure_5_utility(table, loose_parameters, releases):
    dm = figure_5a(table, parameter_sets=(loose_parameters,))
    gcp = figure_5b(table, parameter_sets=(loose_parameters,))
    for result in (dm, gcp):
        assert {series.label for series in result.series} == set(MODEL_NAMES)
        for series in result.series:
            assert all(value > 0.0 for value in series.y)
    # Comparable utility: the (B,t) table stays within an order of magnitude of
    # the other models on both metrics (the paper's Figure 5 claim).
    for result in (dm, gcp):
        bt_value = result.series_by_label("(B,t)-privacy").y[0]
        others = [
            result.series_by_label(name).y[0] for name in MODEL_NAMES if name != "(B,t)-privacy"
        ]
        assert bt_value <= 10 * max(others)


def test_figure_6_query_error(table, loose_parameters):
    result_qd = figure_6a(
        table, loose_parameters, qd_values=(2, 4), selectivity=0.1, n_queries=60, seed=3
    )
    result_sel = figure_6b(
        table,
        loose_parameters,
        selectivity_values=(0.05, 0.12),
        query_dimension=3,
        n_queries=60,
        seed=3,
    )
    for result in (result_qd, result_sel):
        assert {series.label for series in result.series} == set(MODEL_NAMES)
        for series in result.series:
            assert all(value >= 0.0 for value in series.y)
    # Larger selectivity -> lower relative error (the paper's Figure 6(b) trend),
    # checked on the (B,t) series.
    bt = result_sel.series_by_label("(B,t)-privacy")
    assert bt.y[-1] <= bt.y[0] * 1.5
