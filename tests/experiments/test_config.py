"""Tests for the Table V parameter sets and model building."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import (
    MODEL_NAMES,
    PARA1,
    PARA4,
    TABLE_V,
    build_models,
    parameters_by_name,
)
from repro.knowledge.prior import kernel_prior
from repro.privacy.models import BTPrivacy, CompositeModel


def test_table_v_values_match_paper():
    assert len(TABLE_V) == 4
    assert (PARA1.k, PARA1.l, PARA1.t, PARA1.b) == (3, 3, 0.25, 0.3)
    assert (PARA4.k, PARA4.l, PARA4.t, PARA4.b) == (6, 6, 0.10, 0.3)
    # k = l and b = 0.3 for every row, as in the paper's setup.
    for parameters in TABLE_V:
        assert parameters.k == parameters.l
        assert parameters.b == 0.3


def test_parameters_by_name():
    assert parameters_by_name("para2").t == 0.2
    with pytest.raises(ExperimentError):
        parameters_by_name("para9")


def test_describe():
    text = PARA1.describe()
    assert "para1" in text and "k=3" in text and "t=0.25" in text


def test_build_models_names_and_composition():
    models = build_models(PARA1)
    assert set(models) == set(MODEL_NAMES)
    for model in models.values():
        assert isinstance(model, CompositeModel)
    plain = build_models(PARA1, with_k_anonymity=False)
    assert not isinstance(plain["(B,t)-privacy"], CompositeModel)
    assert isinstance(plain["(B,t)-privacy"], BTPrivacy)


def test_build_models_with_shared_priors(tiny_adult):
    priors = kernel_prior(tiny_adult, PARA1.b)
    models = build_models(PARA1, with_k_anonymity=False, shared_priors=priors, table=tiny_adult)
    bt = models["(B,t)-privacy"]
    assert bt.priors is priors


def test_build_models_shared_priors_requires_table(tiny_adult):
    priors = kernel_prior(tiny_adult, PARA1.b)
    with pytest.raises(ExperimentError):
        build_models(PARA1, shared_priors=priors)
