"""Tests for the ablation experiment runners."""

import pytest

from repro.data.adult import generate_adult
from repro.exceptions import ExperimentError
from repro.experiments.ablation import (
    ablation_distance_measure,
    ablation_inference_method,
    ablation_kernel_choice,
    ablation_mondrian_split,
)
from repro.experiments.config import PrivacyParameters


@pytest.fixture(scope="module")
def table():
    return generate_adult(500, seed=23)


@pytest.fixture(scope="module")
def parameters():
    return PrivacyParameters("para-ablation", k=3, l=3, t=0.25, b=0.3)


def test_kernel_choice_ablation(table, parameters):
    result = ablation_kernel_choice(
        table, parameters, kernels=("epanechnikov", "uniform"), adversary_b=0.3
    )
    risk = result.series_by_label("worst-case risk")
    groups = result.series_by_label("number of groups")
    assert risk.x == ["epanechnikov", "uniform"]
    assert all(0.0 <= value <= 1.0 for value in risk.y)
    assert all(value >= 1.0 for value in groups.y)
    # The paper's claim: the kernel choice has only a modest effect.
    assert abs(risk.y[0] - risk.y[1]) < 0.3


def test_kernel_choice_unknown_kernel(table, parameters):
    with pytest.raises(ExperimentError):
        ablation_kernel_choice(table, parameters, kernels=("nonexistent",))


def test_distance_measure_ablation(table, parameters):
    result = ablation_distance_measure(table, parameters)
    worst = result.series_by_label("worst-case risk")
    mean = result.series_by_label("mean risk")
    assert len(worst.y) == 3
    for worst_value, mean_value in zip(worst.y, mean.y):
        assert worst_value >= mean_value >= 0.0


def test_inference_method_ablation(table):
    result = ablation_inference_method(table, group_sizes=(3, 6), b=0.3, repeats=5)
    exact = result.series_by_label("exact inference")
    omega = result.series_by_label("omega-estimate")
    assert len(exact.y) == len(omega.y) == 2
    # The Omega-estimate is the cheap one; exact inference cost grows with k.
    assert omega.y[-1] < exact.y[-1]
    with pytest.raises(ExperimentError):
        ablation_inference_method(table, repeats=0)


def test_mondrian_split_ablation(table, parameters):
    result = ablation_mondrian_split(table, parameters)
    dm = result.series_by_label("discernibility metric")
    gcp = result.series_by_label("global certainty penalty")
    assert dm.x == ["widest", "round_robin"]
    assert all(value > 0.0 for value in dm.y)
    assert all(value > 0.0 for value in gcp.y)
