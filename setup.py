"""Packaging for the repro library (src layout, ``repro`` console script)."""

from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).resolve().parent


def _read_version() -> str:
    for line in (_HERE / "src" / "repro" / "__init__.py").read_text().splitlines():
        if line.startswith("__version__"):
            return line.split("=", 1)[1].strip().strip("\"'")
    raise RuntimeError("unable to find __version__ in src/repro/__init__.py")


setup(
    name="repro-icde09-background-knowledge",
    version=_read_version(),
    description=(
        "Reproduction of 'Modeling and Integrating Background Knowledge in "
        "Data Anonymization' (Li, Li & Zhang, ICDE 2009)"
    ),
    long_description=(_HERE / "PAPER.md").read_text(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark>=4"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
