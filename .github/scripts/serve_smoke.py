"""Drive a live ``repro serve`` daemon over HTTP for the package-smoke job.

Usage::

    python serve_smoke.py seed   http://127.0.0.1:8751
    python serve_smoke.py resume http://127.0.0.1:8751

``seed`` waits for the daemon to come up, creates a stream from 200 Adult
rows, fires one append, one delete and one update (sequentially, so each
publishes its own version), and reads back version 0, the latest audit
report and the metrics view.  ``resume`` runs against a *restarted* daemon
on the same data dir and asserts every version survived on disk (the
restart also exercises stale-lock recovery: the killed daemon leaves
``store.lock`` behind and the new one must steal it), then appends once
more and checks the version numbering continues where it left off.

The script only needs the installed package (``repro`` + numpy) and the
stdlib - it is the clean-venv counterpart of ``examples/serve_client.py``.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2}
SEED_ROWS = 200
BATCH_ROWS = 40


def call(base: str, method: str, path: str, payload=None):
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def wait_healthy(base: str, attempts: int = 150) -> None:
    for _ in range(attempts):
        try:
            call(base, "GET", "/healthz")
            return
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.2)
    raise SystemExit(f"daemon at {base} never became healthy")


def adult_rows(count: int, seed: int):
    from repro.data.adult import generate_adult

    table = generate_adult(count, seed=seed)
    return [
        {
            name: (value.item() if hasattr(value, "item") else value)
            for name, value in table.row(index).items()
        }
        for index in range(table.n_rows)
    ]


def seed(base: str) -> None:
    rows = adult_rows(SEED_ROWS + 2 * BATCH_ROWS, seed=11)
    status, body = call(
        base, "POST", "/streams",
        {"name": "census", "rows": rows[:SEED_ROWS], "config": CONFIG},
    )
    assert status == 201, (status, body)
    assert body["stream"]["versions"] == 1, body

    status, body = call(
        base, "POST", "/streams/census/append",
        {"rows": rows[SEED_ROWS:SEED_ROWS + BATCH_ROWS]},
    )
    assert status == 200 and body["version"]["version"] == 1, (status, body)
    status, body = call(
        base, "POST", "/streams/census/delete", {"positions": list(range(10))}
    )
    assert status == 200 and body["version"]["version"] == 2, (status, body)
    status, body = call(
        base, "POST", "/streams/census/update",
        {"positions": list(range(10, 20)),
         "rows": rows[SEED_ROWS + BATCH_ROWS:SEED_ROWS + BATCH_ROWS + 10]},
    )
    assert status == 200 and body["version"]["version"] == 3, (status, body)

    status, body = call(base, "GET", "/streams/census/versions/0")
    assert status == 200 and body["version"]["rows"] == SEED_ROWS, (status, body)
    status, body = call(base, "GET", "/streams/census/audit")
    assert status == 200 and body["version"] == 3, (status, body)
    assert body["audit"]["adversaries"], body
    status, body = call(base, "GET", "/metrics")
    assert status == 200, (status, body)
    counters = body["streams"]["census"]["counters"]
    assert counters["publishes"] == 3 and counters["failed_batches"] == 0, body
    print("serve smoke (seed): 4 versions published, audit + metrics read back")


def resume(base: str) -> None:
    status, body = call(base, "GET", "/healthz")
    assert status == 200 and body["streams"] == ["census"], (status, body)
    status, body = call(base, "GET", "/streams/census")
    assert status == 200 and body["stream"]["versions"] == 4, (status, body)

    rows = adult_rows(BATCH_ROWS, seed=12)
    status, body = call(base, "POST", "/streams/census/append", {"rows": rows})
    assert status == 200 and body["version"]["version"] == 4, (status, body)
    status, body = call(base, "GET", "/streams/census/audit")
    assert status == 200 and body["version"] == 4, (status, body)
    print("serve smoke (resume): stream resumed from disk, version numbering continued")


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[0] not in ("seed", "resume"):
        print(__doc__, file=sys.stderr)
        return 2
    mode, base = argv
    wait_healthy(base)
    (seed if mode == "seed" else resume)(base)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
