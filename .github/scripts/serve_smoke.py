"""Drive a live ``repro serve`` daemon over HTTP for the package-smoke job.

Usage::

    python serve_smoke.py seed           http://127.0.0.1:8751
    python serve_smoke.py resume         http://127.0.0.1:8751
    python serve_smoke.py flood          http://127.0.0.1:8752
    python serve_smoke.py resume-workers http://127.0.0.1:8752

``seed`` waits for the daemon to come up, creates a stream from 200 Adult
rows, fires one append, one delete and one update (sequentially, so each
publishes its own version), and reads back version 0, the latest audit
report, the metrics view and the Prometheus text exposition (validated line
by line against the 0.0.4 format contract).  ``resume`` runs against a *restarted* daemon
on the same data dir and asserts every version survived on disk (the
restart also exercises stale-lock recovery: the killed daemon leaves
``store.lock`` behind and the new one must steal it), then appends once
more and checks the version numbering continues where it left off.

``flood`` drives a daemon started with ``--publish-workers N`` and a
one-slot queue (``--max-queue-batches 1``): it creates a stream, fires a
burst of concurrent appends, asserts at least one was rejected with 429 +
``Retry-After``, retries every rejected batch until accepted (the recovery
half of the backpressure contract), checks the pool and rejection counters
in ``/metrics`` - then leaves one final append *in flight* and exits, so
the workflow can SIGKILL the daemon mid-publication.
``resume-workers`` runs after that kill + restart: the orphaned publication
worker processes must have self-exited (parent watchdog), their stale
``store.lock`` files must have been stolen, and the stream must accept new
appends with the version numbering continuing from whatever was durably
published before the kill.

The script only needs the installed package (``repro`` + numpy) and the
stdlib - it is the clean-venv counterpart of ``examples/serve_client.py``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.error
import urllib.request

CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2}
SEED_ROWS = 200
BATCH_ROWS = 40


def call(base: str, method: str, path: str, payload=None):
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def call_full(base: str, method: str, path: str, payload=None):
    """Like :func:`call`, but 4xx is returned (with headers), not raised."""
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def call_text(base: str, path: str):
    """GET a non-JSON endpoint, returning (status, text, headers)."""
    request = urllib.request.Request(base + path, method="GET")
    with urllib.request.urlopen(request, timeout=120) as response:
        return (
            response.status,
            response.read().decode("utf-8"),
            dict(response.headers),
        )


def check_prometheus(base: str) -> int:
    """Scrape the Prometheus exposition and validate it line by line.

    Returns the number of samples.  The format contract (text exposition
    0.0.4): every non-empty line is either a ``# HELP``/``# TYPE`` comment or
    a ``name{labels} value`` sample whose value parses as a float; every
    sample's metric name was announced by a preceding ``# TYPE`` line.
    """
    status, text, headers = call_text(base, "/metrics?format=prometheus")
    assert status == 200, status
    assert headers.get("Content-Type", "").startswith("text/plain"), headers
    assert text.endswith("\n"), "the exposition must end with a newline"
    typed: set[str] = set()
    samples = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert parts[1] in ("HELP", "TYPE") and len(parts) >= 3, line
            if parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        name_part, _, value_part = line.rpartition(" ")
        float(value_part)  # must parse (raises on a malformed sample)
        name = name_part.split("{", 1)[0]
        # A summary's _count/_sum samples belong to the family announced
        # under the base name.
        family = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
        assert family in typed, f"sample {name!r} has no preceding # TYPE line"
        assert name.startswith("repro_"), line
        samples += 1
    assert samples, "the exposition carried no samples"
    # The alias endpoint must serve the same families.
    alias_status, alias_text, _ = call_text(base, "/metrics.prom")
    assert alias_status == 200 and alias_text.splitlines()[0] == text.splitlines()[0]
    return samples


def wait_healthy(base: str, attempts: int = 150) -> None:
    for _ in range(attempts):
        try:
            call(base, "GET", "/healthz")
            return
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.2)
    raise SystemExit(f"daemon at {base} never became healthy")


def adult_rows(count: int, seed: int):
    from repro.data.adult import generate_adult

    table = generate_adult(count, seed=seed)
    return [
        {
            name: (value.item() if hasattr(value, "item") else value)
            for name, value in table.row(index).items()
        }
        for index in range(table.n_rows)
    ]


def seed(base: str) -> None:
    rows = adult_rows(SEED_ROWS + 2 * BATCH_ROWS, seed=11)
    status, body = call(
        base, "POST", "/streams",
        {"name": "census", "rows": rows[:SEED_ROWS], "config": CONFIG},
    )
    assert status == 201, (status, body)
    assert body["stream"]["versions"] == 1, body

    status, body = call(
        base, "POST", "/streams/census/append",
        {"rows": rows[SEED_ROWS:SEED_ROWS + BATCH_ROWS]},
    )
    assert status == 200 and body["version"]["version"] == 1, (status, body)
    status, body = call(
        base, "POST", "/streams/census/delete", {"positions": list(range(10))}
    )
    assert status == 200 and body["version"]["version"] == 2, (status, body)
    status, body = call(
        base, "POST", "/streams/census/update",
        {"positions": list(range(10, 20)),
         "rows": rows[SEED_ROWS + BATCH_ROWS:SEED_ROWS + BATCH_ROWS + 10]},
    )
    assert status == 200 and body["version"]["version"] == 3, (status, body)

    status, body = call(base, "GET", "/streams/census/versions/0")
    assert status == 200 and body["version"]["rows"] == SEED_ROWS, (status, body)
    status, body = call(base, "GET", "/streams/census/audit")
    assert status == 200 and body["version"] == 3, (status, body)
    assert body["audit"]["adversaries"], body
    status, body = call(base, "GET", "/metrics")
    assert status == 200, (status, body)
    counters = body["streams"]["census"]["counters"]
    assert counters["publishes"] == 3 and counters["failed_batches"] == 0, body
    samples = check_prometheus(base)
    print(
        "serve smoke (seed): 4 versions published, audit + metrics read "
        f"back, {samples} Prometheus samples validated"
    )


def resume(base: str) -> None:
    status, body = call(base, "GET", "/healthz")
    assert status == 200 and body["streams"] == ["census"], (status, body)
    status, body = call(base, "GET", "/streams/census")
    assert status == 200 and body["stream"]["versions"] == 4, (status, body)

    rows = adult_rows(BATCH_ROWS, seed=12)
    status, body = call(base, "POST", "/streams/census/append", {"rows": rows})
    assert status == 200 and body["version"]["version"] == 4, (status, body)
    status, body = call(base, "GET", "/streams/census/audit")
    assert status == 200 and body["version"] == 4, (status, body)
    print("serve smoke (resume): stream resumed from disk, version numbering continued")


def flood(base: str) -> None:
    burst = 6
    rows = adult_rows(SEED_ROWS + (burst + 2) * BATCH_ROWS, seed=21)
    status, body = call(
        base, "POST", "/streams",
        {"name": "burst", "rows": rows[:SEED_ROWS], "config": CONFIG},
    )
    assert status == 201, (status, body)
    pool = rows[SEED_ROWS:]
    batches = [
        pool[index * BATCH_ROWS:(index + 1) * BATCH_ROWS] for index in range(burst)
    ]

    lock = threading.Lock()
    rejections = []
    failures = []

    def fire(batch) -> None:
        # Retry on 429 until accepted: the recovery half of the contract -
        # backpressure costs the client time, never data.
        while True:
            status, body, headers = call_full(
                base, "POST", "/streams/burst/append", {"rows": batch}
            )
            if status == 200:
                return
            if status == 429:
                with lock:
                    rejections.append(headers.get("Retry-After"))
                time.sleep(0.1)
                continue
            with lock:
                failures.append((status, body))
            return

    threads = [threading.Thread(target=fire, args=(batch,)) for batch in batches]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[:3]
    # A one-slot queue against 6 concurrent writers must have pushed back,
    # and every 429 must have carried its pacing hint.
    assert rejections, "the flood never saw a 429 despite the one-slot queue"
    assert all(value and int(value) >= 1 for value in rejections), rejections

    status, body = call(base, "GET", "/streams/burst")
    assert status == 200, (status, body)
    versions = body["stream"]["versions"]
    assert versions >= 2, body  # every batch landed (coalescing allowed)

    status, body = call(base, "GET", "/metrics")
    assert status == 200, (status, body)
    stream = body["streams"]["burst"]
    assert stream["counters"]["rejected_batches"] == len(rejections), body
    assert stream["counters"]["failed_batches"] == 0, body
    assert stream["queue_high_water"] == 1, body
    pool_state = body["server"]["publication_pool"]
    assert pool_state["workers"] >= 1 and pool_state["restarts"] == 0, body

    # Leave one publication in flight for the workflow's SIGKILL: fire the
    # append without awaiting it and give it a moment to reach the worker.
    threading.Thread(
        target=call_full,
        args=(base, "POST", "/streams/burst/append"),
        kwargs={"payload": {"rows": pool[burst * BATCH_ROWS:(burst + 1) * BATCH_ROWS]}},
        daemon=True,
    ).start()
    time.sleep(0.4)
    print(
        f"serve smoke (flood): {len(rejections)} rejections with Retry-After, "
        f"all {burst} batches recovered into {versions} versions"
    )


def resume_workers(base: str) -> None:
    status, body = call(base, "GET", "/healthz")
    assert status == 200 and "burst" in body["streams"], (status, body)
    status, body = call(base, "GET", "/streams/burst")
    assert status == 200, (status, body)
    versions = body["stream"]["versions"]
    assert versions >= 2, body
    assert body["stream"]["poisoned"] is None, body

    # The killed daemon's orphaned workers held the shard lock; the restart
    # proves it went stale and was stolen.  New writes must publish with the
    # numbering continuing from whatever survived on disk.
    rows = adult_rows(BATCH_ROWS, seed=22)
    status, body = call(base, "POST", "/streams/burst/append", {"rows": rows})
    assert status == 200 and body["version"]["version"] == versions, (status, body)
    status, body = call(base, "GET", "/streams/burst/audit")
    assert status == 200 and body["version"] == versions, (status, body)
    print(
        "serve smoke (resume-workers): pool-published shard resumed after "
        f"SIGKILL, version numbering continued at {versions}"
    )


MODES = {
    "seed": seed,
    "resume": resume,
    "flood": flood,
    "resume-workers": resume_workers,
}


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[0] not in MODES:
        print(__doc__, file=sys.stderr)
        return 2
    mode, base = argv
    wait_healthy(base)
    MODES[mode](base)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
