"""Privacy models: k-anonymity, l-diversity variants, t-closeness, (B,t)-privacy.

Every model implements the small :class:`PrivacyModel` interface used by the
anonymization algorithms (Mondrian, Anatomy):

* :meth:`PrivacyModel.prepare` is called once with the full table and is where
  expensive global work happens (e.g. estimating the kernel priors for the
  (B,t) model);
* :meth:`PrivacyModel.is_satisfied` is called with candidate group indices and
  decides whether a group may appear in the release.

The headline model of the paper is :class:`BTPrivacy` (Definition 1) and its
multi-adversary variant :class:`SkylineBTPrivacy` (Definition 2).  The
baselines used throughout the evaluation - distinct l-diversity, probabilistic
l-diversity and t-closeness - are provided alongside, plus
:class:`KAnonymity`, which the paper composes with every model to also protect
against identity disclosure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.distance import attribute_distance_matrix
from repro.data.table import MicrodataTable
from repro.exceptions import PrivacyModelError
from repro.inference.omega import grouped_posterior
from repro.knowledge.backend import DEFAULT_MAX_CELLS
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import PriorBeliefs, kernel_prior
from repro.privacy.measures import (
    DistanceMeasure,
    HierarchicalEMD,
    SmoothedJSDivergence,
    total_variation,
)


class PrivacyModel:
    """Interface shared by all privacy requirements."""

    name = "abstract"

    def prepare(self, table: MicrodataTable) -> None:
        """Precompute any table-wide state (called once before anonymization)."""

    def components(self):
        """Iterate over this requirement's leaf models (itself for simple models).

        Composite requirements (conjunctions, skylines) yield their nested
        models, so callers can walk an arbitrary requirement tree - e.g. a
        session injecting shared kernel priors into every (B,t) component.
        """
        yield self

    def is_satisfied(self, group_indices: np.ndarray) -> bool:  # pragma: no cover - interface
        """Whether a candidate group meets the requirement."""
        raise NotImplementedError

    def is_satisfied_batch(self, groups: Sequence[np.ndarray]) -> list[bool]:
        """Whether each candidate group meets the requirement.

        Models whose check benefits from evaluating many groups in one pass
        (e.g. :class:`BTPrivacy`'s batched posterior kernel) override this;
        the default simply loops.  Mondrian evaluates the two halves of every
        candidate split through this entry point.
        """
        return [self.is_satisfied(group) for group in groups]

    def stream_update(self, table: MicrodataTable, n_previous: int) -> np.ndarray:
        """Refresh state for a grown table; report which rows' verdicts may change.

        The streaming publisher's invalidation hook: ``table`` extends the
        previously prepared table by appending rows (the first ``n_previous``
        rows are unchanged).  Implementations refresh any table-wide state and
        return a boolean *dirty* mask over the new table - ``True`` where a
        group containing that row must be re-checked.  The conservative
        default re-prepares and marks every row dirty, which is always sound;
        models whose verdicts depend only on a group's own members override it
        to mark just the appended rows.  (:class:`BTPrivacy` is refreshed
        through :meth:`update_priors` instead - its dirtiness is a property of
        the re-estimated priors, which the publisher owns.)
        """
        self.prepare(table)
        return np.ones(table.n_rows, dtype=bool)

    def stream_replace(self, table: MicrodataTable, previous_of: np.ndarray) -> np.ndarray:
        """Refresh state after rows were removed or corrected in place.

        The full-lifecycle counterpart of :meth:`stream_update`:
        ``previous_of`` maps every row of ``table`` to its position in the
        previously prepared table (``-1`` for rows with no previous
        counterpart).  Implementations refresh table-wide state and return a
        boolean dirty mask over ``table``'s rows.  The conservative default
        re-prepares and marks everything dirty; models whose verdicts depend
        only on a group's own members override it.  (:class:`BTPrivacy` is
        refreshed through :meth:`update_priors` with ``previous_of``.)
        """
        self.prepare(table)
        return np.ones(table.n_rows, dtype=bool)

    def _appended_only_dirty(self, table: MicrodataTable, n_previous: int) -> np.ndarray:
        dirty = np.ones(table.n_rows, dtype=bool)
        dirty[:n_previous] = False
        return dirty

    def describe(self) -> str:
        """Short human-readable description of the configured requirement."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class KAnonymity(PrivacyModel):
    """Every group must contain at least ``k`` tuples (identity disclosure)."""

    name = "k-anonymity"

    def __init__(self, k: int):
        if k < 1:
            raise PrivacyModelError("k must be at least 1")
        self.k = int(k)

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        return len(group_indices) >= self.k

    def stream_update(self, table: MicrodataTable, n_previous: int) -> np.ndarray:
        # Group size only: appending rows cannot change untouched groups.
        self.prepare(table)
        return self._appended_only_dirty(table, n_previous)

    def stream_replace(self, table: MicrodataTable, previous_of: np.ndarray) -> np.ndarray:
        # Group size only: the publisher re-checks every group whose
        # *membership* changed, which is the only thing k-anonymity sees.
        self.prepare(table)
        return np.asarray(previous_of, dtype=np.int64) < 0

    def describe(self) -> str:
        return f"k={self.k}"


class _SensitiveGroupModel(PrivacyModel):
    """Base for models that only look at the sensitive values of a group."""

    def __init__(self) -> None:
        self._sensitive_codes: np.ndarray | None = None
        self._domain_size: int | None = None

    def prepare(self, table: MicrodataTable) -> None:
        self._sensitive_codes = table.sensitive_codes()
        self._domain_size = table.sensitive_domain().size

    def stream_update(self, table: MicrodataTable, n_previous: int) -> np.ndarray:
        # Verdicts depend only on a group's own sensitive counts, and
        # append-only growth keeps previous rows' codes unchanged.
        self.prepare(table)
        return self._appended_only_dirty(table, n_previous)

    def stream_replace(self, table: MicrodataTable, previous_of: np.ndarray) -> np.ndarray:
        # Verdicts depend only on a group's own sensitive counts: a row is
        # dirty when it has no previous counterpart or its code changed
        # (membership changes are the publisher's responsibility).
        previous_codes = self._sensitive_codes
        self.prepare(table)
        previous_of = np.asarray(previous_of, dtype=np.int64)
        dirty = previous_of < 0
        if previous_codes is None:
            return np.ones(table.n_rows, dtype=bool)
        surviving = ~dirty
        dirty[surviving] = (
            self._sensitive_codes[surviving] != previous_codes[previous_of[surviving]]
        )
        return dirty

    def _group_counts(self, group_indices: np.ndarray) -> np.ndarray:
        if self._sensitive_codes is None or self._domain_size is None:
            raise PrivacyModelError(f"{self.name} is not prepared; call prepare(table) first")
        indices = np.asarray(group_indices, dtype=np.int64)
        if indices.size == 0:
            raise PrivacyModelError("a group must contain at least one tuple")
        return np.bincount(self._sensitive_codes[indices], minlength=self._domain_size)


class DistinctLDiversity(_SensitiveGroupModel):
    """Each group must contain at least ``l`` distinct sensitive values."""

    name = "distinct-l-diversity"

    def __init__(self, l: int):
        super().__init__()
        if l < 1:
            raise PrivacyModelError("l must be at least 1")
        self.l = int(l)

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        counts = self._group_counts(group_indices)
        return int((counts > 0).sum()) >= self.l

    def describe(self) -> str:
        return f"l={self.l}"


class ProbabilisticLDiversity(_SensitiveGroupModel):
    """The most frequent sensitive value may take at most a ``1/l`` share of a group."""

    name = "probabilistic-l-diversity"

    def __init__(self, l: float):
        super().__init__()
        if l < 1:
            raise PrivacyModelError("l must be at least 1")
        self.l = float(l)

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        counts = self._group_counts(group_indices)
        total = counts.sum()
        return counts.max() <= total / self.l + 1e-12

    def describe(self) -> str:
        return f"l={self.l:g}"


class EntropyLDiversity(_SensitiveGroupModel):
    """The entropy of each group's sensitive distribution must be at least ``log(l)``."""

    name = "entropy-l-diversity"

    def __init__(self, l: float):
        super().__init__()
        if l < 1:
            raise PrivacyModelError("l must be at least 1")
        self.l = float(l)

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        counts = self._group_counts(group_indices)
        distribution = counts[counts > 0].astype(np.float64)
        distribution /= distribution.sum()
        entropy = float(-(distribution * np.log(distribution)).sum())
        return entropy >= np.log(self.l) - 1e-12

    def describe(self) -> str:
        return f"l={self.l:g}"


class TCloseness(_SensitiveGroupModel):
    """Each group's sensitive distribution must stay within ``t`` of the table's.

    The distance is the Earth Mover's Distance, either over the sensitive
    attribute's Section II-C ground-distance matrix (hierarchical EMD, the
    default when the sensitive attribute carries a taxonomy) or the
    variational distance when ``use_hierarchy=False``.
    """

    name = "t-closeness"

    def __init__(self, t: float, *, use_hierarchy: bool = True):
        super().__init__()
        if not 0.0 <= t <= 1.0:
            raise PrivacyModelError("t must lie in [0, 1]")
        self.t = float(t)
        self.use_hierarchy = bool(use_hierarchy)
        self._overall: np.ndarray | None = None
        self._emd: HierarchicalEMD | None = None

    def prepare(self, table: MicrodataTable) -> None:
        super().prepare(table)
        self._overall = table.sensitive_distribution()
        taxonomy = table.sensitive_domain().attribute.taxonomy
        if self.use_hierarchy and taxonomy is not None:
            leaf_order = [str(v) for v in table.sensitive_domain().values.tolist()]
            self._emd = HierarchicalEMD(taxonomy, leaf_order)
        else:
            self._emd = None

    def stream_update(self, table: MicrodataTable, n_previous: int) -> np.ndarray:
        # The reference is the *overall* sensitive distribution: when the
        # appended rows move it, every group's distance to it may move too.
        previous_overall = self._overall
        self.prepare(table)
        if previous_overall is not None and np.array_equal(previous_overall, self._overall):
            return self._appended_only_dirty(table, n_previous)
        return np.ones(table.n_rows, dtype=bool)

    def stream_replace(self, table: MicrodataTable, previous_of: np.ndarray) -> np.ndarray:
        # Same reference sensitivity as stream_update: an unchanged overall
        # distribution reduces dirtiness to membership/code changes.
        previous_overall = self._overall
        dirty = super().stream_replace(table, previous_of)
        if previous_overall is not None and np.array_equal(previous_overall, self._overall):
            return dirty
        return np.ones(table.n_rows, dtype=bool)

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        counts = self._group_counts(group_indices)
        if self._overall is None:
            raise PrivacyModelError("t-closeness is not prepared; call prepare(table) first")
        distribution = counts.astype(np.float64)
        distribution /= distribution.sum()
        if self._emd is not None:
            distance = self._emd(distribution, self._overall)
        else:
            distance = total_variation(distribution, self._overall)
        return distance <= self.t + 1e-12

    def describe(self) -> str:
        return f"t={self.t:g}"


class BTPrivacy(PrivacyModel):
    """The (B,t)-privacy principle (Definition 1).

    A group satisfies the requirement when, for the adversary ``Adv(B)``, the
    distance between the prior and posterior belief of *every* tuple in the
    group is at most ``t``.  Posteriors are computed with the Omega-estimate by
    default (``inference="omega"``); ``inference="exact"`` switches to the
    count-DP exact inference (only sensible for small groups).

    Parameters
    ----------
    b:
        Either a scalar bandwidth applied to every QI attribute, or a full
        :class:`~repro.knowledge.bandwidth.Bandwidth`.
    t:
        Maximum tolerated prior-to-posterior distance.
    kernel:
        Kernel used for the prior estimation (default Epanechnikov).
    measure:
        Distance measure ``D[P, Q]``; defaults to the paper's smoothed-JS
        measure over the sensitive attribute's distance matrix.
    inference:
        ``"omega"`` or ``"exact"``.
    max_cells:
        Cell budget of the factored prior-estimation backend (see
        :class:`~repro.knowledge.backend.FactoredPriorBackend`; ``0`` selects
        the flat reference sweep).
    """

    name = "(B,t)-privacy"

    def __init__(
        self,
        b: float | Bandwidth,
        t: float,
        *,
        kernel: str = "epanechnikov",
        measure: DistanceMeasure | None = None,
        inference: str = "omega",
        smoothing_bandwidth: float = 0.5,
        max_cells: int = DEFAULT_MAX_CELLS,
    ):
        if not 0.0 <= t <= 1.0:
            raise PrivacyModelError("t must lie in [0, 1]")
        if inference not in {"omega", "exact"}:
            raise PrivacyModelError("inference must be 'omega' or 'exact'")
        self.b = b
        self.t = float(t)
        self.kernel = kernel
        self.inference = inference
        self.max_cells = int(max_cells)
        self.smoothing_bandwidth = float(smoothing_bandwidth)
        self.measure = measure
        self._priors: PriorBeliefs | None = None
        self._sensitive_codes: np.ndarray | None = None
        self._domain_size: int | None = None
        # Per-group risk memo for one partition run: Mondrian re-examines the
        # same candidate groups (and every skyline point sees the same split),
        # so cache by the group's index bytes.  Reset whenever priors change,
        # and bounded so long-lived prepared models cannot grow without limit.
        self._risk_cache: dict[bytes, float] = {}
        self._risk_cache_limit = 100_000
        self.risk_evaluations = 0
        self.risk_cache_hits = 0

    # -- preparation -----------------------------------------------------------------
    def prepare(self, table: MicrodataTable) -> None:
        if self._priors is None:
            # Priors may have been injected with set_priors (to share one kernel
            # estimation across several models); only estimate when absent.
            # Estimation runs through the factored contraction backend.
            self._priors = kernel_prior(
                table, self.b, kernel=self.kernel, max_cells=self.max_cells
            )
        self._sensitive_codes = table.sensitive_codes()
        self._domain_size = table.sensitive_domain().size
        self._risk_cache.clear()
        if self.measure is None:
            matrix = attribute_distance_matrix(table.sensitive_domain())
            self.measure = SmoothedJSDivergence(
                distance_matrix=matrix, bandwidth=self.smoothing_bandwidth, kernel=self.kernel
            )

    def set_priors(self, priors: PriorBeliefs, sensitive_codes: np.ndarray, domain_size: int) -> None:
        """Inject precomputed priors (used to share one estimation across models)."""
        self._priors = priors
        self._sensitive_codes = np.asarray(sensitive_codes, dtype=np.int64)
        self._domain_size = int(domain_size)
        self._risk_cache.clear()

    def update_priors(
        self,
        priors: PriorBeliefs,
        sensitive_codes: np.ndarray,
        domain_size: int,
        *,
        previous_of: np.ndarray | None = None,
    ) -> np.ndarray:
        """Replace the priors of a changed table, keeping still-valid risk memos.

        This is the streaming entry point.  Without ``previous_of`` the table
        *grew*: the new ``priors`` cover the previous rows (same order) plus
        any appended rows.  With ``previous_of`` - an int array mapping every
        new row to its position in the previously prepared table (``-1`` for
        rows with no counterpart) - the table shrank or was corrected in
        place, and risk memos are *remapped* into the new index space (a memo
        survives when every member row survives clean).  Either way, instead
        of dropping the whole memo - as :meth:`set_priors` does - only
        entries containing a changed row are invalidated, so re-checking
        untouched groups stays a memo hit.

        Returns a boolean mask over the *new* table: ``True`` for rows with
        no previous counterpart and for rows whose prior distribution or
        sensitive code changed (the "dirty" rows whose group risks may
        differ).  Without previous priors this degrades to
        :meth:`set_priors` and every row is dirty.
        """
        new_codes = np.asarray(sensitive_codes, dtype=np.int64)
        n_new = priors.matrix.shape[0]
        if previous_of is not None:
            return self._update_priors_remapped(
                priors, new_codes, domain_size, np.asarray(previous_of, dtype=np.int64)
            )
        if (
            self._priors is None
            or self._priors.n_rows > n_new
            or self._sensitive_codes is None
            or self._domain_size != int(domain_size)
            or not np.array_equal(self._sensitive_codes, new_codes[: self._priors.n_rows])
        ):
            self.set_priors(priors, new_codes, domain_size)
            return np.ones(n_new, dtype=bool)
        n_previous = self._priors.n_rows
        dirty = np.ones(n_new, dtype=bool)
        dirty[:n_previous] = (priors.matrix[:n_previous] != self._priors.matrix).any(axis=1)
        self._priors = priors
        self._sensitive_codes = new_codes
        self._domain_size = int(domain_size)
        if dirty.any():
            stale = [
                key
                for key in self._risk_cache
                if dirty[np.frombuffer(key, dtype=np.int64)].any()
            ]
            for key in stale:
                del self._risk_cache[key]
        return dirty

    def _update_priors_remapped(
        self,
        priors: PriorBeliefs,
        new_codes: np.ndarray,
        domain_size: int,
        previous_of: np.ndarray,
    ) -> np.ndarray:
        """The remapped (deletion/correction) arm of :meth:`update_priors`."""
        n_new = priors.matrix.shape[0]
        if (
            self._priors is None
            or self._sensitive_codes is None
            or self._domain_size != int(domain_size)
            or previous_of.shape != (n_new,)
            or (previous_of.size and previous_of.max() >= self._priors.n_rows)
        ):
            self.set_priors(priors, new_codes, domain_size)
            return np.ones(n_new, dtype=bool)
        n_previous = self._priors.n_rows
        dirty = previous_of < 0
        surviving = np.flatnonzero(~dirty)
        survivors_previous = previous_of[surviving]
        dirty[surviving] = (
            priors.matrix[surviving] != self._priors.matrix[survivors_previous]
        ).any(axis=1) | (new_codes[surviving] != self._sensitive_codes[survivors_previous])
        # Remap still-valid memos into the new index space: a memo survives
        # when every member row survives clean (keys stay sorted because the
        # old -> new map is monotone on survivors).  One vectorised pass over
        # the concatenated keys decides survival; only surviving entries pay
        # a per-entry re-encode - and none do when the map is the identity
        # (in-place corrections), where keys cannot change.
        current_of = np.full(n_previous, -1, dtype=np.int64)
        current_of[survivors_previous] = surviving
        if self._risk_cache:
            keys = list(self._risk_cache)
            lengths = np.fromiter(
                (len(key) // 8 for key in keys), dtype=np.int64, count=len(keys)
            )
            old_indices = np.frombuffer(b"".join(keys), dtype=np.int64)
            in_range = (old_indices >= 0) & (old_indices < n_previous)
            new_indices = np.where(
                in_range, current_of[np.where(in_range, old_indices, 0)], -1
            )
            alive = new_indices >= 0
            alive &= ~dirty[np.where(alive, new_indices, 0)]
            offsets = np.zeros(len(keys), dtype=np.int64)
            np.cumsum(lengths[:-1], out=offsets[1:])
            entry_alive = np.minimum.reduceat(alive.astype(np.int8), offsets).astype(bool)
            identity = n_new == n_previous and bool(
                (previous_of == np.arange(n_previous)).all()
            )
            if identity:
                self._risk_cache = {
                    key: self._risk_cache[key]
                    for key, ok in zip(keys, entry_alive)
                    if ok
                }
            else:
                bounds = np.append(offsets, old_indices.size)
                self._risk_cache = {
                    new_indices[bounds[position] : bounds[position + 1]].tobytes():
                        self._risk_cache[key]
                    for position, key in enumerate(keys)
                    if entry_alive[position]
                }
        self._priors = priors
        self._sensitive_codes = new_codes
        self._domain_size = int(domain_size)
        return dirty

    @property
    def has_priors(self) -> bool:
        """Whether priors are already available (estimated or injected)."""
        return self._priors is not None

    @property
    def priors(self) -> PriorBeliefs:
        """The adversary's prior beliefs (available after :meth:`prepare`)."""
        if self._priors is None:
            raise PrivacyModelError("(B,t)-privacy is not prepared; call prepare(table) first")
        return self._priors

    # -- evaluation -------------------------------------------------------------------
    def _require_prepared(self) -> None:
        if self._priors is None or self._sensitive_codes is None or self._domain_size is None:
            raise PrivacyModelError("(B,t)-privacy is not prepared; call prepare(table) first")
        if self.measure is None:
            raise PrivacyModelError("(B,t)-privacy has no distance measure configured")

    def group_risks(self, groups: Sequence[np.ndarray]) -> np.ndarray:
        """Maximum prior-to-posterior distance of every candidate group, batched.

        All uncached groups go through one flat posterior pass (the batched
        Omega kernel) and one vectorised measure evaluation, so checking a
        Mondrian split's two halves - or one group against every skyline
        point - costs a single call.  Groups may overlap (candidate splits are
        alternatives, not a partition).
        """
        self._require_prepared()
        arrays = [np.asarray(group, dtype=np.int64) for group in groups]
        risks = np.empty(len(arrays), dtype=np.float64)
        pending: list[tuple[int, np.ndarray, bytes]] = []
        for position, indices in enumerate(arrays):
            if indices.size == 0:
                raise PrivacyModelError("a group must contain at least one tuple")
            key = indices.tobytes()
            cached = self._risk_cache.get(key)
            if cached is not None:
                self.risk_cache_hits += 1
                risks[position] = cached
            else:
                pending.append((position, indices, key))
        if not pending:
            return risks
        self.risk_evaluations += len(pending)
        members = np.concatenate([indices for _, indices, _ in pending])
        offsets = np.cumsum([0] + [indices.size for _, indices, _ in pending[:-1]], dtype=np.int64)
        prior_rows = self._priors.matrix[members]
        code_rows = self._sensitive_codes[members]
        posterior_rows = grouped_posterior(prior_rows, code_rows, offsets, method=self.inference)
        distances = self.measure.rowwise(prior_rows, posterior_rows)
        group_max = np.maximum.reduceat(distances, offsets)
        if len(self._risk_cache) + len(pending) > self._risk_cache_limit:
            self._risk_cache.clear()
        for (position, _, key), value in zip(pending, group_max):
            risk = float(value)
            self._risk_cache[key] = risk
            risks[position] = risk
        return risks

    def group_risk(self, group_indices: np.ndarray) -> float:
        """Maximum prior-to-posterior distance over the tuples of one group."""
        return float(self.group_risks([group_indices])[0])

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        return self.group_risk(group_indices) <= self.t + 1e-12

    def is_satisfied_batch(self, groups: Sequence[np.ndarray]) -> list[bool]:
        return [bool(risk <= self.t + 1e-12) for risk in self.group_risks(groups)]

    def describe(self) -> str:
        b_text = self.b.describe() if isinstance(self.b, Bandwidth) else f"b={self.b:g}"
        return f"{b_text}, t={self.t:g}"


class SkylineBTPrivacy(PrivacyModel):
    """The skyline (B,t)-privacy principle (Definition 2).

    The data publisher specifies a set of ``(B_i, t_i)`` pairs; a group is
    acceptable only if it satisfies (B_i, t_i)-privacy for every pair.  Because
    the worst-case disclosure risk varies continuously with ``B``
    (Section V-C), a small, well-chosen skyline protects against adversaries of
    every knowledge level.
    """

    name = "skyline-(B,t)-privacy"

    def __init__(self, skyline: list[tuple[float | Bandwidth, float]], **bt_options):
        if not skyline:
            raise PrivacyModelError("a skyline requires at least one (B, t) pair")
        self.points = [BTPrivacy(b, t, **bt_options) for b, t in skyline]

    def prepare(self, table: MicrodataTable) -> None:
        for point in self.points:
            point.prepare(table)

    def components(self):
        for point in self.points:
            yield from point.components()

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        return all(point.is_satisfied(group_indices) for point in self.points)

    def is_satisfied_batch(self, groups: Sequence[np.ndarray]) -> list[bool]:
        verdicts = np.ones(len(groups), dtype=bool)
        for point in self.points:
            # Evaluate the still-alive groups; a group rejected by one point
            # needs no further checks.
            alive = np.flatnonzero(verdicts)
            if alive.size == 0:
                break
            point_verdicts = point.is_satisfied_batch([groups[i] for i in alive])
            verdicts[alive] = point_verdicts
        return verdicts.tolist()

    def group_risk(self, group_indices: np.ndarray) -> float:
        """Maximum risk over all skyline points (normalised by each point's ``t``)."""
        return max(point.group_risk(group_indices) / point.t for point in self.points)

    def describe(self) -> str:
        return "; ".join(point.describe() for point in self.points)


class CompositeModel(PrivacyModel):
    """Conjunction of several privacy requirements (all must hold).

    The paper enforces k-anonymity *together with* each attribute-disclosure
    model; this class expresses that composition.
    """

    name = "composite"

    def __init__(self, models: list[PrivacyModel]):
        if not models:
            raise PrivacyModelError("a composite model requires at least one model")
        self.models = list(models)

    def prepare(self, table: MicrodataTable) -> None:
        for model in self.models:
            model.prepare(table)

    def components(self):
        for model in self.models:
            yield from model.components()

    def is_satisfied(self, group_indices: np.ndarray) -> bool:
        return all(model.is_satisfied(group_indices) for model in self.models)

    def is_satisfied_batch(self, groups: Sequence[np.ndarray]) -> list[bool]:
        verdicts = np.ones(len(groups), dtype=bool)
        for model in self.models:
            alive = np.flatnonzero(verdicts)
            if alive.size == 0:
                break
            verdicts[alive] = model.is_satisfied_batch([groups[i] for i in alive])
        return verdicts.tolist()

    def describe(self) -> str:
        return " AND ".join(f"{model.name}({model.describe()})" for model in self.models)
