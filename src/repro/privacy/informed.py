"""Adversaries with knowledge about specific individuals (Section II-D, type 1/2).

Chen et al.'s taxonomy (discussed in Section II-D of the paper) distinguishes
knowledge about the *target* (negative associations, "Tom does not have
cancer"), knowledge about *others* (positive associations, "Gary has flu"),
and knowledge about *same-value families*.  The paper's kernel framework
represents the first two through the prior-belief function; this module makes
that concrete with an :class:`InformedAdversary` that

* starts from a kernel prior ``Adv(B)``,
* additionally knows the exact sensitive value of a chosen (or randomly
  sampled) set of individuals, and
* performs posterior inference on a release with that extra knowledge:
  within each group, the known tuples' values are removed from the published
  multiset before inferring the remaining tuples (the standard conditioning
  step for instance-level knowledge).

This lets experiments quantify how much *extra* damage instance-level
knowledge adds on top of correlational knowledge - and verify that
(B,t)-privacy degrades gracefully rather than collapsing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import PrivacyModelError
from repro.inference.exact import exact_posterior, group_sensitive_counts
from repro.inference.omega import omega_posterior
from repro.knowledge.prior import kernel_prior
from repro.privacy.measures import DistanceMeasure, sensitive_distance_measure


@dataclass
class InformedAttackResult:
    """Outcome of an informed-adversary attack on one release."""

    known_indices: np.ndarray
    risks: np.ndarray
    vulnerable_tuples: int
    worst_case_risk: float

    @property
    def n_known(self) -> int:
        """How many individuals' sensitive values the adversary knew upfront."""
        return int(self.known_indices.size)


class InformedAdversary:
    """A kernel adversary ``Adv(B)`` who also knows some individuals' sensitive values.

    Parameters
    ----------
    table:
        The original microdata table.
    b:
        Kernel bandwidth of the correlational component of the adversary's
        knowledge (scalar or :class:`~repro.knowledge.bandwidth.Bandwidth`).
    known_indices:
        Indices of the tuples whose sensitive value the adversary knows
        exactly.  Use :meth:`with_random_knowledge` to sample them.
    measure:
        Distance measure for the knowledge gain (defaults to the paper's
        smoothed-JS measure).
    method:
        Posterior inference method for the *unknown* tuples (``"omega"`` or
        ``"exact"``).
    """

    def __init__(
        self,
        table: MicrodataTable,
        b: float,
        known_indices: np.ndarray,
        *,
        measure: DistanceMeasure | None = None,
        method: str = "omega",
    ):
        if method not in {"omega", "exact"}:
            raise PrivacyModelError("method must be 'omega' or 'exact'")
        self.table = table
        self.method = method
        self.measure = measure if measure is not None else sensitive_distance_measure(table)
        self.known_indices = np.unique(np.asarray(known_indices, dtype=np.int64))
        if self.known_indices.size and (
            self.known_indices.min() < 0 or self.known_indices.max() >= table.n_rows
        ):
            raise PrivacyModelError("known tuple index out of range")
        self.priors = kernel_prior(table, b)

    @classmethod
    def with_random_knowledge(
        cls,
        table: MicrodataTable,
        b: float,
        fraction: float,
        *,
        seed: int = 0,
        **options,
    ) -> "InformedAdversary":
        """An adversary who knows a random ``fraction`` of individuals' sensitive values."""
        if not 0.0 <= fraction <= 1.0:
            raise PrivacyModelError("fraction must lie in [0, 1]")
        rng = np.random.default_rng(seed)
        count = int(round(fraction * table.n_rows))
        known = rng.choice(table.n_rows, size=count, replace=False) if count else np.array([], dtype=np.int64)
        return cls(table, b, known, **options)

    # -- inference -------------------------------------------------------------------
    def posterior_for_groups(self, groups: list[np.ndarray]) -> np.ndarray:
        """Posterior beliefs for every tuple, conditioning on the known individuals.

        Known tuples get a point-mass posterior on their true value; within each
        group the known values are removed from the multiset before inferring
        the remaining members.
        """
        prior = self.priors.matrix
        sensitive_codes = self.table.sensitive_codes()
        m = self.table.sensitive_domain().size
        posterior = prior.copy()
        known_mask = np.zeros(self.table.n_rows, dtype=bool)
        known_mask[self.known_indices] = True
        seen = np.zeros(self.table.n_rows, dtype=bool)
        for group in groups:
            indices = np.asarray(group, dtype=np.int64)
            if indices.size == 0:
                continue
            if seen[indices].any():
                raise PrivacyModelError("groups overlap: a tuple appears in more than one group")
            seen[indices] = True
            known_in_group = indices[known_mask[indices]]
            unknown_in_group = indices[~known_mask[indices]]
            for index in known_in_group:
                point_mass = np.zeros(m)
                point_mass[sensitive_codes[index]] = 1.0
                posterior[index] = point_mass
            if unknown_in_group.size == 0:
                continue
            counts = group_sensitive_counts(sensitive_codes[indices], m)
            counts -= np.bincount(sensitive_codes[known_in_group], minlength=m)
            sub_prior = prior[unknown_in_group]
            if self.method == "omega":
                posterior[unknown_in_group] = omega_posterior(sub_prior, counts)
            else:
                posterior[unknown_in_group] = exact_posterior(sub_prior, counts)
        return posterior

    def attack(self, groups: list[np.ndarray], threshold: float) -> InformedAttackResult:
        """Knowledge-gain attack restricted to the individuals the adversary did *not* know.

        Tuples whose value the adversary already knew are excluded from the
        vulnerability count (their "gain" is zero by definition - the release
        taught the adversary nothing new about them).
        """
        if threshold < 0.0:
            raise PrivacyModelError("threshold must be non-negative")
        posterior = self.posterior_for_groups(groups)
        risks = self.measure.rowwise(self.priors.matrix, posterior)
        unknown_mask = np.ones(self.table.n_rows, dtype=bool)
        unknown_mask[self.known_indices] = False
        risks = np.where(unknown_mask, risks, 0.0)
        vulnerable = int((risks > threshold + 1e-12).sum())
        return InformedAttackResult(
            known_indices=self.known_indices,
            risks=risks,
            vulnerable_tuples=vulnerable,
            worst_case_risk=float(risks.max()) if risks.size else 0.0,
        )
