"""Disclosure-risk computation and the probabilistic background-knowledge attack.

These functions implement the quantities reported in the paper's evaluation:

* the per-tuple **knowledge gain** ``D[Ppri(B,q), Ppos(B,q,T*)]`` of an
  adversary ``Adv(B)`` observing the release,
* the **worst-case disclosure risk** (its maximum over all tuples,
  Definition 1 and Figure 3), and
* the number of **vulnerable tuples** whose knowledge gain exceeds a threshold
  ``t`` (Figure 1), i.e. the tuples breached by a probabilistic
  background-knowledge attack.

Everything here works on a *partition* of the table (a list of index arrays),
so it applies equally to generalization and bucketization releases - as the
paper notes, the two are equivalent once the adversary knows who is in the
table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import PrivacyModelError
from repro.inference.omega import posterior_for_groups
from repro.knowledge.prior import PriorBeliefs, kernel_prior
from repro.privacy.measures import DistanceMeasure, sensitive_distance_measure


def tuple_disclosure_risks(
    priors: PriorBeliefs | np.ndarray,
    sensitive_codes: np.ndarray,
    groups: list[np.ndarray],
    measure: DistanceMeasure,
    *,
    method: str = "omega",
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Knowledge gain ``D[prior, posterior]`` for every tuple of a partitioned table.

    Parameters
    ----------
    priors:
        The adversary's prior beliefs (a :class:`PriorBeliefs` or a raw
        ``(n, m)`` matrix).
    sensitive_codes:
        Length-``n`` sensitive value codes of the original table.
    groups:
        The release's groups as arrays of tuple indices.
    measure:
        Distance measure ``D[P, Q]``.
    method:
        Posterior inference method, ``"omega"`` (default) or ``"exact"``.
    chunk_rows:
        Optional row cap per posterior pass (see
        :func:`repro.inference.omega.posterior_for_groups`).
    """
    prior_matrix = priors.matrix if isinstance(priors, PriorBeliefs) else np.asarray(priors)
    posterior_matrix = posterior_for_groups(
        prior_matrix, sensitive_codes, groups, method=method, chunk_rows=chunk_rows
    )
    return measure.rowwise(prior_matrix, posterior_matrix)


def max_risk(risks: np.ndarray) -> float:
    """The worst-case risk of a risk vector (``0.0`` for an empty one)."""
    risks = np.asarray(risks)
    return float(risks.max()) if risks.size else 0.0


def attack_result(
    priors: PriorBeliefs | np.ndarray,
    sensitive_codes: np.ndarray,
    groups: list[np.ndarray],
    measure: DistanceMeasure,
    *,
    adversary_b: float,
    threshold: float,
    method: str = "omega",
    chunk_rows: int | None = None,
) -> "AttackResult":
    """One risks computation shared by every audit entry point.

    :func:`worst_case_disclosure_risk`, :meth:`BackgroundKnowledgeAttack.attack`
    and the skyline audit engine all route through here, so their reported
    risks are byte-for-byte the same computation.
    """
    risks = tuple_disclosure_risks(
        priors, sensitive_codes, groups, measure, method=method, chunk_rows=chunk_rows
    )
    return AttackResult(
        adversary_b=float(adversary_b),
        threshold=float(threshold),
        risks=risks,
        vulnerable_tuples=count_vulnerable_tuples(risks, threshold),
        worst_case_risk=max_risk(risks),
    )


def worst_case_disclosure_risk(
    priors: PriorBeliefs | np.ndarray,
    sensitive_codes: np.ndarray,
    groups: list[np.ndarray],
    measure: DistanceMeasure,
    *,
    method: str = "omega",
) -> float:
    """``max_q D[Ppri(B,q), Ppos(B,q,T*)]`` - the quantity bounded by (B,t)-privacy."""
    result = attack_result(
        priors, sensitive_codes, groups, measure,
        adversary_b=float("nan"), threshold=0.0, method=method,
    )
    return result.worst_case_risk


def count_vulnerable_tuples(risks: np.ndarray, threshold: float) -> int:
    """Number of tuples whose knowledge gain exceeds ``threshold`` (Figure 1)."""
    if threshold < 0.0:
        raise PrivacyModelError("threshold must be non-negative")
    return int((np.asarray(risks) > threshold + 1e-12).sum())


@dataclass
class AttackResult:
    """Outcome of a probabilistic background-knowledge attack on one release."""

    adversary_b: float
    threshold: float
    risks: np.ndarray
    vulnerable_tuples: int
    worst_case_risk: float

    def vulnerability_rate(self) -> float:
        """Fraction of tuples breached by the attack (0.0 for an empty result)."""
        if self.risks.size == 0:
            return 0.0
        return self.vulnerable_tuples / self.risks.size


class BackgroundKnowledgeAttack:
    """A parameterised adversary ``Adv(B')`` attacking anonymized releases (Section V-A).

    The attack estimates the adversary's prior with the kernel method, computes
    posterior beliefs over the released groups, and reports every tuple whose
    knowledge gain exceeds the privacy threshold as *vulnerable*.

    Parameters
    ----------
    table:
        The original microdata table (the attack assumes, as the paper does,
        that the adversary knows who is in the table and their QI values).
    b_prime:
        The adversary's bandwidth ``b'`` (scalar, applied to all QI attributes).
    measure:
        Distance measure; defaults to the paper's smoothed-JS measure.
    kernel:
        Kernel for the prior estimation.
    method:
        Posterior inference method, ``"omega"`` or ``"exact"``.
    priors:
        Optional precomputed prior beliefs for ``Adv(b')`` on ``table``.  When
        given, the (expensive) kernel estimation is skipped - this is how
        :class:`repro.api.session.Session` shares one estimation between
        anonymization and auditing.
    """

    def __init__(
        self,
        table: MicrodataTable,
        b_prime: float,
        *,
        measure: DistanceMeasure | None = None,
        kernel: str = "epanechnikov",
        method: str = "omega",
        priors: PriorBeliefs | None = None,
    ):
        self.table = table
        self.b_prime = float(b_prime)
        self.kernel = kernel
        self.method = method
        self.measure = measure if measure is not None else sensitive_distance_measure(table)
        self.priors = priors if priors is not None else kernel_prior(table, self.b_prime, kernel=kernel)

    def attack(self, groups: list[np.ndarray], threshold: float) -> AttackResult:
        """Attack a release given as a list of group index arrays."""
        return attack_result(
            self.priors,
            self.table.sensitive_codes(),
            groups,
            self.measure,
            adversary_b=self.b_prime,
            threshold=threshold,
            method=self.method,
        )
