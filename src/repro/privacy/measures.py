"""Distance measures between probability distributions (Section IV-B).

The distance ``D[P, Q]`` between the adversary's prior ``P`` and posterior
``Q`` quantifies how much sensitive information the release discloses.  The
paper lists five desiderata - identity of indiscernibles, non-negativity,
probability scaling, zero-probability definability and semantic awareness -
and shows that the classical measures each miss at least one:

================  ========  =============  ========  ================
measure            scaling   zero-prob ok   semantic   provided here as
================  ========  =============  ========  ================
KL divergence      yes       no             no        :func:`kl_divergence`
JS divergence      yes       yes            no        :func:`js_divergence`
EMD                no        yes            yes       :func:`emd_distance`
paper's measure    yes       yes            yes       :func:`smoothed_js_divergence`
================  ========  =============  ========  ================

The paper's measure kernel-smooths both distributions over the sensitive
domain (using the Section II-C distance matrix and an Epanechnikov kernel)
and then applies JS divergence.  The callable classes at the bottom wrap these
functions so privacy models can treat the measure as a configuration value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PrivacyModelError
from repro.knowledge.kernels import get_kernel

_LOG2 = np.log(2.0)


def _validate_distribution(p: np.ndarray, name: str) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1:
        raise PrivacyModelError(f"{name} must be a 1-D probability vector")
    if np.any(p < -1e-12):
        raise PrivacyModelError(f"{name} has negative entries")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise PrivacyModelError(f"{name} must sum to 1 (got {total:.6f})")
    return np.clip(p, 0.0, None)


def _validate_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = _validate_distribution(p, "P")
    q = _validate_distribution(q, "Q")
    if p.shape != q.shape:
        raise PrivacyModelError(f"P and Q have different lengths ({p.size} vs {q.size})")
    return p, q


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback-Leibler divergence ``sum_i p_i log(p_i / q_i)`` in bits.

    Returns ``inf`` when some ``p_i > 0`` has ``q_i = 0`` - the measure is
    undefined there, which is exactly the zero-probability-definability
    failure the paper points out.
    """
    p, q = _validate_pair(p, q)
    mask = p > 0.0
    if np.any(q[mask] == 0.0):
        return float("inf")
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])) / _LOG2)


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence (in bits, bounded by 1), Equation 6.

    Always finite: the mixture ``(P + Q)/2`` is positive wherever ``P`` or ``Q``
    is (entries that underflow to zero contribute nothing).
    """
    p, q = _validate_pair(p, q)
    return float(_rowwise_js(p[None, :], q[None, :])[0])


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance (EMD under the discrete ground metric)."""
    p, q = _validate_pair(p, q)
    return float(0.5 * np.abs(p - q).sum())


def emd_distance(
    p: np.ndarray,
    q: np.ndarray,
    ground_distance: np.ndarray | None = None,
) -> float:
    """Earth Mover's Distance between two distributions on the same domain.

    Parameters
    ----------
    p, q:
        Probability vectors over the same ``m`` values.
    ground_distance:
        Optional ``m x m`` matrix of ground distances.  When omitted, values
        are treated as equally spaced on a line (``|i - j| / (m - 1)``), which
        is the "ordered domain" EMD used by t-closeness for numeric
        attributes and reduces to a cumulative-sum formula.

    Notes
    -----
    With an explicit ground-distance matrix the transport problem is solved
    with :func:`scipy.optimize.linprog`; the sensitive domains in this library
    are small (tens of values) so this is fast.
    """
    p, q = _validate_pair(p, q)
    m = p.size
    if ground_distance is None:
        if m == 1:
            return 0.0
        cumulative_gap = np.cumsum(p - q)[:-1]
        return float(np.abs(cumulative_gap).sum() / (m - 1))
    ground = np.asarray(ground_distance, dtype=np.float64)
    if ground.shape != (m, m):
        raise PrivacyModelError(
            f"ground distance matrix has shape {ground.shape}, expected {(m, m)}"
        )
    return _emd_linear_program(p, q, ground)


def _emd_linear_program(p: np.ndarray, q: np.ndarray, ground: np.ndarray) -> float:
    from scipy.optimize import linprog

    m = p.size
    # Variables f_ij >= 0, minimise sum f_ij * d_ij subject to row sums = p, column sums = q.
    cost = ground.reshape(-1)
    row_constraints = np.zeros((m, m * m))
    column_constraints = np.zeros((m, m * m))
    for i in range(m):
        row_constraints[i, i * m : (i + 1) * m] = 1.0
        column_constraints[i, i::m] = 1.0
    equality_matrix = np.vstack([row_constraints, column_constraints])
    equality_rhs = np.concatenate([p, q])
    result = linprog(cost, A_eq=equality_matrix, b_eq=equality_rhs, bounds=(0.0, None), method="highs")
    if not result.success:
        raise PrivacyModelError(f"EMD linear program failed: {result.message}")
    return float(result.fun)


def smooth_distribution(
    p: np.ndarray,
    distance_matrix: np.ndarray,
    *,
    bandwidth: float = 0.5,
    kernel: str = "epanechnikov",
) -> np.ndarray:
    """Kernel-smooth a distribution over its domain (Section IV-B.2).

    Each probability is replaced by the Nadaraya-Watson weighted average of
    the probabilities of semantically close values:
    ``p_hat_i = sum_j p_j K(d_ij) / sum_j K(d_ij)``.
    """
    p = _validate_distribution(p, "P")
    distance_matrix = np.asarray(distance_matrix, dtype=np.float64)
    m = p.size
    if distance_matrix.shape != (m, m):
        raise PrivacyModelError(
            f"distance matrix has shape {distance_matrix.shape}, expected {(m, m)}"
        )
    if bandwidth <= 0.0:
        raise PrivacyModelError("smoothing bandwidth must be positive")
    weights = get_kernel(kernel)(distance_matrix, bandwidth)
    denominators = weights.sum(axis=1)
    if np.any(denominators <= 0.0):
        raise PrivacyModelError(
            "smoothing kernel gives zero total weight for some value; increase the bandwidth"
        )
    smoothed = (weights @ p) / denominators
    return smoothed / smoothed.sum()


def smoothed_js_divergence(
    p: np.ndarray,
    q: np.ndarray,
    distance_matrix: np.ndarray,
    *,
    bandwidth: float = 0.5,
    kernel: str = "epanechnikov",
) -> float:
    """The paper's distance measure: kernel smoothing followed by JS divergence.

    Satisfies all five desiderata of Section IV-B.1: it inherits identity,
    non-negativity, probability scaling and zero-probability definability from
    JS divergence, and the smoothing step injects semantic awareness through
    the sensitive-attribute distance matrix.
    """
    p_smooth = smooth_distribution(p, distance_matrix, bandwidth=bandwidth, kernel=kernel)
    q_smooth = smooth_distribution(q, distance_matrix, bandwidth=bandwidth, kernel=kernel)
    return js_divergence(p_smooth, q_smooth)


# ---------------------------------------------------------------------------
# Callable measure objects, so privacy models can carry a measure as a value.
# ---------------------------------------------------------------------------


class DistanceMeasure:
    """Base class for prior/posterior distance measures ``D[P, Q]``."""

    name = "abstract"

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def rowwise(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Distances between corresponding rows of two ``(n, m)`` matrices.

        The default implementation loops over rows; measures with a cheap
        vectorised form (JS, smoothed JS) override it, which is what keeps the
        (B,t)-privacy check affordable inside Mondrian.
        """
        p = np.atleast_2d(np.asarray(p, dtype=np.float64))
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        if p.shape != q.shape:
            raise PrivacyModelError("rowwise distance requires matrices of identical shape")
        return np.asarray([self(p[row], q[row]) for row in range(p.shape[0])])

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _rowwise_js(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Vectorised Jensen-Shannon divergence between corresponding rows (in bits)."""
    p = np.clip(np.atleast_2d(np.asarray(p, dtype=np.float64)), 0.0, None)
    q = np.clip(np.atleast_2d(np.asarray(q, dtype=np.float64)), 0.0, None)
    if p.shape != q.shape:
        raise PrivacyModelError("rowwise distance requires matrices of identical shape")
    average = 0.5 * (p + q)
    with np.errstate(divide="ignore", invalid="ignore"):
        # The (average > 0) guard only matters when subnormal probabilities
        # underflow; mathematically average >= p/2 > 0 whenever p > 0.
        term_p = np.where((p > 0.0) & (average > 0.0), p * np.log(p / average), 0.0)
        term_q = np.where((q > 0.0) & (average > 0.0), q * np.log(q / average), 0.0)
    return (0.5 * term_p.sum(axis=1) + 0.5 * term_q.sum(axis=1)) / _LOG2


class KLDivergence(DistanceMeasure):
    """Kullback-Leibler divergence (fails zero-probability definability)."""

    name = "kl"

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        return kl_divergence(p, q)


class JSDivergence(DistanceMeasure):
    """Jensen-Shannon divergence (no semantic awareness)."""

    name = "js"

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        return js_divergence(p, q)

    def rowwise(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        return _rowwise_js(p, q)


@dataclass
class EMDDistance(DistanceMeasure):
    """Earth Mover's Distance with an optional ground-distance matrix."""

    ground_distance: np.ndarray | None = None
    name = "emd"

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        return emd_distance(p, q, self.ground_distance)


class HierarchicalEMD(DistanceMeasure):
    """Closed-form EMD for the taxonomy ground distance of Section II-C.

    The hierarchy distance ``d(x, y) = h(lca(x, y)) / H`` is a tree metric, so
    the optimal transport cost has the classical closed form

    ``EMD = sum over tree edges  w(e) * | net probability mass below e |``

    where the edge between a node and its parent carries weight
    ``(level(parent) - level(node)) / 2`` with ``level = node_height / H``.
    This is the hierarchical EMD used by the t-closeness paper and is O(number
    of tree nodes) per evaluation - the reason t-closeness checks stay cheap
    inside Mondrian.
    """

    name = "hierarchical-emd"

    def __init__(self, taxonomy, leaf_order: list[str]):
        self._taxonomy = taxonomy
        missing = [leaf for leaf in leaf_order if leaf not in taxonomy]
        if missing:
            raise PrivacyModelError(f"values {missing} are not part of the taxonomy")
        height = taxonomy.height
        masks: list[np.ndarray] = []
        weights: list[float] = []
        leaf_index = {leaf: position for position, leaf in enumerate(leaf_order)}
        stack = [taxonomy.root]
        while stack:
            label = stack.pop()
            for child in taxonomy.children(label):
                stack.append(child)
                parent_level = taxonomy.node_height(label) / height
                child_level = taxonomy.node_height(child) / height
                weight = (parent_level - child_level) / 2.0
                mask = np.zeros(len(leaf_order), dtype=np.float64)
                for leaf in taxonomy.leaves_under(child):
                    if leaf in leaf_index:
                        mask[leaf_index[leaf]] = 1.0
                masks.append(mask)
                weights.append(weight)
        self._masks = np.asarray(masks)
        self._weights = np.asarray(weights)

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        p, q = _validate_pair(p, q)
        if p.size != self._masks.shape[1]:
            raise PrivacyModelError(
                f"distribution has {p.size} values but the hierarchy covers {self._masks.shape[1]}"
            )
        flows = self._masks @ (p - q)
        return float((self._weights * np.abs(flows)).sum())

    def rowwise(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        p = np.atleast_2d(np.asarray(p, dtype=np.float64))
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        if p.shape != q.shape:
            raise PrivacyModelError("rowwise distance requires matrices of identical shape")
        flows = (p - q) @ self._masks.T
        return np.abs(flows) @ self._weights


@dataclass
class SmoothedJSDivergence(DistanceMeasure):
    """The paper's measure: kernel smoothing over the sensitive domain, then JS."""

    distance_matrix: np.ndarray
    bandwidth: float = 0.5
    kernel: str = "epanechnikov"
    name = "smoothed-js"

    def _smoothing_weights(self) -> np.ndarray:
        weights = get_kernel(self.kernel)(np.asarray(self.distance_matrix, dtype=np.float64), self.bandwidth)
        denominators = weights.sum(axis=1, keepdims=True)
        if np.any(denominators <= 0.0):
            raise PrivacyModelError(
                "smoothing kernel gives zero total weight for some value; increase the bandwidth"
            )
        return weights / denominators

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        return smoothed_js_divergence(
            p, q, self.distance_matrix, bandwidth=self.bandwidth, kernel=self.kernel
        )

    def rowwise(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        weights = self._smoothing_weights()
        p_smooth = np.atleast_2d(np.asarray(p, dtype=np.float64)) @ weights.T
        q_smooth = np.atleast_2d(np.asarray(q, dtype=np.float64)) @ weights.T
        p_smooth /= p_smooth.sum(axis=1, keepdims=True)
        q_smooth /= q_smooth.sum(axis=1, keepdims=True)
        return _rowwise_js(p_smooth, q_smooth)


def sensitive_distance_measure(table, *, bandwidth: float = 0.5, kernel: str = "epanechnikov"):
    """The paper's default measure for ``table``'s sensitive attribute.

    Builds the Section II-C distance matrix for the sensitive domain (taxonomy
    distance when a hierarchy is attached) and wraps it in
    :class:`SmoothedJSDivergence` with the bandwidth the paper recommends
    (at least 0.5 for the height-2 Occupation hierarchy, as the paper prescribes).

    Note: with a height-2 hierarchy the sibling distance is exactly 0.5 and the
    Epanechnikov kernel has *open* support, so at the default bandwidth the
    smoothing is inactive and the measure coincides with plain JS divergence -
    pass ``bandwidth > 0.5`` to let semantically close sensitive values share
    probability mass (see the distance-measure ablation benchmark).
    """
    from repro.data.distance import attribute_distance_matrix

    matrix = attribute_distance_matrix(table.sensitive_domain())
    return SmoothedJSDivergence(distance_matrix=matrix, bandwidth=bandwidth, kernel=kernel)
