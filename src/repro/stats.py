"""Shared counting primitives: named counters and latency histograms.

Two consumers need the same bookkeeping: :class:`~repro.api.session.Session`
counts cache hits and estimations (``session.stats``), and the serving daemon
(:mod:`repro.serve`) counts requests, mutations and publish latencies per
stream.  Instead of each growing its own ad-hoc dict, both build on the two
classes here:

* :class:`CounterSet` - a *fixed* set of named integer counters with
  attribute access (``stats.prior_estimations += 1``) and a JSON-able
  :meth:`~CounterSet.as_dict`.  The set is fixed at construction so a typo'd
  counter name fails loudly instead of silently creating a new counter.
* :class:`Histogram` - a streaming latency histogram: exact count / total /
  min / max plus a bounded reservoir of the most recent samples for
  percentile estimates (p50/p95/p99 in :meth:`~Histogram.summary`).

Both are safe to *read* from any thread; cross-thread writers should use
:meth:`CounterSet.increment` / :meth:`Histogram.observe`, which take the
internal lock (the plain ``+=`` attribute form is for single-threaded owners
such as a session).
"""

from __future__ import annotations

import threading
from typing import Any, Iterable


class CounterSet:
    """A fixed set of named integer counters with attribute access.

    ``CounterSet(("hits", "misses"))`` exposes ``counters.hits`` /
    ``counters.misses`` starting at 0; assignment and ``+=`` work through
    plain attribute syntax, and unknown names raise :class:`AttributeError`
    on read *and* write (the set of counters is part of the type's contract,
    not something call sites may grow implicitly).
    """

    def __init__(self, names: Iterable[str]):
        object.__setattr__(self, "_lock", threading.Lock())
        object.__setattr__(self, "_counters", {str(name): 0 for name in names})

    def __getattr__(self, name: str) -> int:
        # Only reached when normal attribute lookup fails, i.e. for counters.
        counters = object.__getattribute__(self, "_counters")
        try:
            return counters[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__} has no counter {name!r}"
            ) from None

    def __setattr__(self, name: str, value: int) -> None:
        counters = object.__getattribute__(self, "_counters")
        if name not in counters:
            raise AttributeError(
                f"{type(self).__name__} has no counter {name!r}; "
                "the counter set is fixed at construction"
            )
        counters[name] = int(value)

    def increment(self, name: str, by: int = 1) -> int:
        """Atomically add ``by`` to counter ``name`` (for cross-thread writers)."""
        counters = object.__getattribute__(self, "_counters")
        if name not in counters:
            raise AttributeError(f"{type(self).__name__} has no counter {name!r}")
        with object.__getattribute__(self, "_lock"):
            counters[name] += int(by)
            return counters[name]

    def as_dict(self) -> dict[str, int]:
        """Plain dictionary of all counters."""
        return dict(object.__getattribute__(self, "_counters"))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({body})"


class Histogram:
    """A streaming histogram of non-negative samples (latencies, sizes).

    Tracks the exact count, total, minimum and maximum, plus a bounded ring
    buffer of the most recent ``max_samples`` observations from which
    :meth:`percentile` estimates are drawn - recent-window percentiles are
    what a serving dashboard wants, and the memory stays O(max_samples)
    however long the daemon runs.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self._max_samples = int(max_samples)
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._cursor = 0
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % self._max_samples

    @property
    def count(self) -> int:
        """Number of samples observed (all time, not just the window)."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of every observed sample."""
        return self._total

    @staticmethod
    def _rank(window: list[float], q: float) -> float | None:
        """Nearest-rank percentile of an already-sorted, non-empty window."""
        if not window:
            return None
        # Nearest-rank: ceil(q/100 * n), clamped to [1, n].
        rank = min(len(window), max(1, -(-(q * len(window)) // 100)))
        return window[int(rank) - 1]

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile (0-100) of the recent-sample window.

        Uses the nearest-rank definition; ``None`` before any observation.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("the percentile must lie in [0, 100]")
        with self._lock:
            window = sorted(self._samples)
        return self._rank(window, q)

    def summary(self) -> dict[str, Any]:
        """JSON-able digest: count, mean, min, max and p50/p95/p99.

        Everything is computed from *one* locked snapshot (and one sort of
        the sample window), so count/min/max and the percentiles always
        describe the same moment even while writers keep observing.
        """
        with self._lock:
            count = self._count
            total = self._total
            low = self._min
            high = self._max
            window = sorted(self._samples)
        return {
            "count": count,
            "mean": (total / count) if count else None,
            "min": low,
            "max": high,
            "p50": self._rank(window, 50.0),
            "p95": self._rank(window, 95.0),
            "p99": self._rank(window, 99.0),
        }
