"""repro: a reproduction of "Modeling and Integrating Background Knowledge in
Data Anonymization" (Li, Li & Zhang, ICDE 2009).

The package is organised around the paper's pipeline:

* :mod:`repro.data` - microdata tables, generalization hierarchies, semantic
  distances, and a synthetic Adult-like dataset generator;
* :mod:`repro.knowledge` - kernel-regression estimation of the adversary's
  prior beliefs, parameterised by the bandwidth ``B`` (plus association-rule
  mining baselines);
* :mod:`repro.inference` - exact Bayesian posterior inference and the
  linear-time Omega-estimate;
* :mod:`repro.privacy` - distance measures (including the paper's smoothed-JS
  measure), privacy models (l-diversity, t-closeness, (B,t)-privacy, skyline
  (B,t)-privacy) and the background-knowledge attack;
* :mod:`repro.anonymize` - Mondrian generalization and Anatomy bucketization;
* :mod:`repro.utility` - utility metrics and aggregate-query workloads;
* :mod:`repro.api` - the registry-driven pipeline layer: plugin registries,
  cached :class:`Session` s, the fluent :class:`Pipeline` and parameter sweeps;
* :mod:`repro.experiments` - runners that regenerate every figure of the
  paper's evaluation.

Quickstart - anonymize, audit and report in one fluent run::

    from repro import Pipeline, generate_adult

    table = generate_adult(5000)
    bundle = (
        Pipeline(table)
        .model("bt", b=0.3, t=0.2)   # (B,t)-privacy from the model registry
        .with_k(4)                    # conjoin k-anonymity
        .audit(b_prime=0.3)           # replay the background-knowledge attack
        .run()
    )
    print(bundle.release.n_groups, "groups,",
          bundle.attack.vulnerable_tuples, "vulnerable tuples")

Repeated runs share the expensive kernel prior estimation through a session::

    from repro import Session, expand_grid

    session = Session(table)
    outcome = session.sweep(expand_grid(model=["bt", "distinct-l", "t-closeness"],
                                        b=0.3, t=[0.1, 0.2], l=4, k=4))
    print(outcome.render())
    assert session.stats.prior_estimations == 1   # estimated once, reused everywhere

The classic one-call API is unchanged::

    from repro import BTPrivacy, anonymize

    result = anonymize(table, BTPrivacy(b=0.3, t=0.2), k=4)
"""

from repro.anonymize import (
    AnonymizationResult,
    AnonymizedRelease,
    MondrianAnonymizer,
    anatomy_partition,
    anonymize,
)
from repro.audit import (
    SkylineAdversary,
    SkylineAuditEngine,
    SkylineAuditEntry,
    SkylineAuditReport,
    audit_skyline,
)
from repro.api import (
    ALGORITHMS,
    MEASURES,
    MODELS,
    PRIOR_ESTIMATORS,
    Pipeline,
    ReleaseBundle,
    Session,
    SweepOutcome,
    SweepSpec,
    expand_grid,
    register_algorithm,
    register_measure,
    register_model,
    register_prior_estimator,
)
from repro.data import (
    Attribute,
    AttributeKind,
    AttributeRole,
    MicrodataTable,
    Schema,
    Taxonomy,
    adult_schema,
    generate_adult,
)
from repro.exceptions import (
    AnonymizationError,
    AuditError,
    DataError,
    ExperimentError,
    HierarchyError,
    InferenceError,
    KnowledgeError,
    PrivacyModelError,
    ReproError,
    SchemaError,
    StreamError,
    UtilityError,
)
from repro.inference import exact_posterior, omega_posterior, posterior_for_groups
from repro.knowledge import (
    Bandwidth,
    BatchedKernelPriorEstimator,
    EstimatorConfig,
    FactoredPriorBackend,
    KernelPriorEstimator,
    PriorBeliefs,
    batched_kernel_priors,
    kernel_prior,
    mle_prior,
    overall_prior,
    uniform_prior,
)
from repro.stream import (
    IncrementalPublisher,
    PartitionTree,
    ReleaseStore,
    StreamDelta,
    StreamVersion,
)
from repro.privacy import (
    BTPrivacy,
    BackgroundKnowledgeAttack,
    CompositeModel,
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    ProbabilisticLDiversity,
    SkylineBTPrivacy,
    SmoothedJSDivergence,
    TCloseness,
    sensitive_distance_measure,
    tuple_disclosure_risks,
    worst_case_disclosure_risk,
)
from repro.utility import (
    QueryWorkloadGenerator,
    average_relative_error,
    discernibility_metric,
    global_certainty_penalty,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AnonymizationError",
    "AnonymizationResult",
    "AnonymizedRelease",
    "Attribute",
    "AttributeKind",
    "AttributeRole",
    "AuditError",
    "BTPrivacy",
    "BackgroundKnowledgeAttack",
    "Bandwidth",
    "BatchedKernelPriorEstimator",
    "CompositeModel",
    "DataError",
    "EstimatorConfig",
    "FactoredPriorBackend",
    "MEASURES",
    "MODELS",
    "PRIOR_ESTIMATORS",
    "Pipeline",
    "ReleaseBundle",
    "Session",
    "SweepOutcome",
    "SweepSpec",
    "DistinctLDiversity",
    "EntropyLDiversity",
    "ExperimentError",
    "HierarchyError",
    "IncrementalPublisher",
    "InferenceError",
    "KAnonymity",
    "KernelPriorEstimator",
    "KnowledgeError",
    "MicrodataTable",
    "MondrianAnonymizer",
    "PartitionTree",
    "PriorBeliefs",
    "PrivacyModelError",
    "ProbabilisticLDiversity",
    "QueryWorkloadGenerator",
    "ReleaseStore",
    "ReproError",
    "Schema",
    "SchemaError",
    "SkylineAdversary",
    "SkylineAuditEngine",
    "SkylineAuditEntry",
    "SkylineAuditReport",
    "SkylineBTPrivacy",
    "SmoothedJSDivergence",
    "StreamDelta",
    "StreamError",
    "StreamVersion",
    "TCloseness",
    "Taxonomy",
    "UtilityError",
    "adult_schema",
    "anatomy_partition",
    "anonymize",
    "audit_skyline",
    "batched_kernel_priors",
    "average_relative_error",
    "discernibility_metric",
    "exact_posterior",
    "expand_grid",
    "generate_adult",
    "global_certainty_penalty",
    "kernel_prior",
    "mle_prior",
    "omega_posterior",
    "overall_prior",
    "posterior_for_groups",
    "register_algorithm",
    "register_measure",
    "register_model",
    "register_prior_estimator",
    "sensitive_distance_measure",
    "tuple_disclosure_risks",
    "uniform_prior",
    "worst_case_disclosure_risk",
    "__version__",
]
