"""repro: a reproduction of "Modeling and Integrating Background Knowledge in
Data Anonymization" (Li, Li & Zhang, ICDE 2009).

The package is organised around the paper's pipeline:

* :mod:`repro.data` - microdata tables, generalization hierarchies, semantic
  distances, and a synthetic Adult-like dataset generator;
* :mod:`repro.knowledge` - kernel-regression estimation of the adversary's
  prior beliefs, parameterised by the bandwidth ``B`` (plus association-rule
  mining baselines);
* :mod:`repro.inference` - exact Bayesian posterior inference and the
  linear-time Omega-estimate;
* :mod:`repro.privacy` - distance measures (including the paper's smoothed-JS
  measure), privacy models (l-diversity, t-closeness, (B,t)-privacy, skyline
  (B,t)-privacy) and the background-knowledge attack;
* :mod:`repro.anonymize` - Mondrian generalization and Anatomy bucketization;
* :mod:`repro.utility` - utility metrics and aggregate-query workloads;
* :mod:`repro.experiments` - runners that regenerate every figure of the
  paper's evaluation.

Quickstart::

    from repro import generate_adult, BTPrivacy, anonymize

    table = generate_adult(5000)
    result = anonymize(table, BTPrivacy(b=0.3, t=0.2), k=4)
    print(result.release.n_groups, "groups")
"""

from repro.anonymize import (
    AnonymizationResult,
    AnonymizedRelease,
    MondrianAnonymizer,
    anatomy_partition,
    anonymize,
)
from repro.data import (
    Attribute,
    AttributeKind,
    AttributeRole,
    MicrodataTable,
    Schema,
    Taxonomy,
    adult_schema,
    generate_adult,
)
from repro.exceptions import (
    AnonymizationError,
    DataError,
    ExperimentError,
    HierarchyError,
    InferenceError,
    KnowledgeError,
    PrivacyModelError,
    ReproError,
    SchemaError,
    UtilityError,
)
from repro.inference import exact_posterior, omega_posterior, posterior_for_groups
from repro.knowledge import (
    Bandwidth,
    KernelPriorEstimator,
    PriorBeliefs,
    kernel_prior,
    mle_prior,
    overall_prior,
    uniform_prior,
)
from repro.privacy import (
    BTPrivacy,
    BackgroundKnowledgeAttack,
    CompositeModel,
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    ProbabilisticLDiversity,
    SkylineBTPrivacy,
    SmoothedJSDivergence,
    TCloseness,
    sensitive_distance_measure,
    tuple_disclosure_risks,
    worst_case_disclosure_risk,
)
from repro.utility import (
    QueryWorkloadGenerator,
    average_relative_error,
    discernibility_metric,
    global_certainty_penalty,
)

__version__ = "1.0.0"

__all__ = [
    "AnonymizationError",
    "AnonymizationResult",
    "AnonymizedRelease",
    "Attribute",
    "AttributeKind",
    "AttributeRole",
    "BTPrivacy",
    "BackgroundKnowledgeAttack",
    "Bandwidth",
    "CompositeModel",
    "DataError",
    "DistinctLDiversity",
    "EntropyLDiversity",
    "ExperimentError",
    "HierarchyError",
    "InferenceError",
    "KAnonymity",
    "KernelPriorEstimator",
    "KnowledgeError",
    "MicrodataTable",
    "MondrianAnonymizer",
    "PriorBeliefs",
    "PrivacyModelError",
    "ProbabilisticLDiversity",
    "QueryWorkloadGenerator",
    "ReproError",
    "Schema",
    "SchemaError",
    "SkylineBTPrivacy",
    "SmoothedJSDivergence",
    "TCloseness",
    "Taxonomy",
    "UtilityError",
    "adult_schema",
    "anatomy_partition",
    "anonymize",
    "average_relative_error",
    "discernibility_metric",
    "exact_posterior",
    "generate_adult",
    "global_certainty_penalty",
    "kernel_prior",
    "mle_prior",
    "omega_posterior",
    "overall_prior",
    "posterior_for_groups",
    "sensitive_distance_measure",
    "tuple_disclosure_risks",
    "uniform_prior",
    "worst_case_disclosure_risk",
    "__version__",
]
