"""High-level anonymization API.

:func:`anonymize` is the single entry point most library users need: it takes
a table and a privacy model, dispatches to the requested algorithm through the
:data:`repro.api.registry.ALGORITHMS` registry (Mondrian generalization by
default, Anatomy bucketization as an alternative, plus anything registered
with ``@register_algorithm``) and wraps the result in an
:class:`~repro.anonymize.partition.AnonymizedRelease`.

For composed anonymize -> audit -> report runs with cached preparation, see
the fluent :class:`repro.api.Pipeline`; this function remains the stable,
backward-compatible core it delegates to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.anonymize.partition import AnonymizedRelease
from repro.data.table import MicrodataTable
from repro.privacy.models import CompositeModel, KAnonymity, PrivacyModel


@dataclass
class AnonymizationResult:
    """A release plus timing information (used by the efficiency experiments)."""

    release: AnonymizedRelease
    model_description: str
    prepare_seconds: float
    partition_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time (preparation plus partitioning)."""
        return self.prepare_seconds + self.partition_seconds


def anonymize(
    table: MicrodataTable,
    model: PrivacyModel,
    *,
    algorithm: str = "mondrian",
    k: int | None = None,
    split_strategy: str | None = None,
    anatomy_l: int | None = None,
    **options,
) -> AnonymizationResult:
    """Anonymize ``table`` so every released group satisfies ``model``.

    Parameters
    ----------
    table:
        The microdata table to anonymize.
    model:
        The attribute-disclosure requirement (l-diversity, t-closeness,
        (B,t)-privacy, a composite, ...).
    algorithm:
        Name of a registered anonymization algorithm: ``"mondrian"``
        (generalization, default) or ``"anatomy"`` (bucketization; requires
        ``anatomy_l``).  Algorithms registered through
        :func:`repro.api.register_algorithm` are available here by name.
    k:
        Optional k-anonymity requirement conjoined with ``model`` (the paper
        enforces ``k`` together with each model to prevent identity
        disclosure).
    split_strategy:
        Mondrian split strategy: ``"widest"`` (default; frontier-synchronous
        traversal with the paper's widest-dimension heuristic),
        ``"round_robin"`` (ablation) or ``"dfs"`` (legacy depth-first
        traversal - identical partition, legacy group order).
    anatomy_l:
        Number of distinct sensitive values per Anatomy bucket.
    **options:
        Further options for a registered algorithm.  Unlike the two legacy
        keywords above (which are silently dropped by algorithms that do not
        take them, for backward compatibility), unknown explicit options
        raise an :class:`~repro.exceptions.AnonymizationError`.

    Returns
    -------
    AnonymizationResult
        The release and the wall-clock time spent preparing the model
        (e.g. kernel prior estimation) and partitioning the data.  The paper's
        Figure 4(a) reports the partitioning time only; Figure 4(b) reports
        the preparation (background-knowledge estimation) time.
    """
    # Imported lazily: repro.api imports this module to build pipelines on
    # top of it, so a module-level import would be circular.
    from repro.api import builtins as _builtins  # noqa: F401  (registers algorithms)
    from repro.api.registry import ALGORITHMS
    from repro.exceptions import AnonymizationError

    requirement: PrivacyModel = model
    if k is not None:
        requirement = CompositeModel([KAnonymity(k), model])

    runner = ALGORITHMS.get(algorithm)
    accepted = set(ALGORITHMS.keyword_parameters(algorithm))
    unknown = sorted(set(options) - accepted)
    if unknown:
        raise AnonymizationError(
            f"algorithm {algorithm!r} does not accept option(s) {', '.join(unknown)}"
        )
    # The two legacy keywords are forwarded only when the caller actually set
    # them and the algorithm takes them, so algorithms keep their own defaults.
    legacy = {"split_strategy": split_strategy, "anatomy_l": anatomy_l}
    options.update(
        {
            name: value
            for name, value in legacy.items()
            if value is not None and name in accepted
        }
    )
    # Fail fast on invalid options before the (potentially expensive) model
    # preparation; algorithms opt in by attaching a `validate` callable.
    validator = getattr(runner, "validate", None)
    if validator is not None:
        validator(table, **options)

    start = time.perf_counter()
    requirement.prepare(table)
    prepared = time.perf_counter()
    groups, method = runner(table, requirement, **options)
    finished = time.perf_counter()
    return AnonymizationResult(
        release=AnonymizedRelease(table, groups, method=method),
        model_description=requirement.describe(),
        prepare_seconds=prepared - start,
        partition_seconds=finished - prepared,
    )
