"""High-level anonymization API.

:func:`anonymize` is the single entry point most library users need: it takes
a table and a privacy model, runs the requested algorithm (Mondrian
generalization by default, Anatomy bucketization as an alternative) and wraps
the result in an :class:`~repro.anonymize.partition.AnonymizedRelease`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.anonymize.anatomy import anatomy_partition
from repro.anonymize.mondrian import MondrianAnonymizer
from repro.anonymize.partition import AnonymizedRelease
from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError
from repro.privacy.models import CompositeModel, KAnonymity, PrivacyModel


@dataclass
class AnonymizationResult:
    """A release plus timing information (used by the efficiency experiments)."""

    release: AnonymizedRelease
    model_description: str
    prepare_seconds: float
    partition_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time (preparation plus partitioning)."""
        return self.prepare_seconds + self.partition_seconds


def anonymize(
    table: MicrodataTable,
    model: PrivacyModel,
    *,
    algorithm: str = "mondrian",
    k: int | None = None,
    split_strategy: str = "widest",
    anatomy_l: int | None = None,
) -> AnonymizationResult:
    """Anonymize ``table`` so every released group satisfies ``model``.

    Parameters
    ----------
    table:
        The microdata table to anonymize.
    model:
        The attribute-disclosure requirement (l-diversity, t-closeness,
        (B,t)-privacy, a composite, ...).
    algorithm:
        ``"mondrian"`` (generalization, default) or ``"anatomy"``
        (bucketization; requires ``anatomy_l``).
    k:
        Optional k-anonymity requirement conjoined with ``model`` (the paper
        enforces ``k`` together with each model to prevent identity
        disclosure).
    split_strategy:
        Mondrian dimension-selection heuristic (``"widest"`` or
        ``"round_robin"``).
    anatomy_l:
        Number of distinct sensitive values per Anatomy bucket.

    Returns
    -------
    AnonymizationResult
        The release and the wall-clock time spent preparing the model
        (e.g. kernel prior estimation) and partitioning the data.  The paper's
        Figure 4(a) reports the partitioning time only; Figure 4(b) reports
        the preparation (background-knowledge estimation) time.
    """
    requirement: PrivacyModel = model
    if k is not None:
        requirement = CompositeModel([KAnonymity(k), model])

    if algorithm == "mondrian":
        start = time.perf_counter()
        requirement.prepare(table)
        prepared = time.perf_counter()
        mondrian = MondrianAnonymizer(requirement, split_strategy=split_strategy)
        groups = mondrian.partition(table, prepare=False)
        finished = time.perf_counter()
        release = AnonymizedRelease(table, groups, method=f"mondrian[{requirement.describe()}]")
        return AnonymizationResult(
            release=release,
            model_description=requirement.describe(),
            prepare_seconds=prepared - start,
            partition_seconds=finished - prepared,
        )

    if algorithm == "anatomy":
        if anatomy_l is None:
            raise AnonymizationError("anatomy requires the anatomy_l parameter")
        start = time.perf_counter()
        requirement.prepare(table)
        prepared = time.perf_counter()
        groups = anatomy_partition(table, anatomy_l)
        bad_groups = [g for g in groups if not requirement.is_satisfied(g)]
        finished = time.perf_counter()
        release = AnonymizedRelease(table, groups, method=f"anatomy[l={anatomy_l}]")
        if bad_groups:
            # Anatomy targets l-diversity only; surface (don't hide) any requirement misses.
            release = AnonymizedRelease(
                table, groups, method=f"anatomy[l={anatomy_l}, {len(bad_groups)} groups exceed model]"
            )
        return AnonymizationResult(
            release=release,
            model_description=requirement.describe(),
            prepare_seconds=prepared - start,
            partition_seconds=finished - prepared,
        )

    raise AnonymizationError(f"unknown algorithm {algorithm!r}; use 'mondrian' or 'anatomy'")
