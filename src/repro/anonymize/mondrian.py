"""Mondrian multidimensional partitioning (LeFevre et al., paper ref [24]).

The paper computes all four anonymized tables (distinct l-diversity,
probabilistic l-diversity, t-closeness and (B,t)-privacy) with "variations of
the Mondrian multidimensional algorithm ... using the original dimension
selection and median split heuristics, and check[ing] if the specific privacy
requirement is satisfied".  This module implements exactly that scheme:

1. start from the whole table as one partition;
2. pick a split dimension (widest normalised range by default);
3. split at the median of that dimension;
4. keep the split only if **both** halves satisfy the supplied privacy model
   (the model is an arbitrary :class:`~repro.privacy.models.PrivacyModel`,
   so k-anonymity can be conjoined with any attribute-disclosure model);
5. recurse until no allowable split remains.

Categorical attributes are split on their domain code order (the common
Mondrian relaxation when full hierarchical splits are not required); numeric
attributes are split on raw values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError
from repro.privacy.models import PrivacyModel

_STRATEGIES = ("widest", "round_robin")


@dataclass
class MondrianStatistics:
    """Bookkeeping for one Mondrian run (useful for efficiency experiments)."""

    n_groups: int = 0
    n_split_attempts: int = 0
    n_rejected_splits: int = 0
    max_depth: int = 0


class MondrianAnonymizer:
    """Top-down multidimensional Mondrian with a pluggable privacy requirement.

    Parameters
    ----------
    model:
        Privacy requirement every released group must satisfy.  The model is
        ``prepare``-d on the table at the start of :meth:`partition`.
    split_strategy:
        ``"widest"`` (paper / original Mondrian heuristic: split the dimension
        with the widest normalised range) or ``"round_robin"`` (ablation).
    """

    def __init__(self, model: PrivacyModel, *, split_strategy: str = "widest"):
        if split_strategy not in _STRATEGIES:
            raise AnonymizationError(
                f"unknown split strategy {split_strategy!r}; choose from {_STRATEGIES}"
            )
        self.model = model
        self.split_strategy = split_strategy
        self.statistics = MondrianStatistics()

    # -- public API -------------------------------------------------------------------
    def partition(self, table: MicrodataTable, *, prepare: bool = True) -> list[np.ndarray]:
        """Partition ``table`` into groups satisfying the privacy model.

        Returns the list of group index arrays.  Raises
        :class:`~repro.exceptions.AnonymizationError` if even the whole table
        fails the requirement (no release is possible).
        """
        if prepare:
            self.model.prepare(table)
        self.statistics = MondrianStatistics()
        all_indices = np.arange(table.n_rows, dtype=np.int64)
        if not self.model.is_satisfied(all_indices):
            raise AnonymizationError(
                "the whole table does not satisfy the privacy requirement; no release is possible"
            )
        qi_names = list(table.quasi_identifier_names)
        spans = self._global_spans(table, qi_names)
        groups: list[np.ndarray] = []
        # Iterative depth-first traversal to avoid recursion limits on large tables.
        stack: list[tuple[np.ndarray, int]] = [(all_indices, 0)]
        while stack:
            indices, depth = stack.pop()
            self.statistics.max_depth = max(self.statistics.max_depth, depth)
            split = self._find_split(table, indices, qi_names, spans, depth)
            if split is None:
                groups.append(np.sort(indices))
                self.statistics.n_groups += 1
            else:
                left, right = split
                stack.append((left, depth + 1))
                stack.append((right, depth + 1))
        return groups

    # -- helpers -----------------------------------------------------------------------
    @staticmethod
    def _global_spans(table: MicrodataTable, qi_names: list[str]) -> dict[str, float]:
        spans: dict[str, float] = {}
        for name in qi_names:
            domain = table.domain(name)
            if table.schema[name].is_numeric:
                spans[name] = max(domain.numeric_range, 1e-12)
            else:
                spans[name] = max(float(domain.size - 1), 1e-12)
        return spans

    def _normalised_width(
        self, table: MicrodataTable, indices: np.ndarray, name: str, spans: dict[str, float]
    ) -> float:
        if table.schema[name].is_numeric:
            column = table.column(name)[indices]
            return float(column.max() - column.min()) / spans[name]
        codes = table.codes(name)[indices]
        return float(codes.max() - codes.min()) / spans[name]

    def _ordered_dimensions(
        self,
        table: MicrodataTable,
        indices: np.ndarray,
        qi_names: list[str],
        spans: dict[str, float],
        depth: int,
    ) -> list[str]:
        widths = {
            name: self._normalised_width(table, indices, name, spans) for name in qi_names
        }
        candidates = [name for name in qi_names if widths[name] > 0.0]
        if not candidates:
            return []
        if self.split_strategy == "widest":
            return sorted(candidates, key=lambda name: widths[name], reverse=True)
        offset = depth % len(candidates)
        return candidates[offset:] + candidates[:offset]

    def _find_split(
        self,
        table: MicrodataTable,
        indices: np.ndarray,
        qi_names: list[str],
        spans: dict[str, float],
        depth: int,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        for name in self._ordered_dimensions(table, indices, qi_names, spans, depth):
            halves = self._median_split(table, indices, name)
            if halves is None:
                continue
            left, right = halves
            self.statistics.n_split_attempts += 1
            # One batched call so models with a vectorised posterior kernel
            # ((B,t)-privacy, skylines) evaluate both halves in a single pass.
            if all(self.model.is_satisfied_batch((left, right))):
                return left, right
            self.statistics.n_rejected_splits += 1
        return None

    @staticmethod
    def _median_split(
        table: MicrodataTable, indices: np.ndarray, name: str
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Split ``indices`` at the median of attribute ``name`` (None if impossible)."""
        if table.schema[name].is_numeric:
            values = table.column(name)[indices]
        else:
            values = table.codes(name)[indices].astype(np.float64)
        median = float(np.median(values))
        left_mask = values <= median
        if left_mask.all():
            # Median equals the maximum; split strictly below it instead.
            left_mask = values < median
        if not left_mask.any() or left_mask.all():
            return None
        return indices[left_mask], indices[~left_mask]
