"""Mondrian multidimensional partitioning (LeFevre et al., paper ref [24]).

The paper computes all four anonymized tables (distinct l-diversity,
probabilistic l-diversity, t-closeness and (B,t)-privacy) with "variations of
the Mondrian multidimensional algorithm ... using the original dimension
selection and median split heuristics, and check[ing] if the specific privacy
requirement is satisfied".  This module implements exactly that scheme:

1. start from the whole table as one partition;
2. pick a split dimension (widest normalised range by default);
3. split at the median of that dimension;
4. keep the split only if **both** halves satisfy the supplied privacy model
   (the model is an arbitrary :class:`~repro.privacy.models.PrivacyModel`,
   so k-anonymity can be conjoined with any attribute-disclosure model);
5. recurse until no allowable split remains.

Categorical attributes are split on their domain code order (the common
Mondrian relaxation when full hierarchical splits are not required); numeric
attributes are split on raw values.

The candidate evaluation is vectorised: per node, the normalised widths and
the median cut points of *every* dimension come from one NumPy pass over the
group's value matrix (instead of one pass per attribute).  Two entry points
consume the shared search:

* :meth:`MondrianAnonymizer.partition` - the run used by ``anonymize()``.
  By default it executes **frontier-synchronously** (all candidate splits of
  a round are checked through one ``is_satisfied_batch`` call - one batched
  posterior pass for (B,t) models) and returns the groups in the recorded
  tree's deterministic left-to-right leaf order.  The legacy depth-first
  traversal survives as ``split_strategy="dfs"``; it cuts the *identical
  partition* (both traversals try the same candidate splits per node), only
  the emission order of the groups differs.
* :meth:`MondrianAnonymizer.partition_forest` - the frontier-synchronous run
  over one or more *regions* that records the split decisions as a tree of
  :class:`MondrianNode` / :class:`MondrianLeaf`.  The recorded trees are what
  :mod:`repro.stream` replays to route appended rows and re-split only dirty
  leaves.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError
from repro.privacy.models import PrivacyModel

_STRATEGIES = ("widest", "round_robin", "dfs")


def spilled_value_matrix(source, *, directory: str | None = None) -> np.ndarray:
    """Build the Mondrian value matrix in a temp-file memmap, chunk by chunk.

    The frontier recursion of :meth:`MondrianAnonymizer.partition_forest`
    touches nothing but this ``(n, d)`` matrix and the frontier's row-index
    arrays, so spilling the matrix to disk makes only the frontier's indices
    plus the pages of the actively gathered groups resident.  ``source`` is
    any :class:`~repro.data.source.TableSource`; each chunk is decoded and
    written in place, so at no point is more than one chunk's values in RAM.
    The backing file is unlinked immediately (the mapping keeps the storage
    alive), so the spill disappears with the returned array.

    Values are identical to the resident :func:`_value_matrix` build - the
    decode of a chunk's codes against the shared full-table domains yields
    exactly the observed float64s - so partitions over a spilled matrix match
    the resident recursion exactly (pass it to ``partition(...,
    values=...)``).
    """
    qi_names = list(source.schema.quasi_identifier_names)
    handle, path = tempfile.mkstemp(prefix="mondrian-values-", suffix=".bin", dir=directory)
    os.close(handle)
    values = np.memmap(
        path, dtype=np.float64, mode="w+", shape=(source.n_rows, len(qi_names))
    )
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - e.g. platforms without unlink-while-open
        pass
    cursor = 0
    for chunk in source.iter_chunks():
        stop = cursor + chunk.n_rows
        values[cursor:stop] = MondrianAnonymizer._value_matrix(chunk, qi_names)
        cursor = stop
    if cursor != source.n_rows:
        raise AnonymizationError(
            f"table source yielded {cursor} rows but declared {source.n_rows}"
        )
    return values


@dataclass
class MondrianStatistics:
    """Bookkeeping for one Mondrian run (useful for efficiency experiments)."""

    n_groups: int = 0
    n_split_attempts: int = 0
    n_rejected_splits: int = 0
    max_depth: int = 0


@dataclass(frozen=True)
class MondrianSplit:
    """One accepted cut: ``value <= threshold`` goes left (``<`` when not inclusive).

    Numeric attributes cut on raw values, categorical attributes on domain
    codes - the same convention :meth:`MondrianAnonymizer._median_split` uses,
    so a recorded split can route rows that were not part of the original run.
    """

    attribute: str
    threshold: float
    inclusive: bool = True

    def goes_left(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of ``values`` (raw numeric or codes) routed to the left child."""
        values = np.asarray(values, dtype=np.float64)
        if self.inclusive:
            return values <= self.threshold
        return values < self.threshold


@dataclass
class MondrianLeaf:
    """A leaf of a recorded Mondrian tree: one released group.

    ``searched_size`` records how many rows the group held when the split
    search last declared it unsplittable; the streaming publisher uses it to
    amortise re-searches (a group re-enters the search once it has outgrown
    its last searched size by a configurable factor).
    """

    indices: np.ndarray
    depth: int = 0
    searched_size: int = 0

    @property
    def is_leaf(self) -> bool:
        return True

    def leaves(self) -> Iterator["MondrianLeaf"]:
        yield self


@dataclass
class MondrianNode:
    """An internal node of a recorded Mondrian tree: a split and two subtrees."""

    split: MondrianSplit
    left: "MondrianNode | MondrianLeaf | None" = None
    right: "MondrianNode | MondrianLeaf | None" = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return False

    def leaves(self) -> Iterator[MondrianLeaf]:
        """Leaves in deterministic left-to-right order."""
        yield from self.left.leaves()
        yield from self.right.leaves()


@dataclass
class _Frontier:
    """One unresolved region during a frontier-synchronous run."""

    indices: np.ndarray
    depth: int
    parent: MondrianNode | None  # None while this region is a forest root
    side: str  # "left" / "right" / "root"
    root_slot: int
    dimensions: list[int] = field(default_factory=list)  # candidate columns, in try order
    next_dimension: int = 0
    medians: np.ndarray | None = None
    proposal: tuple[MondrianSplit, np.ndarray, np.ndarray] | None = None


class MondrianAnonymizer:
    """Top-down multidimensional Mondrian with a pluggable privacy requirement.

    Parameters
    ----------
    model:
        Privacy requirement every released group must satisfy.  The model is
        ``prepare``-d on the table at the start of :meth:`partition`.
    split_strategy:
        ``"widest"`` (paper / original Mondrian heuristic: split the dimension
        with the widest normalised range, frontier-synchronous traversal),
        ``"round_robin"`` (rotating dimension choice, ablation) or ``"dfs"``
        (widest dimension ordering with the legacy depth-first traversal -
        identical partition, legacy group emission order).
    """

    def __init__(self, model: PrivacyModel, *, split_strategy: str = "widest"):
        if split_strategy not in _STRATEGIES:
            raise AnonymizationError(
                f"unknown split strategy {split_strategy!r}; choose from {_STRATEGIES}"
            )
        self.model = model
        self.split_strategy = split_strategy
        self.statistics = MondrianStatistics()

    # -- public API -------------------------------------------------------------------
    def partition(
        self,
        table: MicrodataTable,
        *,
        prepare: bool = True,
        values: np.ndarray | None = None,
    ) -> list[np.ndarray]:
        """Partition ``table`` into groups satisfying the privacy model.

        Returns the list of group index arrays.  Raises
        :class:`~repro.exceptions.AnonymizationError` if even the whole table
        fails the requirement (no release is possible).

        The default strategies run frontier-synchronously (every candidate
        split of a round verified through one batched model call) and return
        the groups in a **deterministic, documented order**: the left-to-right
        leaf order of the recorded split tree, i.e. for every accepted cut the
        ``value <= threshold`` half's groups precede the other half's.
        ``split_strategy="dfs"`` opts back into the legacy iterative
        depth-first traversal; both traversals try the same candidate splits
        per node, so the *partition* is identical - only the group emission
        order differs.

        ``values`` optionally supplies a prebuilt value matrix - e.g. a
        :func:`spilled_value_matrix` memmap - instead of building the
        resident one from ``table``; the partition is identical either way.
        """
        if prepare:
            self.model.prepare(table)
        self.statistics = MondrianStatistics()
        all_indices = np.arange(table.n_rows, dtype=np.int64)
        if not self.model.is_satisfied(all_indices):
            raise AnonymizationError(
                "the whole table does not satisfy the privacy requirement; no release is possible"
            )
        if self.split_strategy != "dfs":
            root = self.partition_forest(table, [all_indices], values=values)[0]
            return [leaf.indices for leaf in root.leaves()]
        return self._partition_dfs(table, all_indices, values=values)

    def _partition_dfs(
        self,
        table: MicrodataTable,
        all_indices: np.ndarray,
        values: np.ndarray | None = None,
    ) -> list[np.ndarray]:
        """The legacy iterative depth-first traversal (``split_strategy="dfs"``)."""
        qi_names = list(table.quasi_identifier_names)
        spans = self._span_vector(table, qi_names)
        values = self._checked_values(table, qi_names, values)
        groups: list[np.ndarray] = []
        # Iterative depth-first traversal to avoid recursion limits on large tables.
        stack: list[tuple[np.ndarray, int]] = [(all_indices, 0)]
        while stack:
            indices, depth = stack.pop()
            self.statistics.max_depth = max(self.statistics.max_depth, depth)
            split = self._find_split(values, indices, qi_names, spans, depth)
            if split is None:
                groups.append(np.sort(indices))
                self.statistics.n_groups += 1
            else:
                _, left, right = split
                stack.append((left, depth + 1))
                stack.append((right, depth + 1))
        return groups

    def partition_tree(
        self,
        table: MicrodataTable,
        *,
        prepare: bool = True,
        values: np.ndarray | None = None,
    ) -> MondrianNode | MondrianLeaf:
        """Like :meth:`partition`, but record the split decisions as a tree.

        The leaves of the returned tree (in :meth:`MondrianNode.leaves` order)
        are exactly the groups a :meth:`partition` call would produce - the
        two entry points share the same per-node candidate search - plus the
        routing information (:class:`MondrianSplit`) the streaming publisher
        needs to place appended rows.
        """
        if prepare:
            self.model.prepare(table)
        self.statistics = MondrianStatistics()
        all_indices = np.arange(table.n_rows, dtype=np.int64)
        if not self.model.is_satisfied(all_indices):
            raise AnonymizationError(
                "the whole table does not satisfy the privacy requirement; no release is possible"
            )
        return self.partition_forest(table, [all_indices], values=values)[0]

    def partition_forest(
        self,
        table: MicrodataTable,
        regions: Sequence[np.ndarray],
        *,
        depths: Sequence[int] | None = None,
        values: np.ndarray | None = None,
    ) -> list[MondrianNode | MondrianLeaf]:
        """Recursively split several regions at once, frontier-synchronously.

        Every region is assumed to *already satisfy* the privacy model (the
        caller checks, e.g. the whole-table check of :meth:`partition_tree` or
        the merge-up walk of the streaming publisher).  Per frontier round all
        candidate splits - across every region - are verified through a single
        ``is_satisfied_batch`` call, so models with a batched risk kernel
        evaluate the whole round in one posterior pass.

        ``depths`` gives the tree depth each region starts at (it offsets the
        ``round_robin`` dimension rotation and the depth statistics); it
        defaults to 0 for every region.  Statistics are *accumulated*, not
        reset, so a streaming publisher can total its incremental work.
        ``values`` optionally supplies a prebuilt (e.g. spilled) value
        matrix.
        """
        qi_names = list(table.quasi_identifier_names)
        spans = self._span_vector(table, qi_names)
        values = self._checked_values(table, qi_names, values)
        if depths is None:
            depths = [0] * len(regions)
        if len(depths) != len(regions):
            raise AnonymizationError("depths must align one-to-one with regions")

        roots: list[MondrianNode | MondrianLeaf | None] = [None] * len(regions)
        frontier = [
            _Frontier(
                indices=np.asarray(region, dtype=np.int64),
                depth=int(depth),
                parent=None,
                side="root",
                root_slot=slot,
            )
            for slot, (region, depth) in enumerate(zip(regions, depths))
        ]
        for entry in frontier:
            self._start_entry(entry, values, spans)

        while frontier:
            proposals: list[_Frontier] = []
            for entry in frontier:
                self.statistics.max_depth = max(self.statistics.max_depth, entry.depth)
                if self._propose(entry, values, qi_names):
                    proposals.append(entry)
                else:
                    self._finalise_leaf(entry, roots)
            if not proposals:
                break
            halves: list[np.ndarray] = []
            for entry in proposals:
                halves.extend(entry.proposal[1:])
            verdicts = self.model.is_satisfied_batch(halves)
            self.statistics.n_split_attempts += len(proposals)
            frontier = []
            for position, entry in enumerate(proposals):
                split, left, right = entry.proposal
                entry.proposal = None
                if verdicts[2 * position] and verdicts[2 * position + 1]:
                    node = MondrianNode(split=split, depth=entry.depth)
                    self._attach(entry, node, roots)
                    for side, indices in (("left", left), ("right", right)):
                        child = _Frontier(
                            indices=indices,
                            depth=entry.depth + 1,
                            parent=node,
                            side=side,
                            root_slot=entry.root_slot,
                        )
                        self._start_entry(child, values, spans)
                        frontier.append(child)
                else:
                    self.statistics.n_rejected_splits += 1
                    entry.next_dimension += 1
                    frontier.append(entry)
        return roots

    # -- helpers -----------------------------------------------------------------------
    @staticmethod
    def _value_matrix(table: MicrodataTable, qi_names: list[str]) -> np.ndarray:
        """``(n, d)`` float matrix: raw values (numeric) / domain codes (categorical)."""
        columns = [
            table.column(name)
            if table.schema[name].is_numeric
            else table.codes(name).astype(np.float64)
            for name in qi_names
        ]
        return np.column_stack(columns)

    def _checked_values(
        self,
        table: MicrodataTable,
        qi_names: list[str],
        values: np.ndarray | None,
    ) -> np.ndarray:
        """The value matrix to recurse over: the caller's (shape-checked) or a fresh build."""
        if values is None:
            return self._value_matrix(table, qi_names)
        if values.shape != (table.n_rows, len(qi_names)):
            raise AnonymizationError(
                f"value matrix shape {values.shape} does not match "
                f"({table.n_rows}, {len(qi_names)})"
            )
        return values

    @staticmethod
    def _span_vector(table: MicrodataTable, qi_names: list[str]) -> np.ndarray:
        spans = np.empty(len(qi_names), dtype=np.float64)
        for position, name in enumerate(qi_names):
            domain = table.domain(name)
            if table.schema[name].is_numeric:
                spans[position] = max(domain.numeric_range, 1e-12)
            else:
                spans[position] = max(float(domain.size - 1), 1e-12)
        return spans

    def _ordered_dimensions(
        self, sub: np.ndarray, spans: np.ndarray, depth: int
    ) -> list[int]:
        """Candidate dimension columns in try order (one NumPy pass for all widths)."""
        widths = (sub.max(axis=0) - sub.min(axis=0)) / spans
        candidates = [int(j) for j in np.flatnonzero(widths > 0.0)]
        if not candidates:
            return []
        if self.split_strategy != "round_robin":
            # "widest" and its depth-first twin "dfs" share the dimension order.
            return sorted(candidates, key=lambda j: widths[j], reverse=True)
        offset = depth % len(candidates)
        return candidates[offset:] + candidates[:offset]

    def _start_entry(self, entry: _Frontier, values: np.ndarray, spans: np.ndarray) -> None:
        sub = values[entry.indices]
        entry.dimensions = self._ordered_dimensions(sub, spans, entry.depth)
        entry.medians = np.median(sub, axis=0) if entry.dimensions else None
        entry.next_dimension = 0

    def _propose(self, entry: _Frontier, values: np.ndarray, qi_names: list[str]) -> bool:
        """Advance ``entry`` to its next viable candidate split (False = leaf)."""
        while entry.next_dimension < len(entry.dimensions):
            column = entry.dimensions[entry.next_dimension]
            halves = self._cut(
                values[entry.indices, column], float(entry.medians[column])
            )
            if halves is None:
                entry.next_dimension += 1
                continue
            left_mask, inclusive = halves
            split = MondrianSplit(
                attribute=qi_names[column],
                threshold=float(entry.medians[column]),
                inclusive=inclusive,
            )
            entry.proposal = (
                split,
                entry.indices[left_mask],
                entry.indices[~left_mask],
            )
            return True
        return False

    @staticmethod
    def _cut(column: np.ndarray, median: float) -> tuple[np.ndarray, bool] | None:
        """Left-half mask for a median cut (None when the cut is degenerate)."""
        left_mask = column <= median
        inclusive = True
        if left_mask.all():
            # Median equals the maximum; split strictly below it instead.
            left_mask = column < median
            inclusive = False
        if not left_mask.any() or left_mask.all():
            return None
        return left_mask, inclusive

    def _find_split(
        self,
        values: np.ndarray,
        indices: np.ndarray,
        qi_names: list[str],
        spans: np.ndarray,
        depth: int,
    ) -> tuple[MondrianSplit, np.ndarray, np.ndarray] | None:
        """The best allowable split of one group (vectorised candidate search).

        Widths and medians for *all* candidate dimensions come from one NumPy
        pass over the group's value matrix; candidates are then tried in
        strategy order, each verified with one batched model call.
        """
        sub = values[indices]
        ordered = self._ordered_dimensions(sub, spans, depth)
        if not ordered:
            return None
        medians = np.median(sub, axis=0)
        for column in ordered:
            halves = self._cut(sub[:, column], float(medians[column]))
            if halves is None:
                continue
            left_mask, inclusive = halves
            left, right = indices[left_mask], indices[~left_mask]
            self.statistics.n_split_attempts += 1
            # One batched call so models with a vectorised posterior kernel
            # ((B,t)-privacy, skylines) evaluate both halves in a single pass.
            if all(self.model.is_satisfied_batch((left, right))):
                split = MondrianSplit(
                    attribute=qi_names[column],
                    threshold=float(medians[column]),
                    inclusive=inclusive,
                )
                return split, left, right
            self.statistics.n_rejected_splits += 1
        return None

    def _finalise_leaf(
        self, entry: _Frontier, roots: list[MondrianNode | MondrianLeaf | None]
    ) -> None:
        leaf = MondrianLeaf(
            indices=np.sort(entry.indices),
            depth=entry.depth,
            searched_size=int(entry.indices.size),
        )
        self.statistics.n_groups += 1
        self._attach(entry, leaf, roots)

    @staticmethod
    def _attach(
        entry: _Frontier,
        node: MondrianNode | MondrianLeaf,
        roots: list[MondrianNode | MondrianLeaf | None],
    ) -> None:
        if entry.parent is None:
            roots[entry.root_slot] = node
        elif entry.side == "left":
            entry.parent.left = node
        else:
            entry.parent.right = node
