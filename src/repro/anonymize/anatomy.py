"""Anatomy-style bucketization (Xiao & Tao, paper ref [16]).

Anatomy publishes the quasi-identifier values unchanged and only decouples
them from the sensitive values: tuples are grouped into buckets of (at least)
``l`` tuples with *distinct* sensitive values, so that within each bucket every
tuple is linked to each sensitive value with probability ``1/l`` under the
uniform-assignment assumption.

The algorithm is the standard two-phase one:

1. **bucket creation** - while at least ``l`` sensitive values still have
   unassigned tuples, pop one tuple from each of the ``l`` currently most
   frequent values to form a new bucket;
2. **residue assignment** - each leftover tuple is added to a bucket that does
   not yet contain its sensitive value.

The result is returned as a plain partition (list of index arrays) so it can
be wrapped in :class:`~repro.anonymize.partition.AnonymizedRelease` and fed to
the same inference / attack machinery as Mondrian releases - which is exactly
the equivalence the paper uses when computing posterior beliefs.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError


def anatomy_partition(
    table: MicrodataTable,
    l: int,
    *,
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Partition ``table`` into Anatomy buckets with ``l`` distinct sensitive values each.

    Parameters
    ----------
    table:
        The microdata table to bucketize.
    l:
        Required number of distinct sensitive values per bucket (the
        l-diversity parameter).
    rng:
        Optional random generator controlling the order in which tuples of the
        same sensitive value are drawn (defaults to a fixed-seed generator so
        results are reproducible).

    Raises
    ------
    AnonymizationError
        If the table cannot be bucketized, i.e. the most frequent sensitive
        value covers more than ``1/l`` of the tuples (the eligibility condition
        of the Anatomy paper).
    """
    if l < 1:
        raise AnonymizationError("l must be at least 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    sensitive_codes = table.sensitive_codes()
    m = table.sensitive_domain().size
    counts = np.bincount(sensitive_codes, minlength=m)
    if (counts > 0).sum() < l:
        raise AnonymizationError(
            f"the table has only {(counts > 0).sum()} distinct sensitive values, fewer than l={l}"
        )
    if counts.max() * l > table.n_rows:
        raise AnonymizationError(
            "the most frequent sensitive value is too frequent for Anatomy bucketization "
            f"(eligibility requires max frequency <= n/l = {table.n_rows / l:.1f})"
        )

    # Pools of tuple indices per sensitive value, in random order.
    pools: list[list[int]] = []
    for value in range(m):
        members = np.flatnonzero(sensitive_codes == value)
        if members.size:
            members = members[rng.permutation(members.size)]
        pools.append(members.tolist())

    # Max-heap of (-remaining, value) for bucket creation.
    heap = [(-len(pool), value) for value, pool in enumerate(pools) if pool]
    heapq.heapify(heap)
    buckets: list[list[int]] = []
    while len(heap) >= l:
        selected: list[tuple[int, int]] = [heapq.heappop(heap) for _ in range(l)]
        bucket: list[int] = []
        for negative_count, value in selected:
            bucket.append(pools[value].pop())
            remaining = -negative_count - 1
            if remaining > 0:
                heapq.heappush(heap, (-remaining, value))
        buckets.append(bucket)

    if not buckets:
        raise AnonymizationError("anatomy produced no buckets; the table is too small for l")

    # Residue assignment: leftover tuples go to a bucket not containing their value.
    bucket_values: list[set[int]] = [
        {int(sensitive_codes[index]) for index in bucket} for bucket in buckets
    ]
    for value, pool in enumerate(pools):
        for index in pool:
            placed = False
            for bucket_index in rng.permutation(len(buckets)):
                if value not in bucket_values[bucket_index]:
                    buckets[bucket_index].append(index)
                    bucket_values[bucket_index].add(value)
                    placed = True
                    break
            if not placed:
                # Fall back to the smallest bucket; diversity degrades gracefully.
                smallest = min(range(len(buckets)), key=lambda b: len(buckets[b]))
                buckets[smallest].append(index)
                bucket_values[smallest].add(value)
    return [np.asarray(sorted(bucket), dtype=np.int64) for bucket in buckets]
