"""Partitions, generalized groups, and the anonymized-release container.

The anonymization algorithms in this package (Mondrian generalization and
Anatomy bucketization) both produce a *partition* of the table: a list of
disjoint groups of tuple indices.  :class:`AnonymizedRelease` wraps such a
partition together with the source table and offers the two published views
discussed in Section III-A:

* the **generalized table** ``T*``, where each group's quasi-identifier values
  are replaced by a range (numeric) or a generalized label / value set
  (categorical), and
* the **bucketized** (Anatomy-style) pair of tables, where the QI table keeps
  exact values but the sensitive values of a bucket are published only as a
  multiset.

Both views carry exactly the information the adversary model of the paper
assumes: who is in each group and which multiset of sensitive values the group
holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError


@dataclass(frozen=True)
class GeneralizedValue:
    """The generalized form of one QI attribute within one group.

    For numeric attributes ``low``/``high`` give the value range; for
    categorical attributes ``label`` is the lowest common generalization (when
    a taxonomy exists) and ``values`` the exact set of member values.
    """

    attribute: str
    low: float | None = None
    high: float | None = None
    label: str | None = None
    values: tuple[str, ...] = ()

    def __str__(self) -> str:
        if self.low is not None:
            if self.low == self.high:
                return f"{self.low:g}"
            return f"[{self.low:g},{self.high:g}]"
        if self.label is not None and len(self.values) > 1:
            return self.label
        if len(self.values) == 1:
            return self.values[0]
        return "{" + ",".join(self.values) + "}"


@dataclass(frozen=True)
class GeneralizedGroup:
    """One group of the release: member indices, generalized QI, sensitive multiset."""

    indices: np.ndarray
    generalized: tuple[GeneralizedValue, ...]
    sensitive_values: tuple

    @property
    def size(self) -> int:
        """Number of tuples in the group."""
        return int(self.indices.size)

    def generalized_by_name(self) -> dict[str, GeneralizedValue]:
        """Mapping from QI attribute name to its generalized value."""
        return {value.attribute: value for value in self.generalized}


def generalize_group(table: MicrodataTable, indices: np.ndarray) -> GeneralizedGroup:
    """Compute the generalized representation of one group of ``table``."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        raise AnonymizationError("cannot generalize an empty group")
    generalized: list[GeneralizedValue] = []
    for name in table.quasi_identifier_names:
        attribute = table.schema[name]
        column = table.column(name)[indices]
        if attribute.is_numeric:
            generalized.append(
                GeneralizedValue(
                    attribute=name, low=float(column.min()), high=float(column.max())
                )
            )
        else:
            values = tuple(sorted({str(v) for v in column.tolist()}))
            label = None
            if attribute.taxonomy is not None:
                label = attribute.taxonomy.generalize(values)
            generalized.append(GeneralizedValue(attribute=name, label=label, values=values))
    sensitive = tuple(table.sensitive_values()[indices].tolist())
    return GeneralizedGroup(indices=indices, generalized=tuple(generalized), sensitive_values=sensitive)


class AnonymizedRelease:
    """A released anonymization of a table: a partition plus its generalized views."""

    def __init__(self, table: MicrodataTable, groups: list[np.ndarray], *, method: str = ""):
        self._table = table
        cleaned: list[np.ndarray] = []
        seen = np.zeros(table.n_rows, dtype=bool)
        for group in groups:
            indices = np.asarray(group, dtype=np.int64)
            if indices.size == 0:
                continue
            if indices.min() < 0 or indices.max() >= table.n_rows:
                raise AnonymizationError("group index out of range")
            if seen[indices].any():
                raise AnonymizationError("groups overlap: a tuple appears in more than one group")
            seen[indices] = True
            cleaned.append(np.sort(indices))
        if not cleaned:
            raise AnonymizationError("a release requires at least one non-empty group")
        if not seen.all():
            missing = int((~seen).sum())
            raise AnonymizationError(f"{missing} tuples are not covered by any group")
        self._groups = cleaned
        self._method = method
        self._generalized: list[GeneralizedGroup] | None = None

    # -- basic accessors -----------------------------------------------------------
    @property
    def table(self) -> MicrodataTable:
        """The original microdata table the release was computed from."""
        return self._table

    @property
    def method(self) -> str:
        """Free-form description of the algorithm/model that produced the release."""
        return self._method

    @property
    def groups(self) -> list[np.ndarray]:
        """The partition: disjoint, covering arrays of tuple indices."""
        return self._groups

    @property
    def n_groups(self) -> int:
        """Number of groups in the release."""
        return len(self._groups)

    def group_sizes(self) -> np.ndarray:
        """Sizes of all groups."""
        return np.asarray([group.size for group in self._groups], dtype=np.int64)

    def average_group_size(self) -> float:
        """Average number of tuples per group."""
        return float(self._table.n_rows / self.n_groups)

    def group_of_tuples(self) -> np.ndarray:
        """Length-``n`` vector mapping each tuple index to its group index."""
        assignment = np.full(self._table.n_rows, -1, dtype=np.int64)
        for group_index, indices in enumerate(self._groups):
            assignment[indices] = group_index
        return assignment

    # -- published views -------------------------------------------------------------
    def generalized_groups(self) -> list[GeneralizedGroup]:
        """Generalized representation of every group (computed lazily, cached)."""
        if self._generalized is None:
            self._generalized = [generalize_group(self._table, g) for g in self._groups]
        return self._generalized

    def generalized_rows(self) -> list[dict[str, str]]:
        """The generalized table ``T*`` as one dictionary per tuple (QI generalized)."""
        rows: list[dict[str, str]] = [dict() for _ in range(self._table.n_rows)]
        sensitive_name = self._table.sensitive_name
        for group in self.generalized_groups():
            rendered = {value.attribute: str(value) for value in group.generalized}
            for position, tuple_index in enumerate(group.indices):
                row = dict(rendered)
                row[sensitive_name] = str(group.sensitive_values[position])
                rows[int(tuple_index)] = row
        return rows

    def bucketized_tables(self) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
        """The Anatomy-style (QIT, ST) pair of tables.

        The quasi-identifier table keeps exact QI values plus a ``GroupID``;
        the sensitive table lists, per group, each sensitive value and its
        count within the bucket.
        """
        qit: list[dict[str, object]] = []
        st: list[dict[str, object]] = []
        for group_index, indices in enumerate(self._groups):
            for tuple_index in indices:
                row = {
                    name: self._table.column(name)[tuple_index]
                    for name in self._table.quasi_identifier_names
                }
                row["GroupID"] = group_index
                qit.append(row)
            values, counts = np.unique(
                self._table.sensitive_values()[indices], return_counts=True
            )
            for value, count in zip(values.tolist(), counts.tolist()):
                st.append(
                    {"GroupID": group_index, self._table.sensitive_name: value, "Count": int(count)}
                )
        return qit, st
