"""Anonymization algorithms: Mondrian generalization and Anatomy bucketization."""

from repro.anonymize.anatomy import anatomy_partition
from repro.anonymize.anonymizer import AnonymizationResult, anonymize
from repro.anonymize.mondrian import (
    MondrianAnonymizer,
    MondrianLeaf,
    MondrianNode,
    MondrianSplit,
    MondrianStatistics,
)
from repro.anonymize.partition import (
    AnonymizedRelease,
    GeneralizedGroup,
    GeneralizedValue,
    generalize_group,
)

__all__ = [
    "AnonymizationResult",
    "AnonymizedRelease",
    "GeneralizedGroup",
    "GeneralizedValue",
    "MondrianAnonymizer",
    "MondrianLeaf",
    "MondrianNode",
    "MondrianSplit",
    "MondrianStatistics",
    "anatomy_partition",
    "anonymize",
    "generalize_group",
]
