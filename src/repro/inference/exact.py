"""Exact Bayesian posterior inference for one anonymized group (Section III-C).

Given a group ``E = {t1, ..., tk}`` with sensitive multiset ``S`` and the
adversary's prior ``P(s_i | t_j)``, the exact posterior follows Bayes' rule
over all assignments of the multiset to the tuples (Equation 4).  Directly
evaluating that formula needs the permanent of a ``k x k`` matrix per tuple
and value, so this module implements the equivalent but far cheaper
forward/backward dynamic program over *value-count states*:

* ``forward[j][state]``  = total prior probability of the first ``j`` tuples
  consuming the sub-multiset ``state``;
* ``backward[j][state]`` = total prior probability of tuples ``j..k-1``
  consuming ``state``.

The posterior of tuple ``j`` taking value ``v`` is then proportional to
``P(v | t_j) * sum_state forward[j][state] * backward[j+1][remaining - state - v]``.
The number of states is ``prod_v (count_v + 1)`` which is tiny for the group
sizes (k <= 15) the paper evaluates, and the result is *exactly* the
Equation 4 posterior (the multinomial factors cancel in the normalisation).

A brute-force enumeration over distinct assignments is also provided for
testing on very small groups.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.exceptions import InferenceError


def _validate_group(prior: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prior = np.asarray(prior, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    if prior.ndim != 2:
        raise InferenceError("prior must be a (k, m) matrix")
    if counts.ndim != 1 or counts.shape[0] != prior.shape[1]:
        raise InferenceError("counts must be a length-m vector matching the prior columns")
    if counts.sum() != prior.shape[0]:
        raise InferenceError(
            f"sensitive multiset size {int(counts.sum())} does not match group size {prior.shape[0]}"
        )
    if np.any(counts < 0):
        raise InferenceError("sensitive value counts must be non-negative")
    if np.any(prior < -1e-12):
        raise InferenceError("prior probabilities must be non-negative")
    return prior, counts


def group_sensitive_counts(sensitive_codes: np.ndarray, n_values: int) -> np.ndarray:
    """Multiset counts ``n_i`` of the sensitive values in one group."""
    codes = np.asarray(sensitive_codes, dtype=np.int64)
    if codes.size == 0:
        raise InferenceError("a group must contain at least one tuple")
    if codes.min() < 0 or codes.max() >= n_values:
        raise InferenceError("sensitive code out of range")
    return np.bincount(codes, minlength=n_values).astype(np.int64)


def _state_iterator(capacities: tuple[int, ...]):
    """All count vectors bounded componentwise by ``capacities``."""
    return itertools.product(*(range(c + 1) for c in capacities))


def exact_posterior(prior: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Exact posterior beliefs for one group via the forward/backward count DP.

    Parameters
    ----------
    prior:
        ``(k, m)`` matrix of prior beliefs ``P(s_i | t_j)`` (rows are the
        tuples of the group, columns the full sensitive domain).
    counts:
        Length-``m`` vector with the multiset counts ``n_i`` of the sensitive
        values actually present in the group (summing to ``k``).

    Returns
    -------
    numpy.ndarray
        ``(k, m)`` row-stochastic matrix of posterior beliefs ``P*(s_i | t_j)``.
        Values not present in the group receive posterior probability 0.

    Raises
    ------
    InferenceError
        If the prior assigns zero probability to every feasible assignment
        (the adversary's knowledge is inconsistent with the release).
    """
    prior, counts = _validate_group(prior, counts)
    k, m = prior.shape
    present = np.flatnonzero(counts > 0)
    capacities = tuple(int(counts[v]) for v in present)
    value_count = len(present)
    local_prior = prior[:, present]

    # Forward pass: forward[j] maps consumed-count state -> probability mass.
    forward: list[dict[tuple[int, ...], float]] = [dict() for _ in range(k + 1)]
    forward[0][tuple([0] * value_count)] = 1.0
    for j in range(k):
        current = forward[j]
        following = forward[j + 1]
        row = local_prior[j]
        for state, mass in current.items():
            if mass == 0.0:
                continue
            for v in range(value_count):
                if state[v] < capacities[v] and row[v] > 0.0:
                    new_state = list(state)
                    new_state[v] += 1
                    key = tuple(new_state)
                    following[key] = following.get(key, 0.0) + mass * row[v]

    full_state = capacities
    total_likelihood = forward[k].get(full_state, 0.0)
    if total_likelihood <= 0.0:
        raise InferenceError(
            "the prior assigns zero probability to every assignment consistent with the group"
        )

    # Backward pass: backward[j] maps counts consumed by tuples j..k-1 -> mass.
    backward: list[dict[tuple[int, ...], float]] = [dict() for _ in range(k + 1)]
    backward[k][tuple([0] * value_count)] = 1.0
    for j in range(k - 1, -1, -1):
        following = backward[j + 1]
        current = backward[j]
        row = local_prior[j]
        for state, mass in following.items():
            if mass == 0.0:
                continue
            for v in range(value_count):
                if state[v] < capacities[v] and row[v] > 0.0:
                    new_state = list(state)
                    new_state[v] += 1
                    key = tuple(new_state)
                    current[key] = current.get(key, 0.0) + mass * row[v]

    posterior = np.zeros((k, m), dtype=np.float64)
    for j in range(k):
        row = local_prior[j]
        unnormalised = np.zeros(value_count, dtype=np.float64)
        for v in range(value_count):
            if row[v] <= 0.0:
                continue
            weight = 0.0
            for state, mass in forward[j].items():
                if state[v] >= capacities[v]:
                    continue
                remainder = tuple(
                    capacities[u] - state[u] - (1 if u == v else 0) for u in range(value_count)
                )
                if min(remainder) < 0:
                    continue
                back_mass = backward[j + 1].get(remainder, 0.0)
                if back_mass:
                    weight += mass * back_mass
            unnormalised[v] = row[v] * weight
        total = unnormalised.sum()
        if total <= 0.0:
            raise InferenceError(
                f"tuple {j} has zero posterior mass; the prior is inconsistent with the group"
            )
        posterior[j, present] = unnormalised / total
    return posterior


def exact_posterior_bruteforce(prior: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Exact posterior by enumerating every distinct assignment (testing helper, k <= 8)."""
    prior, counts = _validate_group(prior, counts)
    k, m = prior.shape
    if k > 8:
        raise InferenceError("brute-force enumeration is limited to groups of at most 8 tuples")
    multiset: list[int] = []
    for value, count in enumerate(counts):
        multiset.extend([value] * int(count))
    posterior = np.zeros((k, m), dtype=np.float64)
    total = 0.0
    for assignment in set(itertools.permutations(multiset)):
        probability = 1.0
        for j, value in enumerate(assignment):
            probability *= prior[j, value]
            if probability == 0.0:
                break
        if probability == 0.0:
            continue
        total += probability
        for j, value in enumerate(assignment):
            posterior[j, value] += probability
    if total <= 0.0:
        raise InferenceError(
            "the prior assigns zero probability to every assignment consistent with the group"
        )
    return posterior / total
