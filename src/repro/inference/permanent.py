"""Matrix permanents (Section III-C).

The likelihood ``P(S|E)`` of a group taking its multiset of sensitive values is
the permanent of the ``k x k`` matrix whose ``(i, j)`` entry is the prior
probability ``P(s_i | t_j)`` (with one column per multiset element).  Computing
the permanent is #P-complete; this module provides two reference
implementations used by the exact-inference code and its tests:

* :func:`permanent_ryser` - Ryser's inclusion-exclusion formula, ``O(2^k k)``,
  practical up to ``k`` around 20;
* :func:`permanent_bruteforce` - direct enumeration of permutations, used only
  to validate Ryser on tiny matrices.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.exceptions import InferenceError


def _validate_square(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InferenceError(f"permanent requires a square matrix, got shape {matrix.shape}")
    return matrix


def permanent_bruteforce(matrix: np.ndarray) -> float:
    """Permanent by explicit enumeration of all permutations (use only for k <= 8)."""
    matrix = _validate_square(matrix)
    size = matrix.shape[0]
    if size == 0:
        return 1.0
    total = 0.0
    rows = range(size)
    for permutation in itertools.permutations(rows):
        product = 1.0
        for row, column in zip(rows, permutation):
            product *= matrix[row, column]
            if product == 0.0:
                break
        total += product
    return float(total)


def permanent_ryser(matrix: np.ndarray) -> float:
    """Permanent via Ryser's formula with Gray-code subset enumeration.

    ``per(A) = (-1)^k * sum over non-empty column subsets S of
    (-1)^{|S|} * prod_rows (sum of the row restricted to S)``.
    """
    matrix = _validate_square(matrix)
    size = matrix.shape[0]
    if size == 0:
        return 1.0
    if size > 25:
        raise InferenceError(
            f"permanent_ryser is limited to matrices of size <= 25, got {size}"
        )
    total = 0.0
    row_sums = np.zeros(size, dtype=np.float64)
    previous_gray = 0
    for counter in range(1, 2**size):
        gray = counter ^ (counter >> 1)
        changed_bit = gray ^ previous_gray
        column = changed_bit.bit_length() - 1
        if gray & changed_bit:
            row_sums += matrix[:, column]
        else:
            row_sums -= matrix[:, column]
        previous_gray = gray
        subset_size = bin(gray).count("1")
        sign = -1.0 if (size - subset_size) % 2 else 1.0
        total += sign * float(np.prod(row_sums))
    return float(total)


def permanent(matrix: np.ndarray) -> float:
    """Permanent of a square matrix (Ryser for k > 7, brute force otherwise)."""
    matrix = _validate_square(matrix)
    if matrix.shape[0] <= 7:
        return permanent_bruteforce(matrix)
    return permanent_ryser(matrix)
