"""Posterior-belief inference: exact (permanent / count-DP) and the Omega-estimate."""

from repro.inference.exact import (
    exact_posterior,
    exact_posterior_bruteforce,
    group_sensitive_counts,
)
from repro.inference.omega import grouped_posterior, omega_posterior, posterior_for_groups
from repro.inference.permanent import permanent, permanent_bruteforce, permanent_ryser

__all__ = [
    "exact_posterior",
    "exact_posterior_bruteforce",
    "group_sensitive_counts",
    "grouped_posterior",
    "omega_posterior",
    "permanent",
    "permanent_bruteforce",
    "permanent_ryser",
    "posterior_for_groups",
]
