"""The Omega-estimate: linear-time approximate posterior inference (Section III-D).

The Omega-estimate generalises Lakshmanan et al.'s O-estimate.  It treats the
group as a bipartite graph between tuples and sensitive values and estimates
the probability that tuple ``t_j`` takes value ``s_i`` as

.. math::

    \\Omega(s_i | t_j) \\propto n_i \\cdot
        \\frac{P(s_i | t_j)}{\\sum_{j'} P(s_i | t_{j'})}

normalised over the sensitive values for each tuple (Equation 5).  It is exact
under the random-world assumption and, as the paper's Table III example shows,
only approximate in general; the Figure 2 experiment measures its accuracy.

Unlike exact inference its cost is ``O(k * m)`` per group, which is what makes
the (B,t)-privacy check affordable inside Mondrian.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InferenceError
from repro.inference.exact import _validate_group


def omega_posterior(prior: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Omega-estimate posterior beliefs for one group.

    Parameters
    ----------
    prior:
        ``(k, m)`` matrix of prior beliefs ``P(s_i | t_j)``.
    counts:
        Length-``m`` multiset counts ``n_i`` of the sensitive values in the
        group (summing to ``k``).

    Returns
    -------
    numpy.ndarray
        ``(k, m)`` row-stochastic posterior matrix.  Values absent from the
        group receive probability 0.

    Notes
    -----
    Two degenerate situations are handled conservatively:

    * if every tuple's prior gives probability 0 to a value that *is* present
      in the group, the ``0/0`` share is replaced by a uniform ``1/k`` share
      (somebody must hold the value);
    * if a tuple's prior excludes every value present in the group, its
      posterior falls back to the group's empirical distribution ``n_i / k``.
    """
    prior, counts = _validate_group(prior, counts)
    k, m = prior.shape
    column_sums = prior.sum(axis=0)
    present = counts > 0

    shares = np.zeros((k, m), dtype=np.float64)
    positive_columns = present & (column_sums > 0.0)
    if positive_columns.any():
        shares[:, positive_columns] = prior[:, positive_columns] / column_sums[positive_columns]
    zero_columns = present & (column_sums <= 0.0)
    if zero_columns.any():
        shares[:, zero_columns] = 1.0 / k

    unnormalised = shares * counts[None, :].astype(np.float64)
    row_sums = unnormalised.sum(axis=1)
    posterior = np.zeros_like(unnormalised)
    good = row_sums > 0.0
    posterior[good] = unnormalised[good] / row_sums[good, None]
    if not good.all():
        empirical = counts.astype(np.float64) / counts.sum()
        posterior[~good] = empirical
    return posterior


def _omega_posterior_flat(
    prior_rows: np.ndarray,
    code_rows: np.ndarray,
    offsets: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Omega posteriors for many groups at once (one flat pass, no Python loop).

    ``prior_rows``/``code_rows`` hold the member rows of every group laid out
    contiguously (group ``g`` occupies ``offsets[g] : offsets[g] + sizes[g]``).
    Returns the posterior rows in the same layout.  Exactly reproduces
    :func:`omega_posterior` applied group by group, including both degenerate
    fallbacks.
    """
    n_rows, m = prior_rows.shape
    n_groups = offsets.shape[0]
    group_of = np.repeat(np.arange(n_groups), sizes)

    counts = np.bincount(group_of * m + code_rows, minlength=n_groups * m)
    counts = counts.reshape(n_groups, m).astype(np.float64)
    column_sums = np.add.reduceat(prior_rows, offsets, axis=0)
    present = counts > 0.0
    positive_columns = present & (column_sums > 0.0)
    zero_columns = present & (column_sums <= 0.0)

    safe_sums = np.where(column_sums > 0.0, column_sums, 1.0)
    shares = np.where(positive_columns[group_of], prior_rows / safe_sums[group_of], 0.0)
    if zero_columns.any():
        uniform = (1.0 / sizes.astype(np.float64))[group_of]
        shares = np.where(zero_columns[group_of], uniform[:, None], shares)

    unnormalised = shares * counts[group_of]
    row_sums = unnormalised.sum(axis=1)
    good = row_sums > 0.0
    posterior = np.where(
        good[:, None], unnormalised / np.where(good, row_sums, 1.0)[:, None], 0.0
    )
    if not good.all():
        empirical = counts / sizes.astype(np.float64)[:, None]
        bad = ~good
        posterior[bad] = empirical[group_of[bad]]
    return posterior


def grouped_posterior(
    prior_rows: np.ndarray,
    code_rows: np.ndarray,
    offsets: np.ndarray,
    *,
    method: str = "omega",
) -> np.ndarray:
    """Posterior rows for a batch of groups laid out contiguously.

    Parameters
    ----------
    prior_rows:
        ``(r, m)`` prior beliefs of all group members, groups back to back.
    code_rows:
        Length-``r`` sensitive codes of the same members.
    offsets:
        Start index of each group within the rows (strictly increasing,
        starting at 0); the last group runs to the end.
    method:
        ``"omega"`` (vectorised, one flat pass) or ``"exact"`` (count-DP per
        group).

    This is the shared kernel behind :func:`posterior_for_groups`, the batched
    privacy-model checks and the skyline audit engine: callers that already
    hold member rows (and may evaluate overlapping candidate groups, e.g. a
    Mondrian split and its parent) use it directly.
    """
    from repro.inference.exact import exact_posterior, group_sensitive_counts

    prior_rows = np.asarray(prior_rows, dtype=np.float64)
    code_rows = np.asarray(code_rows, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if prior_rows.ndim != 2 or prior_rows.shape[0] != code_rows.shape[0]:
        raise InferenceError("prior rows and sensitive codes must cover the same tuples")
    if method not in {"omega", "exact"}:
        raise InferenceError(f"unknown inference method {method!r}; use 'omega' or 'exact'")
    if code_rows.size and (code_rows.min() < 0 or code_rows.max() >= prior_rows.shape[1]):
        raise InferenceError("sensitive code out of range")
    if offsets.size == 0:
        return np.empty_like(prior_rows)
    if offsets[0] != 0 or np.any(np.diff(offsets) <= 0) or offsets[-1] >= max(prior_rows.shape[0], 1):
        raise InferenceError("group offsets must be strictly increasing and start at 0")
    sizes = np.diff(np.append(offsets, prior_rows.shape[0]))
    m = prior_rows.shape[1]
    if method == "omega":
        return _omega_posterior_flat(prior_rows, code_rows, offsets, sizes)
    posterior = np.empty_like(prior_rows)
    for start, size in zip(offsets, sizes):
        stop = start + size
        counts = group_sensitive_counts(code_rows[start:stop], m)
        posterior[start:stop] = exact_posterior(prior_rows[start:stop], counts)
    return posterior


def posterior_for_groups(
    prior_matrix: np.ndarray,
    sensitive_codes: np.ndarray,
    groups: list[np.ndarray],
    *,
    method: str = "omega",
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Posterior beliefs for every tuple of a partitioned table.

    Parameters
    ----------
    prior_matrix:
        ``(n, m)`` prior beliefs for the whole table (one row per tuple).
    sensitive_codes:
        Length-``n`` integer codes of the sensitive values.
    groups:
        List of integer index arrays, one per anonymized group; together they
        must cover each tuple at most once.
    method:
        ``"omega"`` (default) for the linear-time estimate or ``"exact"`` for
        the count-DP exact inference.
    chunk_rows:
        Optional cap on how many member rows are materialised per flat pass.
        Groups are processed in runs of at most this many tuples (always at
        least one group per run), bounding the working set on very large
        tables; the result does not depend on it.

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` posterior matrix.  Tuples not covered by any group keep
        their prior belief (releasing nothing about them).

    Notes
    -----
    All groups are processed in one vectorised pass (bucketed by a group-id
    vector and segment sums) rather than a per-group Python loop; with
    ``method="exact"`` the count DP still runs per group.
    """
    prior_matrix = np.asarray(prior_matrix, dtype=np.float64)
    sensitive_codes = np.asarray(sensitive_codes, dtype=np.int64)
    if prior_matrix.ndim != 2 or prior_matrix.shape[0] != sensitive_codes.shape[0]:
        raise InferenceError("prior matrix and sensitive codes must cover the same tuples")
    if method not in {"omega", "exact"}:
        raise InferenceError(f"unknown inference method {method!r}; use 'omega' or 'exact'")
    if chunk_rows is not None and chunk_rows < 1:
        raise InferenceError("chunk_rows must be a positive integer")
    n = prior_matrix.shape[0]
    posterior = prior_matrix.copy()
    seen = np.zeros(n, dtype=bool)

    populated = []
    for group in groups:
        indices = np.asarray(group, dtype=np.int64)
        if indices.size == 0:
            continue
        if indices.min() < 0 or indices.max() >= n:
            raise InferenceError("group index out of range")
        if seen[indices].any():
            raise InferenceError("groups overlap: a tuple appears in more than one group")
        seen[indices] = True
        populated.append(indices)
    if not populated:
        return posterior

    start = 0
    while start < len(populated):
        stop = start + 1
        rows = populated[start].size
        while stop < len(populated) and (
            chunk_rows is None or rows + populated[stop].size <= chunk_rows
        ):
            rows += populated[stop].size
            stop += 1
        chunk = populated[start:stop]
        members = np.concatenate(chunk)
        offsets = np.cumsum([0] + [g.size for g in chunk[:-1]], dtype=np.int64)
        posterior[members] = grouped_posterior(
            prior_matrix[members], sensitive_codes[members], offsets, method=method
        )
        start = stop
    return posterior
