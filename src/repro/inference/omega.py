"""The Omega-estimate: linear-time approximate posterior inference (Section III-D).

The Omega-estimate generalises Lakshmanan et al.'s O-estimate.  It treats the
group as a bipartite graph between tuples and sensitive values and estimates
the probability that tuple ``t_j`` takes value ``s_i`` as

.. math::

    \\Omega(s_i | t_j) \\propto n_i \\cdot
        \\frac{P(s_i | t_j)}{\\sum_{j'} P(s_i | t_{j'})}

normalised over the sensitive values for each tuple (Equation 5).  It is exact
under the random-world assumption and, as the paper's Table III example shows,
only approximate in general; the Figure 2 experiment measures its accuracy.

Unlike exact inference its cost is ``O(k * m)`` per group, which is what makes
the (B,t)-privacy check affordable inside Mondrian.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InferenceError
from repro.inference.exact import _validate_group


def omega_posterior(prior: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Omega-estimate posterior beliefs for one group.

    Parameters
    ----------
    prior:
        ``(k, m)`` matrix of prior beliefs ``P(s_i | t_j)``.
    counts:
        Length-``m`` multiset counts ``n_i`` of the sensitive values in the
        group (summing to ``k``).

    Returns
    -------
    numpy.ndarray
        ``(k, m)`` row-stochastic posterior matrix.  Values absent from the
        group receive probability 0.

    Notes
    -----
    Two degenerate situations are handled conservatively:

    * if every tuple's prior gives probability 0 to a value that *is* present
      in the group, the ``0/0`` share is replaced by a uniform ``1/k`` share
      (somebody must hold the value);
    * if a tuple's prior excludes every value present in the group, its
      posterior falls back to the group's empirical distribution ``n_i / k``.
    """
    prior, counts = _validate_group(prior, counts)
    k, m = prior.shape
    column_sums = prior.sum(axis=0)
    present = counts > 0

    shares = np.zeros((k, m), dtype=np.float64)
    positive_columns = present & (column_sums > 0.0)
    if positive_columns.any():
        shares[:, positive_columns] = prior[:, positive_columns] / column_sums[positive_columns]
    zero_columns = present & (column_sums <= 0.0)
    if zero_columns.any():
        shares[:, zero_columns] = 1.0 / k

    unnormalised = shares * counts[None, :].astype(np.float64)
    row_sums = unnormalised.sum(axis=1)
    posterior = np.zeros_like(unnormalised)
    good = row_sums > 0.0
    posterior[good] = unnormalised[good] / row_sums[good, None]
    if not good.all():
        empirical = counts.astype(np.float64) / counts.sum()
        posterior[~good] = empirical
    return posterior


def posterior_for_groups(
    prior_matrix: np.ndarray,
    sensitive_codes: np.ndarray,
    groups: list[np.ndarray],
    *,
    method: str = "omega",
) -> np.ndarray:
    """Posterior beliefs for every tuple of a partitioned table.

    Parameters
    ----------
    prior_matrix:
        ``(n, m)`` prior beliefs for the whole table (one row per tuple).
    sensitive_codes:
        Length-``n`` integer codes of the sensitive values.
    groups:
        List of integer index arrays, one per anonymized group; together they
        must cover each tuple at most once.
    method:
        ``"omega"`` (default) for the linear-time estimate or ``"exact"`` for
        the count-DP exact inference.

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` posterior matrix.  Tuples not covered by any group keep
        their prior belief (releasing nothing about them).
    """
    from repro.inference.exact import exact_posterior, group_sensitive_counts

    prior_matrix = np.asarray(prior_matrix, dtype=np.float64)
    sensitive_codes = np.asarray(sensitive_codes, dtype=np.int64)
    if prior_matrix.ndim != 2 or prior_matrix.shape[0] != sensitive_codes.shape[0]:
        raise InferenceError("prior matrix and sensitive codes must cover the same tuples")
    if method not in {"omega", "exact"}:
        raise InferenceError(f"unknown inference method {method!r}; use 'omega' or 'exact'")
    m = prior_matrix.shape[1]
    posterior = prior_matrix.copy()
    seen = np.zeros(prior_matrix.shape[0], dtype=bool)
    for group in groups:
        indices = np.asarray(group, dtype=np.int64)
        if indices.size == 0:
            continue
        if seen[indices].any():
            raise InferenceError("groups overlap: a tuple appears in more than one group")
        seen[indices] = True
        counts = group_sensitive_counts(sensitive_codes[indices], m)
        group_prior = prior_matrix[indices]
        if method == "omega":
            posterior[indices] = omega_posterior(group_prior, counts)
        else:
            posterior[indices] = exact_posterior(group_prior, counts)
    return posterior
