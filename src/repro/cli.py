"""Command-line interface: ``python -m repro <command>`` (or ``repro`` once installed).

The CLI wires the library's main workflows together for quick experiments on
the synthetic Adult-like dataset (or any CSV file with the same schema):

* ``generate``  - write a synthetic Adult-like microdata CSV;
* ``anonymize`` - anonymize a table under a chosen privacy model and write the
  generalized release as CSV;
* ``attack``    - replay the probabilistic background-knowledge attack against
  a release built in-process and report vulnerable tuples;
* ``audit``     - audit a release against a whole skyline of adversaries
  ``{(B_i, t_i)}`` in one batched pass (optionally writing a JSON report);
* ``stream``    - publish a changing table incrementally: seed release first,
  then append batches - plus random deletions (``--delete-frac``) and
  in-place corrections (``--update-frac``) - folded in with dirty-leaf
  re-splits and delta skyline audits (exit 3 with ``--fail-on-breach`` when
  a version breaches); ``--store-dir`` persists every version to a
  disk-backed ReleaseStore and ``--resume`` continues a stored stream;
* ``sweep``     - run a model/parameter grid through one cached session and
  print the resulting comparison table;
* ``serve``     - run the :mod:`repro.serve` HTTP daemon: many named streams
  under one ``--data-dir``, created over HTTP and resumed on restart, with
  per-stream write coalescing and lock-free reads of historical versions;
* ``figure``    - regenerate one of the paper's figures and print it as a
  plain-text table.

Model and algorithm choices are sourced from the plugin registries of
:mod:`repro.api.registry`, so models registered with ``@register_model``
surface here automatically.  The CLI always works with the Table IV schema;
arbitrary schemas are a library-level feature (see :mod:`repro.data.schema`).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api import ALGORITHMS, MODELS, Session, expand_grid
from repro.data.adult import adult_schema, generate_adult
from repro.data.io import open_table, read_csv, write_csv
from repro.data.source import as_source, as_table, write_npz
from repro.exceptions import ReproError
from repro.experiments import config as experiment_config
from repro.experiments import figures as experiment_figures
from repro.knowledge.backend import DEFAULT_MAX_CELLS, resolve_config
from repro.obs.log import LOG_FORMATS, LOG_LEVELS, configure as configure_logging
from repro.obs.tracing import Tracer
from repro.privacy.models import PrivacyModel

_FIGURE_CHOICES = ("1a", "1b", "2", "3a", "3b", "4a", "4b", "5a", "5b", "6a", "6b")
_DEFAULT_SWEEP_MODELS = ("bt", "distinct-l", "probabilistic-l", "t-closeness")


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Modeling and Integrating Background Knowledge in Data Anonymization' (ICDE 2009)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic Adult-like table (CSV or npz)"
    )
    generate.add_argument("--rows", type=int, default=5000, help="number of tuples (default 5000)")
    generate.add_argument("--seed", type=int, default=2009, help="random seed (default 2009)")
    generate.add_argument(
        "--output", required=True,
        help="path of the table file to write (.csv, or .npz for the memory-mappable code format)",
    )

    anonymize_parser = subparsers.add_parser(
        "anonymize", help="anonymize a table and write the generalized release"
    )
    _add_table_arguments(anonymize_parser)
    _add_model_arguments(anonymize_parser)
    anonymize_parser.add_argument("--output", required=True, help="path of the release CSV to write")
    _add_trace_argument(anonymize_parser)

    attack_parser = subparsers.add_parser(
        "attack", help="anonymize a table, then attack it with Adv(b') and report vulnerable tuples"
    )
    _add_table_arguments(attack_parser)
    _add_model_arguments(attack_parser)
    attack_parser.add_argument(
        "--b-prime", type=float, default=0.3, help="adversary bandwidth b' (default 0.3)"
    )
    attack_parser.add_argument(
        "--threshold", type=float, default=None,
        help="knowledge-gain threshold for counting vulnerable tuples (default: the model's t)",
    )

    audit_parser = subparsers.add_parser(
        "audit",
        help="anonymize a table, then audit it against a whole skyline of adversaries",
    )
    _add_table_arguments(audit_parser)
    _add_model_arguments(audit_parser)
    audit_parser.add_argument(
        "--skyline", default=None, type=_skyline_argument,
        help=(
            "comma-separated b:t adversary points, e.g. '0.1:0.25,0.3:0.2' "
            "(default: the model's own (b, t))"
        ),
    )
    audit_parser.add_argument(
        "--method", default="omega", choices=("omega", "exact"),
        help="posterior inference method (default omega)",
    )
    audit_parser.add_argument(
        "--processes", type=int, default=None,
        help="distribute adversaries over N worker processes (default: serial)",
    )
    audit_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable audit report to this JSON file",
    )
    audit_parser.add_argument(
        "--fail-on-breach", action="store_true",
        help="exit with status 3 when any skyline point is breached",
    )
    _add_trace_argument(audit_parser)

    stream_parser = subparsers.add_parser(
        "stream",
        help=(
            "publish a changing table incrementally: seed release, then append/"
            "delete/update batches with dirty-leaf re-splits and delta skyline audits"
        ),
    )
    _add_table_arguments(stream_parser)
    _add_model_arguments(stream_parser, algorithm=False)
    stream_parser.add_argument(
        "--batch-size", type=int, default=500,
        help="rows appended per batch (default 500)",
    )
    stream_parser.add_argument(
        "--batches", type=int, default=5,
        help="number of append batches to publish (default 5)",
    )
    stream_parser.add_argument(
        "--delete-frac", type=_fraction_argument, default=0.0,
        help=(
            "after each append batch, additionally delete this fraction of the "
            "batch size as random retractions (default 0: append-only)"
        ),
    )
    stream_parser.add_argument(
        "--update-frac", type=_fraction_argument, default=0.0,
        help=(
            "after each append batch, additionally correct this fraction of the "
            "batch size as random in-place row updates (default 0)"
        ),
    )
    stream_parser.add_argument(
        "--skyline", default=None, type=_skyline_argument,
        help=(
            "comma-separated b:t audit adversaries, e.g. '0.1:0.25,0.3:0.2' "
            "(default: the model's own (b, t))"
        ),
    )
    stream_parser.add_argument(
        "--method", default="omega", choices=("omega", "exact"),
        help="posterior inference method (default omega)",
    )
    stream_parser.add_argument(
        "--refine-factor", type=float, default=1.5,
        help=(
            "re-search a grown group once it exceeds this multiple of its last "
            "searched size (default 1.5; 1.0 refines on every batch)"
        ),
    )
    stream_parser.add_argument(
        "--compact-drift", type=_positive_float_argument, default=0.5,
        help=(
            "full-refine compaction threshold: re-partition from scratch once "
            "deferred maintenance has touched this fraction of the current "
            "rows (default 0.5; 'inf' disables compaction)"
        ),
    )
    stream_parser.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help=(
            "persist every version to a disk-backed ReleaseStore in this "
            "directory (JSON-lines lineage + npz releases)"
        ),
    )
    stream_parser.add_argument(
        "--resume", action="store_true",
        help=(
            "reconstruct the publisher from --store-dir and continue the "
            "stream (pass the same model flags the stream was created with; "
            "synthetic sources draw fresh batches from a derived seed)"
        ),
    )
    stream_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable version lineage to this JSON file",
    )
    stream_parser.add_argument(
        "--fail-on-breach", action="store_true",
        help="exit with status 3 when any published version breaches its skyline",
    )
    _add_trace_argument(stream_parser)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a model/parameter grid through one cached session and print the comparison",
    )
    _add_table_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--model",
        action="append",
        choices=MODELS.names(),
        help=(
            "privacy model to include (repeatable; default "
            + ", ".join(_DEFAULT_SWEEP_MODELS)
            + ")"
        ),
    )
    sweep_parser.add_argument(
        "--b", type=float, action="append",
        help="(B,t)-privacy bandwidth b (repeatable grid axis; default 0.3)",
    )
    sweep_parser.add_argument(
        "--t", type=float, action="append",
        help="disclosure threshold t (repeatable grid axis; default 0.2)",
    )
    sweep_parser.add_argument(
        "--l", type=float, action="append",
        help="l-diversity parameter (repeatable grid axis; default 4)",
    )
    sweep_parser.add_argument("--k", type=int, default=4, help="k-anonymity parameter (default 4)")
    _add_max_cells_argument(sweep_parser)
    _add_jobs_argument(sweep_parser)
    sweep_parser.add_argument(
        "--b-prime", type=float, default=0.3, help="audit adversary bandwidth b' (default 0.3)"
    )
    sweep_parser.add_argument(
        "--threshold", type=float, default=None,
        help="audit knowledge-gain threshold (default: each grid row's t)",
    )
    sweep_parser.add_argument(
        "--no-audit", action="store_true", help="skip the background-knowledge audit"
    )
    sweep_parser.add_argument(
        "--processes", type=int, default=None,
        help="distribute the grid over N worker processes (default: serial, shared cache)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the multi-stream release-serving HTTP daemon (streams are "
            "created over HTTP and resumed from --data-dir on restart)"
        ),
    )
    serve_parser.add_argument(
        "--data-dir", required=True, type=_data_dir_argument, metavar="DIR",
        help="directory holding one disk-backed ReleaseStore shard per stream",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", type=_host_argument,
        help="interface to bind (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", default=8750, type=_port_argument,
        help="TCP port to bind (default 8750; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--coalesce-ms", default=50.0, type=_coalesce_ms_argument,
        help=(
            "per-stream write-coalescing window in milliseconds: mutation "
            "batches queued within one tick publish as a single version "
            "(default 50; 0 still coalesces whatever queued during the "
            "previous publication)"
        ),
    )
    serve_parser.add_argument(
        "--publish-workers", default=0, type=_publish_workers_argument,
        metavar="N",
        help=(
            "publish through N worker processes so concurrent tenants' "
            "publication compute runs on separate cores (default 0 = "
            "in-process threads; each stream's jobs stick to one worker)"
        ),
    )
    serve_parser.add_argument(
        "--publish-timeout", default=0.0, type=_publish_timeout_argument,
        metavar="SECONDS",
        help=(
            "kill a publication job (and poison only its stream) after this "
            "many seconds in a worker process (default 0 = no timeout; only "
            "meaningful with --publish-workers > 0)"
        ),
    )
    _add_jobs_argument(serve_parser)
    serve_parser.add_argument(
        "--max-queue-batches", default=None, type=_queue_bound_argument,
        metavar="N",
        help=(
            "bound each stream's write queue to N mutation batches; overflow "
            "is rejected with 429 + Retry-After instead of buffering "
            "(default 64)"
        ),
    )
    serve_parser.add_argument(
        "--max-queued-rows", default=None, type=_queue_bound_argument,
        metavar="N",
        help=(
            "bound each stream's write queue to N total queued rows, "
            "rejecting overflow with 429 + Retry-After (default 100000)"
        ),
    )
    serve_parser.add_argument(
        "--log-level", default="info", choices=LOG_LEVELS,
        help="minimum level of the daemon's structured logs (default info)",
    )
    serve_parser.add_argument(
        "--log-format", default="text", choices=LOG_FORMATS,
        help=(
            "log record format: 'text' for classic one-line records, 'json' "
            "for one JSON object per line with trace ids and timings as "
            "fields (default text)"
        ),
    )
    serve_parser.add_argument(
        "--slow-publish-seconds", default=None, type=_positive_float_argument,
        metavar="SECONDS",
        help=(
            "log a WARNING whenever one publication tick takes longer than "
            "this many seconds (default 5; 'inf' disables the warning)"
        ),
    )

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's figures and print it"
    )
    figure_parser.add_argument("--id", required=True, choices=_FIGURE_CHOICES, help="figure id")
    _add_table_arguments(figure_parser)
    figure_parser.add_argument(
        "--parameters", default="para1", choices=[p.name for p in experiment_config.TABLE_V],
        help="Table V parameter set used by figures that need one (default para1)",
    )
    return parser


def _add_table_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--input",
        help=(
            "table file with the Adult (Table IV) schema: .csv (streamed in "
            "bounded chunks) or .npz (memory-mapped code columns)"
        ),
    )
    source.add_argument("--rows", type=int, default=2000, help="synthetic table size (default 2000)")
    parser.add_argument("--seed", type=int, default=2009, help="random seed for synthetic data")
    parser.add_argument(
        "--chunk-rows", type=_chunk_rows_argument, default=None, metavar="N",
        help=(
            "rows per chunk when streaming --input through the out-of-core "
            "ingestion path (default 65536; priors are bitwise identical at "
            "any chunk size)"
        ),
    )


def _add_max_cells_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-cells", type=_max_cells_argument, default=DEFAULT_MAX_CELLS,
        help=(
            "cell budget for the factored prior-estimation backend's blocked "
            f"contraction (0 = flat reference sweep; default {DEFAULT_MAX_CELLS})"
        ),
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help=(
            "worker threads for the prior backend's parallel contraction "
            "(1 = serial; default: the REPRO_JOBS environment variable, "
            "else all cores; results are identical at any thread count)"
        ),
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, type=_trace_out_argument, metavar="PATH",
        help=(
            "write the run's span trace (the nested per-stage timing tree) "
            "to this JSON file"
        ),
    )


def _add_model_arguments(parser: argparse.ArgumentParser, *, algorithm: bool = True) -> None:
    parser.add_argument(
        "--model", default="bt", choices=MODELS.names(), help="privacy model (default bt)"
    )
    if algorithm:
        parser.add_argument(
            "--algorithm", default="mondrian", choices=ALGORITHMS.names(),
            help="anonymization algorithm (default mondrian)",
        )
    parser.add_argument("--b", type=float, default=0.3, help="(B,t)-privacy bandwidth b (default 0.3)")
    parser.add_argument("--t", type=float, default=0.2, help="disclosure threshold t (default 0.2)")
    parser.add_argument(
        "--l", type=float, default=4,
        help="l-diversity parameter (default 4; distinct-l rejects non-integer values)",
    )
    parser.add_argument("--k", type=int, default=4, help="k-anonymity parameter (default 4)")
    _add_max_cells_argument(parser)
    _add_jobs_argument(parser)
    if algorithm:
        parser.add_argument(
            "--anatomy-l", type=int, default=None, help="Anatomy bucket diversity (anatomy only)"
        )


def _load_table(args: argparse.Namespace):
    """The run's table: a chunked TableSource for --input, synthetic otherwise."""
    if getattr(args, "input", None):
        return open_table(
            args.input, adult_schema(), chunk_rows=getattr(args, "chunk_rows", None)
        )
    return generate_adult(args.rows, seed=args.seed)


def _build_model(args: argparse.Namespace) -> PrivacyModel:
    """Build the chosen model from the registry; each model picks the flags it understands."""
    return MODELS.build_filtered(
        args.model,
        {"b": args.b, "t": args.t, "l": args.l, "k": args.k, "max_cells": args.max_cells},
    )


def _session(table, args: argparse.Namespace) -> Session:
    """A session carrying the CLI's estimator-backend configuration."""
    config = resolve_config(
        None,
        max_cells=args.max_cells,
        jobs=args.jobs,
        chunk_rows=getattr(args, "chunk_rows", None),
    )
    return Session(table, config=config)


def _write_release_csv(release, path: str | Path) -> None:
    rows = release.generalized_rows()
    names = list(release.table.schema.names)
    with Path(path).open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=names)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def _run_generate(args: argparse.Namespace) -> int:
    table = generate_adult(args.rows, seed=args.seed)
    if Path(args.output).suffix.lower() == ".npz":
        write_npz(args.output, as_source(table))
    else:
        write_csv(table, args.output)
    print(f"wrote {table.n_rows} rows to {args.output}")
    return 0


def _run_anonymize(args: argparse.Namespace) -> int:
    table = _load_table(args)
    tracer = Tracer(enabled=bool(args.trace_out))
    with tracer.activate():
        bundle = (
            _session(table, args)
            .pipeline()
            .model(_build_model(args))
            .with_k(args.k)
            .algorithm(args.algorithm, anatomy_l=args.anatomy_l)
            .run()
        )
    release = bundle.release
    _write_release_csv(release, args.output)
    print(
        f"anonymized {table.n_rows} rows with {args.model} "
        f"({bundle.model_description}): {release.n_groups} groups, "
        f"avg size {release.average_group_size():.1f}"
    )
    print(
        f"utility: DM={bundle.utility['discernibility_metric']:.0f} "
        f"GCP={bundle.utility['global_certainty_penalty']:.0f}"
    )
    print(f"wrote generalized release to {args.output}")
    if args.trace_out:
        _write_trace(tracer, args.trace_out)
    return 0


def _run_attack(args: argparse.Namespace) -> int:
    table = _load_table(args)
    threshold = args.threshold if args.threshold is not None else args.t
    bundle = (
        _session(table, args)
        .pipeline()
        .model(_build_model(args))
        .with_k(args.k)
        .algorithm(args.algorithm, anatomy_l=args.anatomy_l)
        .audit(b_prime=args.b_prime, threshold=threshold)
        .with_utility(False)
        .run()
    )
    outcome = bundle.attack
    print(
        f"model={args.model} groups={bundle.release.n_groups} "
        f"adversary b'={args.b_prime:g} threshold={threshold:g}"
    )
    print(
        f"vulnerable tuples: {outcome.vulnerable_tuples} / {table.n_rows} "
        f"({100 * outcome.vulnerability_rate():.1f}%)"
    )
    print(f"worst-case knowledge gain: {outcome.worst_case_risk:.4f}")
    return 0


def _parse_skyline(text: str) -> list[tuple[float, float]]:
    """Parse and validate a ``b:t,b:t,...`` skyline specification."""
    points = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 2:
            raise ReproError(
                f"bad skyline point {chunk!r}; expected 'b:t' (e.g. '0.3:0.2')"
            )
        try:
            b, t = float(parts[0]), float(parts[1])
        except ValueError:
            raise ReproError(
                f"bad skyline point {chunk!r}; b and t must be numbers"
            ) from None
        if not b > 0.0:
            raise ReproError(f"bad skyline point {chunk!r}; the bandwidth b must be positive")
        if not 0.0 <= t <= 1.0:
            raise ReproError(f"bad skyline point {chunk!r}; t must lie in [0, 1]")
        points.append((b, t))
    if not points:
        raise ReproError("the skyline specification contains no points")
    return points


def _skyline_argument(text: str) -> list[tuple[float, float]]:
    """argparse ``type`` wrapper: malformed specs exit 2 with a one-line usage error."""
    try:
        return _parse_skyline(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _fraction_argument(text: str) -> float:
    """argparse ``type`` wrapper: malformed/out-of-range fractions exit 2."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad fraction {text!r}; expected a number in [0, 1]"
        ) from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"bad fraction {text!r}; the fraction must lie in [0, 1]"
        )
    return value


def _positive_float_argument(text: str) -> float:
    """argparse ``type`` wrapper: malformed/non-positive values exit 2 ('inf' ok)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad value {text!r}; expected a positive number (or 'inf')"
        ) from None
    if not value > 0.0:
        raise argparse.ArgumentTypeError(
            f"bad value {text!r}; the value must be positive (or 'inf')"
        )
    return value


def _chunk_rows_argument(text: str) -> int:
    """argparse ``type`` wrapper: malformed/non-positive chunk sizes exit 2."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad chunk size {text!r}; expected a positive integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"bad chunk size {text!r}; the chunk size must be at least 1"
        )
    return value


def _jobs_argument(text: str) -> int:
    """argparse ``type`` wrapper: malformed/non-positive thread counts exit 2."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad jobs count {text!r}; expected a positive integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"bad jobs count {text!r}; the thread count must be at least 1"
        )
    return value


def _max_cells_argument(text: str) -> int:
    """argparse ``type`` wrapper: malformed/negative budgets exit 2 like ``--skyline``."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad cell budget {text!r}; expected a non-negative integer"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"bad cell budget {text!r}; the budget must be non-negative "
            "(0 selects the flat reference sweep)"
        )
    return value


def _trace_out_argument(text: str) -> str:
    """argparse ``type`` wrapper: a hopeless trace path exits 2 up front.

    Validating before the run means a typo'd directory fails in milliseconds
    instead of after minutes of anonymization.
    """
    if not text:
        raise argparse.ArgumentTypeError("bad trace path ''; expected a file path")
    path = Path(text)
    if path.is_dir():
        raise argparse.ArgumentTypeError(
            f"bad trace path {text!r}; the path is a directory"
        )
    parent = path.parent
    if not parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"bad trace path {text!r}; the directory {str(parent)!r} does not exist"
        )
    return text


def _write_trace(tracer: Tracer, path: str) -> None:
    """Dump the tracer's finished root span tree as indented JSON."""
    root = tracer.take_root()
    payload = root.to_dict() if root is not None else None
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote span trace to {path}")


def _port_argument(text: str) -> int:
    """argparse ``type`` wrapper: malformed/out-of-range ports exit 2."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad port {text!r}; expected an integer in [0, 65535]"
        ) from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"bad port {text!r}; the port must lie in [0, 65535] (0 picks a free port)"
        )
    return value


def _host_argument(text: str) -> str:
    """argparse ``type`` wrapper: syntactically hopeless hosts exit 2."""
    value = text.strip()
    if not value or any(c.isspace() for c in value) or "/" in value:
        raise argparse.ArgumentTypeError(
            f"bad host {text!r}; expected a hostname or address "
            "(no whitespace or slashes)"
        )
    return value


def _data_dir_argument(text: str) -> str:
    """argparse ``type`` wrapper: a data dir colliding with a file exits 2."""
    if not text:
        raise argparse.ArgumentTypeError("bad data dir ''; expected a directory path")
    path = Path(text)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"bad data dir {text!r}; the path exists and is not a directory"
        )
    return text


def _coalesce_ms_argument(text: str) -> float:
    """argparse ``type`` wrapper: malformed/negative/non-finite windows exit 2."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad coalescing window {text!r}; expected milliseconds >= 0"
        ) from None
    if not 0.0 <= value < float("inf"):
        raise argparse.ArgumentTypeError(
            f"bad coalescing window {text!r}; the window must be a finite "
            "number of milliseconds >= 0"
        )
    return value


def _publish_workers_argument(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad worker count {text!r}; expected an integer >= 0"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"bad worker count {text!r}; 0 means in-process threads, N > 0 "
            "means N publication worker processes"
        )
    return value


def _publish_timeout_argument(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad publish timeout {text!r}; expected seconds >= 0"
        ) from None
    if not 0.0 <= value < float("inf"):
        raise argparse.ArgumentTypeError(
            f"bad publish timeout {text!r}; expected a finite number of "
            "seconds >= 0 (0 disables the timeout)"
        )
    return value


def _queue_bound_argument(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad queue bound {text!r}; expected an integer >= 1"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"bad queue bound {text!r}; the bound must be at least 1"
        )
    return value


def _run_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeApp

    configure_logging(level=args.log_level, log_format=args.log_format)
    extra = {}
    if args.slow_publish_seconds is not None:
        extra["slow_publish_seconds"] = args.slow_publish_seconds
    app = ServeApp(
        args.data_dir,
        host=args.host,
        port=args.port,
        coalesce_ms=args.coalesce_ms,
        publish_workers=args.publish_workers,
        publish_timeout=args.publish_timeout,
        jobs=args.jobs,
        max_queue_batches=args.max_queue_batches,
        max_queued_rows=args.max_queued_rows,
        **extra,
    )
    app.run()
    return 0


def _run_audit(args: argparse.Namespace) -> int:
    table = _load_table(args)
    skyline = args.skyline
    tracer = Tracer(enabled=bool(args.trace_out))
    with tracer.activate():
        bundle = (
            _session(table, args)
            .pipeline()
            .model(_build_model(args))
            .with_k(args.k)
            .algorithm(args.algorithm, anatomy_l=args.anatomy_l)
            .audit_skyline(skyline, method=args.method, processes=args.processes)
            .with_utility(False)
            .run()
        )
    report = bundle.skyline_audit
    print(
        f"model={args.model} ({bundle.model_description}): "
        f"{bundle.release.n_groups} groups on {table.n_rows} rows"
    )
    print(report.render())
    if args.json:
        payload = report.summary()
        payload["model"] = bundle.model_description
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote audit report to {args.json}")
    if args.trace_out:
        _write_trace(tracer, args.trace_out)
    if args.fail_on_breach and not report.satisfied:
        return 3
    return 0


def _print_stream_version(version) -> None:
    delta = version.delta
    changes = []
    if delta.appended_rows:
        changes.append(f"+{delta.appended_rows}")
    if delta.deleted_rows:
        changes.append(f"-{delta.deleted_rows}")
    if delta.updated_rows:
        changes.append(f"~{delta.updated_rows}")
    tags = []
    if delta.rebuild:
        tags.append("rebuild")
    if delta.compacted:
        tags.append("compacted")
    suffix = f" {{{','.join(tags)}}}" if tags else ""
    print(
        f"v{version.version}: {'/'.join(changes) or '+0'} rows -> {version.n_groups} groups "
        f"({delta.reused_groups} reused, {delta.rechecked_leaves} rechecked, "
        f"{delta.refined_leaves} refined, {delta.rebuilt_regions} rebuilt){suffix} "
        f"[{'ok' if version.satisfied else 'BREACH'}] "
        f"({delta.timings['total_seconds']:.3f}s)"
    )
    if version.report is not None:
        worst = version.report.worst_entry()
        print(
            f"    worst adversary {worst.adversary.describe()}: "
            f"risk {worst.attack.worst_case_risk:.4f} (margin {worst.margin:+.4f})"
        )


def _resume_stream(args: argparse.Namespace, tracer: Tracer):
    """Reconstruct the publisher from --store-dir and its append source."""
    from repro.stream import IncrementalPublisher

    publisher = IncrementalPublisher.resume(
        args.store_dir,
        schema=adult_schema(),
        model=_build_model(args),
        jobs=args.jobs,
        tracer=tracer,
    )
    # A resumed publisher is governed by the store's recorded state, not by
    # these flags; call out only effective differences (passing the stream's
    # actual values, or omitting --skyline, stays silent).
    stored = publisher.store.state or {}
    differing = [
        flag
        for flag, value in (
            ("--k", args.k),
            ("--method", args.method),
            ("--refine-factor", args.refine_factor),
            ("--compact-drift", args.compact_drift),
            ("--max-cells", args.max_cells),
        )
        if stored.get(flag.strip("-").replace("-", "_")) != value
    ]
    if args.skyline is not None:
        stored_skyline = [
            (b, t) for b, t in publisher.skyline if len({v for _, v in b.items()}) == 1
        ]
        as_scalars = [(next(v for _, v in b.items()), t) for b, t in stored_skyline]
        if len(stored_skyline) != len(publisher.skyline) or as_scalars != [
            (float(b), float(t)) for b, t in args.skyline
        ]:
            differing.append("--skyline")
    if differing:
        flags = ", ".join(differing)
        verb = "differs" if len(differing) == 1 else "differ"
        print(
            f"note: {flags} {verb} from the stored stream state, which "
            "governs a resumed stream; the stored value"
            f"{'' if len(differing) == 1 else 's'} will be used"
        )
    appended_total = args.batches * args.batch_size
    consumed = publisher.store[0].n_rows + sum(
        version.delta.appended_rows for version in publisher.store
    )
    if getattr(args, "input", None):
        table = read_csv(args.input, adult_schema())
        if table.n_rows < consumed + appended_total:
            raise ReproError(
                f"--input has {table.n_rows} rows but the resumed stream already "
                f"consumed {consumed} and {appended_total} more are requested"
            )
        source = table.select(range(consumed, consumed + appended_total))
    else:
        # Synthetic sources are not prefix-stable across sizes: draw fresh
        # batches from a seed derived from the stream position (values
        # outside the stored domains trigger the publisher's full rebuild).
        source = generate_adult(
            appended_total, seed=args.seed + 7919 * len(publisher.store)
        )
    return publisher, source


def _run_stream(args: argparse.Namespace) -> int:
    if args.batches < 1 or args.batch_size < 1:
        raise ReproError("--batches and --batch-size must be positive")
    if args.resume and not args.store_dir:
        raise ReproError("--resume requires --store-dir")
    tracer = Tracer(enabled=bool(args.trace_out))
    # One enclosing span makes every publication of the run - the seed
    # release included - a child of a single root, so --trace-out captures
    # the whole stream as one tree.
    with tracer.activate(), tracer.timed(
        "cli.stream", batches=args.batches, batch_size=args.batch_size
    ):
        status = _stream_publications(args, tracer)
    if args.trace_out:
        _write_trace(tracer, args.trace_out)
    return status


def _stream_publications(args: argparse.Namespace, tracer: Tracer) -> int:
    appended_total = args.batches * args.batch_size
    if args.resume:
        publisher, source = _resume_stream(args, tracer)
        print(f"stream (resumed from {args.store_dir}): {publisher.describe()}")
        print(
            f"resumed at v{publisher.latest.version}: {publisher.latest.n_rows} rows, "
            f"{publisher.latest.n_groups} groups"
        )
    else:
        if getattr(args, "input", None):
            table = as_table(_load_table(args))
            if table.n_rows <= appended_total:
                raise ReproError(
                    f"--input has {table.n_rows} rows but {appended_total} are reserved "
                    "for append batches; reduce --batches/--batch-size"
                )
        else:
            # Generate seed + stream in one draw so the batches share the
            # seed's marginals (the publisher handles unseen values with a
            # full rebuild).
            table = generate_adult(args.rows + appended_total, seed=args.seed)
        seed_rows = table.n_rows - appended_total
        seed = table.select(range(seed_rows))
        source = table.select(range(seed_rows, table.n_rows))
        session = _session(seed, args)
        publisher = session.stream(
            _build_model(args),
            skyline=args.skyline,
            k=args.k,
            method=args.method,
            refine_factor=args.refine_factor,
            compact_drift=args.compact_drift,
            store_dir=args.store_dir,
            tracer=tracer,
        )
        v0 = publisher.latest
        print(f"stream: {publisher.describe()}")
        print(
            f"v0: seed {v0.n_rows} rows -> {v0.n_groups} groups "
            f"[{'ok' if v0.satisfied else 'BREACH'}] "
            f"({v0.delta.timings['total_seconds']:.3f}s)"
        )
    deletes = round(args.delete_frac * args.batch_size)
    updates = round(args.update_frac * args.batch_size)
    rng = np.random.default_rng(args.seed + len(publisher.store))
    for index in range(args.batches):
        lo = index * args.batch_size
        batch = source.select(range(lo, lo + args.batch_size))
        _print_stream_version(publisher.append(batch))
        if deletes:
            rows = np.sort(
                rng.choice(publisher.table.n_rows, size=deletes, replace=False)
            )
            _print_stream_version(publisher.delete(rows))
        if updates:
            positions = np.sort(
                rng.choice(publisher.table.n_rows, size=updates, replace=False)
            )
            donors = rng.integers(0, publisher.table.n_rows, size=updates)
            replacements = [publisher.table.row(int(donor)) for donor in donors]
            _print_stream_version(publisher.update(positions, replacements))
    if args.json:
        payload = {
            "stream": publisher.describe(),
            "versions": publisher.store.lineage(),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote stream lineage to {args.json}")
    if args.fail_on_breach and any(not version.satisfied for version in publisher.store):
        return 3
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    table = _load_table(args)
    session = _session(table, args)
    models = tuple(args.model) if args.model else _DEFAULT_SWEEP_MODELS
    audit = None
    if not args.no_audit:
        audit = {"b_prime": args.b_prime, "threshold": args.threshold}
    specs = expand_grid(
        model=list(models),
        b=args.b or [0.3],
        t=args.t or [0.2],
        l=args.l or [4.0],
        k=args.k,
        max_cells=args.max_cells,
        audit=audit,
    )
    if audit is not None and args.threshold is None:
        # Audit each grid row against its own t (so l-diversity rows, whose
        # models carry no t, still have a threshold).
        for spec in specs:
            spec.audit = {**spec.audit, "threshold": spec.params.get("t")}
    # Models ignore grid axes they don't understand (e.g. distinct-l and b),
    # so a multi-valued axis can produce identical effective configurations;
    # keep the first of each.
    seen: set[tuple] = set()
    unique_specs = []
    for spec in specs:
        key = (spec.resolved_label(), tuple(sorted((spec.audit or {}).items())))
        if key not in seen:
            seen.add(key)
            unique_specs.append(spec)
    outcome = session.sweep(unique_specs, processes=args.processes)
    print(f"sweep: {len(outcome.rows)} configurations on {table.n_rows} rows")
    print(outcome.render())
    stats = outcome.stats
    print(
        f"cache: {stats['prior_estimations']} prior estimation(s), "
        f"{stats['prior_cache_hits']} cache hit(s)"
    )
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    table = as_table(_load_table(args))
    parameters = experiment_config.parameters_by_name(args.parameters)
    session = Session(table)
    runners = {
        "1a": lambda: experiment_figures.figure_1a(table, parameters, session=session),
        "1b": lambda: experiment_figures.figure_1b(table, session=session),
        "2": lambda: experiment_figures.figure_2(table, repeats=20, session=session),
        "3a": lambda: experiment_figures.figure_3a(
            table, t=parameters.t, k=parameters.k, session=session
        ),
        "3b": lambda: experiment_figures.figure_3b(
            table, t=parameters.t, k=parameters.k, session=session
        ),
        "4a": lambda: experiment_figures.figure_4a(table, session=session),
        "4b": lambda: experiment_figures.figure_4b(
            input_sizes=(args.rows // 2, args.rows, 2 * args.rows), seed=args.seed
        ),
        "5a": lambda: experiment_figures.figure_5a(table, session=session),
        "5b": lambda: experiment_figures.figure_5b(table, session=session),
        "6a": lambda: experiment_figures.figure_6a(table, parameters, session=session),
        "6b": lambda: experiment_figures.figure_6b(table, parameters, session=session),
    }
    result = runners[args.id]()
    print(result.render())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``, the ``repro`` script and the tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _run_generate,
        "anonymize": _run_anonymize,
        "attack": _run_attack,
        "audit": _run_audit,
        "stream": _run_stream,
        "sweep": _run_sweep,
        "serve": _run_serve,
        "figure": _run_figure,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
