"""Parameter sweeps: run grids of pipeline configurations with shared caches.

A sweep is the primitive behind every evaluation artefact of the paper - "the
four models under para1..para4", "(B,t) for b in 0.2..0.5" - and behind any
benchmark that compares configurations.  :func:`run_sweep` executes a list of
:class:`SweepSpec` rows through one :class:`~repro.api.session.Session`, so
expensive preparation (kernel priors, distance matrices, audit adversaries)
is shared across the whole grid::

    session = Session(table)
    specs = expand_grid(model=["bt", "distinct-l", "t-closeness"], b=0.3, t=[0.1, 0.2], l=4, k=4)
    outcome = session.sweep(specs)
    print(outcome.render())

Models named by string pick the parameters they understand from the grid row
(``distinct-l`` ignores ``b``; ``bt`` ignores ``l``), which is what lets one
grid span heterogeneous models.  With ``processes=N`` the grid is distributed
over worker processes, each holding its own session cache for the specs it
runs; the default (``processes=None``) runs serially in the calling session,
which maximises cache sharing.
"""

from __future__ import annotations

import inspect
import itertools
import multiprocessing
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.api.pipeline import ReleaseBundle
from repro.api.registry import MODELS
from repro.api.session import Session
from repro.exceptions import PipelineError, ReproError
from repro.privacy.models import PrivacyModel


@dataclass
class SweepSpec:
    """One grid cell: a model configuration plus the pipeline steps to run."""

    model: str | PrivacyModel
    params: dict[str, Any] = field(default_factory=dict)
    k: int | None = None
    algorithm: str = "mondrian"
    options: dict[str, Any] = field(default_factory=dict)
    audit: Mapping[str, Any] | None = None
    utility: bool = True
    label: str = ""

    def resolved_label(self) -> str:
        """The explicit label, or one derived from the model and parameters."""
        if self.label:
            return self.label
        if isinstance(self.model, PrivacyModel):
            return f"{self.model.name}({self.model.describe()})"
        if self.model not in MODELS:
            # Leave unknown names resolvable as labels; the registry raises
            # the real error when the spec executes.
            return str(self.model)
        accepted = set(MODELS.parameters(self.model))
        shown = {name: value for name, value in self.params.items() if name in accepted}
        # The estimator cell budget is backend plumbing, not model identity:
        # only label it when it differs from the factory default.
        budget = inspect.signature(MODELS.get(self.model)).parameters.get("max_cells")
        if budget is not None and shown.get("max_cells") == budget.default:
            shown.pop("max_cells", None)
        inner = ", ".join(f"{name}={value!r}" for name, value in sorted(shown.items()))
        text = f"{self.model}({inner})" if inner else self.model
        return f"{text}+k={self.k}" if self.k is not None else text


def expand_grid(
    *,
    audit: Mapping[str, Any] | None = None,
    utility: bool = True,
    options: Mapping[str, Any] | None = None,
    **axes: Any,
) -> list[SweepSpec]:
    """Cartesian product of parameter axes, as a list of :class:`SweepSpec`.

    Each keyword is an axis; scalar values are broadcast, lists/tuples are
    swept.  ``model`` is required; ``k`` and ``algorithm`` configure the
    pipeline; every other axis becomes a model parameter (each model picks the
    parameters it understands)::

        expand_grid(model=["bt", "t-closeness"], b=[0.2, 0.3], t=0.2, k=4)
        # -> 4 specs: 2 models x 2 bandwidths
    """
    if "model" not in axes:
        raise PipelineError("expand_grid requires a 'model' axis")
    names = list(axes)
    levels: list[Sequence[Any]] = [
        value if isinstance(value, (list, tuple)) else (value,) for value in axes.values()
    ]
    specs: list[SweepSpec] = []
    for combination in itertools.product(*levels):
        row = dict(zip(names, combination))
        model = row.pop("model")
        k = row.pop("k", None)
        algorithm = row.pop("algorithm", "mondrian")
        specs.append(
            SweepSpec(
                model=model,
                params=row,
                k=k,
                algorithm=algorithm,
                options=dict(options or {}),
                audit=dict(audit) if audit is not None else None,
                utility=utility,
            )
        )
    return specs


@dataclass
class SweepRow:
    """The outcome of one grid cell: its bundle, or the error that stopped it."""

    label: str
    spec: SweepSpec
    bundle: ReleaseBundle | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether this cell produced a release."""
        return self.bundle is not None


@dataclass
class SweepOutcome:
    """All rows of one sweep plus the session cache statistics at completion."""

    rows: list[SweepRow]
    stats: dict[str, int] = field(default_factory=dict)

    def bundles(self) -> dict[str, ReleaseBundle]:
        """Mapping from row label to bundle (successful rows only)."""
        return {row.label: row.bundle for row in self.rows if row.bundle is not None}

    def to_dicts(self) -> list[dict[str, Any]]:
        """One flat summary dictionary per row (for tables / CSV export)."""
        records = []
        for row in self.rows:
            record: dict[str, Any] = {"label": row.label}
            if row.bundle is not None:
                record.update(row.bundle.summary())
            if row.error is not None:
                record["error"] = row.error
            records.append(record)
        return records

    def render(self) -> str:
        """Plain-text table of the sweep (one line per grid cell)."""
        columns = [
            ("label", "{}"),
            ("n_groups", "{}"),
            ("average_group_size", "{:.1f}"),
            ("prepare_seconds", "{:.3f}"),
            ("partition_seconds", "{:.3f}"),
            ("vulnerable_tuples", "{}"),
            ("worst_case_risk", "{:.4f}"),
            ("discernibility_metric", "{:.0f}"),
            ("global_certainty_penalty", "{:.0f}"),
            ("error", "{}"),
        ]
        records = self.to_dicts()
        used = [
            (name, fmt) for name, fmt in columns if any(name in record for record in records)
        ]
        header = [name for name, _ in used]
        body = []
        for record in records:
            cells = []
            for name, fmt in used:
                value = record.get(name)
                cells.append("-" if value is None else fmt.format(value))
            body.append(cells)
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(title.ljust(width) for title, width in zip(header, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for cells in body:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
        return "\n".join(lines)


def _coerce_spec(spec: SweepSpec | Mapping[str, Any]) -> SweepSpec:
    if isinstance(spec, SweepSpec):
        return spec
    return SweepSpec(**dict(spec))


def _execute_spec(session: Session, spec: SweepSpec, on_error: str) -> SweepRow:
    label = spec.resolved_label()
    try:
        if isinstance(spec.model, str):
            # Session-built models default to the session's estimator cell
            # budget; an explicit max_cells param still wins.
            params = {"max_cells": session.max_cells, **spec.params}
            model = MODELS.build_filtered(spec.model, params)
        else:
            model = spec.model
        pipeline = (
            session.pipeline()
            .model(model)
            .with_k(spec.k)
            .algorithm(spec.algorithm, **spec.options)
            .with_utility(spec.utility)
        )
        if spec.audit is not None:
            pipeline.audit(**spec.audit)
        return SweepRow(label=label, spec=spec, bundle=pipeline.run())
    except ReproError as error:
        if on_error == "raise":
            raise
        return SweepRow(label=label, spec=spec, error=str(error))


# -- multiprocessing workers ---------------------------------------------------------
#
# Workers rebuild a session from the pickled table once (pool initializer) and
# keep it in a module global, so the specs assigned to one worker still share
# caches with each other.

_WORKER_SESSION: Session | None = None
_WORKER_ON_ERROR: str = "raise"


def _init_worker(
    table, kernel: str, max_cells: int, jobs: int | None, on_error: str
) -> None:
    global _WORKER_SESSION, _WORKER_ON_ERROR
    _WORKER_SESSION = Session(table, kernel=kernel, max_cells=max_cells, jobs=jobs)
    _WORKER_ON_ERROR = on_error


def _run_in_worker(spec: SweepSpec) -> tuple[SweepRow, dict[str, int]]:
    assert _WORKER_SESSION is not None, "worker session not initialised"
    before = _WORKER_SESSION.stats.as_dict()
    row = _execute_spec(_WORKER_SESSION, spec, _WORKER_ON_ERROR)
    after = _WORKER_SESSION.stats.as_dict()
    # Ship the per-spec cache-stat delta back so the parent can report the
    # sweep's true totals (its own session never did the work).
    return row, {name: after[name] - before[name] for name in after}


def run_sweep(
    session: Session,
    specs: Iterable[SweepSpec | Mapping[str, Any]],
    *,
    processes: int | None = None,
    on_error: str = "raise",
) -> SweepOutcome:
    """Execute a grid of pipeline configurations against one session.

    Parameters
    ----------
    session:
        The session whose table (and, serially, whose caches) the grid uses.
    specs:
        :class:`SweepSpec` rows or equivalent mappings (see :func:`expand_grid`).
    processes:
        ``None`` (default) runs serially with full cache sharing; an integer
        distributes the rows over that many worker processes, each with its
        own session cache.
    on_error:
        ``"raise"`` propagates the first failing cell; ``"continue"`` records
        the error on its row and keeps sweeping.
    """
    if on_error not in {"raise", "continue"}:
        raise PipelineError("on_error must be 'raise' or 'continue'")
    resolved = [_coerce_spec(spec) for spec in specs]
    if not resolved:
        raise PipelineError("a sweep requires at least one spec")
    if processes is not None and processes < 1:
        raise PipelineError("processes must be a positive integer")

    # Disambiguate duplicate labels (e.g. models that ignore a swept axis) so
    # bundles() keeps every row and the rendered table stays readable.
    labels = [spec.resolved_label() for spec in resolved]
    repeated = {label for label, count in Counter(labels).items() if count > 1}
    occurrence: Counter = Counter()
    for index, (spec, label) in enumerate(zip(resolved, labels)):
        if label in repeated:
            occurrence[label] += 1
            resolved[index] = replace(spec, label=f"{label} #{occurrence[label]}")

    if processes is None or processes == 1 or len(resolved) == 1:
        rows = [_execute_spec(session, spec, on_error) for spec in resolved]
        stats = session.stats.as_dict()
    else:
        with multiprocessing.Pool(
            processes=min(processes, len(resolved)),
            initializer=_init_worker,
            initargs=(
                session.table,
                session.default_kernel,
                session.max_cells,
                session.jobs,
                on_error,
            ),
        ) as pool:
            outcomes = pool.map(_run_in_worker, resolved)
        rows = [row for row, _ in outcomes]
        # The parent session did no work; report the workers' combined
        # activity (on top of whatever the parent had cached before).
        stats = session.stats.as_dict()
        for _, delta in outcomes:
            for name, value in delta.items():
                stats[name] += value
    return SweepOutcome(rows=rows, stats=stats)
