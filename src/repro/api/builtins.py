"""Built-in registry entries: the paper's models, algorithms, estimators, measures.

Importing this module (which :mod:`repro.api` does eagerly) populates the four
registries of :mod:`repro.api.registry` with everything the paper evaluates:

* **models** - (B,t)-privacy and its skyline variant, the three baseline
  models (distinct/probabilistic/entropy l-diversity, t-closeness) and plain
  k-anonymity;
* **algorithms** - Mondrian generalization and Anatomy bucketization;
* **prior estimators** - the kernel-regression estimator plus the Section II-D
  baselines (uniform, overall-distribution, maximum-likelihood);
* **measures** - the paper's smoothed-JS measure and the classical
  alternatives it is compared against.

Model factories are keyword-only and validate their inputs, so the CLI and
sweep grids can hold one parameter superset and let each model pick what it
understands (see :meth:`repro.api.registry.Registry.build_filtered`).
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.anatomy import anatomy_partition
from repro.anonymize.mondrian import MondrianAnonymizer, spilled_value_matrix
from repro.api.registry import (
    register_algorithm,
    register_measure,
    register_model,
    register_prior_estimator,
)
from repro.data.distance import attribute_distance_matrix
from repro.data.source import as_source
from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError, PrivacyModelError
from repro.knowledge.backend import DEFAULT_MAX_CELLS, EstimatorConfig
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import kernel_prior, mle_prior, overall_prior, uniform_prior
from repro.privacy.measures import (
    DistanceMeasure,
    EMDDistance,
    HierarchicalEMD,
    JSDivergence,
    KLDivergence,
    SmoothedJSDivergence,
    sensitive_distance_measure,
)
from repro.privacy.models import (
    BTPrivacy,
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    PrivacyModel,
    ProbabilisticLDiversity,
    SkylineBTPrivacy,
    TCloseness,
)


def _integral(value: float | int, parameter: str, model: str) -> int:
    number = float(value)
    if not number.is_integer():
        raise PrivacyModelError(
            f"{model} requires an integer {parameter}, got {value!r}"
        )
    return int(number)


# ---------------------------------------------------------------------------
# Privacy models
# ---------------------------------------------------------------------------


@register_model("bt", aliases=("(B,t)-privacy", "bt-privacy"))
def build_bt(
    *,
    b: float | Bandwidth = 0.3,
    t: float = 0.2,
    kernel: str = "epanechnikov",
    measure: DistanceMeasure | None = None,
    inference: str = "omega",
    smoothing_bandwidth: float = 0.5,
    max_cells: int = DEFAULT_MAX_CELLS,
) -> BTPrivacy:
    """(B,t)-privacy: bound the knowledge gain of the Adv(B) adversary by t."""
    return BTPrivacy(
        b,
        t,
        kernel=kernel,
        measure=measure,
        inference=inference,
        smoothing_bandwidth=smoothing_bandwidth,
        max_cells=max_cells,
    )


@register_model("skyline-bt", aliases=("skyline-(B,t)-privacy",))
def build_skyline_bt(
    *,
    points: list[tuple[float | Bandwidth, float]] | None = None,
    b: float | Bandwidth = 0.3,
    t: float = 0.2,
    kernel: str = "epanechnikov",
    inference: str = "omega",
    max_cells: int = DEFAULT_MAX_CELLS,
) -> SkylineBTPrivacy:
    """Skyline (B,t)-privacy: enforce several (B_i, t_i) pairs at once."""
    skyline = list(points) if points is not None else [(b, t)]
    return SkylineBTPrivacy(skyline, kernel=kernel, inference=inference, max_cells=max_cells)


@register_model("distinct-l", aliases=("distinct-l-diversity",))
def build_distinct_l(*, l: float = 4) -> DistinctLDiversity:
    """Distinct l-diversity: at least l distinct sensitive values per group."""
    return DistinctLDiversity(_integral(l, "l", "distinct-l"))


@register_model("probabilistic-l", aliases=("probabilistic-l-diversity",))
def build_probabilistic_l(*, l: float = 4.0) -> ProbabilisticLDiversity:
    """Probabilistic l-diversity: most frequent sensitive share at most 1/l."""
    return ProbabilisticLDiversity(l)


@register_model("entropy-l", aliases=("entropy-l-diversity",))
def build_entropy_l(*, l: float = 4.0) -> EntropyLDiversity:
    """Entropy l-diversity: group sensitive entropy at least log(l)."""
    return EntropyLDiversity(l)


@register_model("t-closeness")
def build_t_closeness(*, t: float = 0.2, use_hierarchy: bool = True) -> TCloseness:
    """t-closeness: group sensitive distribution within EMD t of the table's."""
    return TCloseness(t, use_hierarchy=use_hierarchy)


@register_model("k-anonymity")
def build_k_anonymity(*, k: float = 4) -> KAnonymity:
    """k-anonymity: every group holds at least k tuples (identity disclosure)."""
    return KAnonymity(_integral(k, "k", "k-anonymity"))


# ---------------------------------------------------------------------------
# Anonymization algorithms
# ---------------------------------------------------------------------------
#
# An algorithm takes the (already prepared) privacy requirement and returns
# the partition plus a method string for the release; the wrapper in
# repro.anonymize.anonymizer adds the timing and builds the release object.


@register_algorithm("mondrian")
def run_mondrian(
    table: MicrodataTable,
    requirement: PrivacyModel,
    *,
    split_strategy: str = "widest",
    spill: bool = False,
) -> tuple[list[np.ndarray], str]:
    """Mondrian multidimensional generalization (the paper's algorithm).

    The default ``"widest"`` strategy runs frontier-synchronously (one batched
    requirement check per round, groups in deterministic left-to-right tree
    order); ``"dfs"`` opts back into the legacy depth-first traversal, which
    cuts the identical partition in the legacy emission order.

    ``spill=True`` builds the value matrix chunk by chunk into an unlinked
    temp-file memmap (:func:`~repro.anonymize.mondrian.spilled_value_matrix`)
    instead of resident RAM; the partition is identical, only the recursion's
    working set shrinks to the frontier's row indices plus the touched pages.
    """
    mondrian = MondrianAnonymizer(requirement, split_strategy=split_strategy)
    values = spilled_value_matrix(as_source(table)) if spill else None
    groups = mondrian.partition(table, prepare=False, values=values)
    return groups, f"mondrian[{requirement.describe()}]"


@register_algorithm("anatomy")
def run_anatomy(
    table: MicrodataTable,
    requirement: PrivacyModel,
    *,
    anatomy_l: int | None = None,
) -> tuple[list[np.ndarray], str]:
    """Anatomy bucketization (l-diversity only; other requirement misses are surfaced)."""
    if anatomy_l is None:
        raise AnonymizationError("anatomy requires the anatomy_l parameter")
    groups = anatomy_partition(table, anatomy_l)
    bad_groups = [group for group in groups if not requirement.is_satisfied(group)]
    method = f"anatomy[l={anatomy_l}]"
    if bad_groups:
        # Anatomy targets l-diversity only; surface (don't hide) any requirement misses.
        method = f"anatomy[l={anatomy_l}, {len(bad_groups)} groups exceed model]"
    return groups, method


def _validate_anatomy_options(table: MicrodataTable, *, anatomy_l: int | None = None) -> None:
    # Hook called by anonymize() before the expensive model preparation, so a
    # missing anatomy_l fails fast instead of after minutes of kernel estimation.
    if anatomy_l is None:
        raise AnonymizationError("anatomy requires the anatomy_l parameter")


run_anatomy.validate = _validate_anatomy_options


# ---------------------------------------------------------------------------
# Prior estimators
# ---------------------------------------------------------------------------
#
# Estimators share the signature (table, **params); parameters they do not
# declare are filtered out by Registry.build_filtered, so the kernel
# estimator's bandwidth knobs do not leak into the parameter-free baselines.


@register_prior_estimator("kernel")
def estimate_kernel_prior(
    table: MicrodataTable,
    *,
    b: float | Bandwidth = 0.3,
    config: EstimatorConfig | None = None,
    kernel: str | None = None,
    batch_size: int | None = None,
    distance_matrices: dict[str, np.ndarray] | None = None,
    max_cells: int | None = None,
    jobs: int | None = None,
):
    """Nadaraya-Watson kernel regression prior (Section II-B, the paper's estimator).

    Estimation runs through the factored contraction backend of
    :mod:`repro.knowledge.backend`; ``max_cells`` bounds its blocked
    contraction (``0`` selects the flat reference sweep) and ``jobs`` sizes
    its worker pool (``None`` resolves to ``REPRO_JOBS`` /
    ``os.cpu_count()``; results are bitwise identical at any thread count).
    """
    return kernel_prior(
        table,
        b,
        config=config,
        kernel=kernel,
        batch_size=batch_size,
        distance_matrices=distance_matrices,
        max_cells=max_cells,
        jobs=jobs,
    )


@register_prior_estimator("uniform")
def estimate_uniform_prior(table: MicrodataTable):
    """The ignorant adversary assumed by l-diversity (inconsistent with the data)."""
    return uniform_prior(table)


@register_prior_estimator("overall")
def estimate_overall_prior(table: MicrodataTable):
    """The t-closeness adversary: the overall sensitive distribution everywhere."""
    return overall_prior(table)


@register_prior_estimator("mle")
def estimate_mle_prior(table: MicrodataTable):
    """Maximum-likelihood estimator conditioning on the exact QI combination."""
    return mle_prior(table)


# ---------------------------------------------------------------------------
# Distance measures
# ---------------------------------------------------------------------------
#
# Measure factories take the table so they can build the sensitive-attribute
# ground-distance matrix when they need one.


@register_measure("smoothed-js")
def build_smoothed_js(
    table: MicrodataTable,
    *,
    bandwidth: float = 0.5,
    kernel: str = "epanechnikov",
) -> SmoothedJSDivergence:
    """The paper's measure: kernel smoothing over the sensitive domain, then JS."""
    return sensitive_distance_measure(table, bandwidth=bandwidth, kernel=kernel)


@register_measure("js")
def build_js(table: MicrodataTable) -> JSDivergence:
    """Jensen-Shannon divergence (no semantic awareness)."""
    return JSDivergence()


@register_measure("kl")
def build_kl(table: MicrodataTable) -> KLDivergence:
    """Kullback-Leibler divergence (fails zero-probability definability)."""
    return KLDivergence()


@register_measure("emd")
def build_emd(table: MicrodataTable) -> EMDDistance:
    """Earth Mover's Distance over the sensitive ground-distance matrix."""
    return EMDDistance(ground_distance=attribute_distance_matrix(table.sensitive_domain()))


@register_measure("hierarchical-emd")
def build_hierarchical_emd(table: MicrodataTable) -> DistanceMeasure:
    """Closed-form EMD over the sensitive taxonomy (falls back to EMD without one)."""
    domain = table.sensitive_domain()
    taxonomy = domain.attribute.taxonomy
    if taxonomy is None:
        return EMDDistance(ground_distance=attribute_distance_matrix(domain))
    leaf_order = [str(value) for value in domain.values.tolist()]
    return HierarchicalEMD(taxonomy, leaf_order)
