"""Named, decorator-based plugin registries.

Every extension point of the library - privacy models, anonymization
algorithms, prior estimators and distance measures - is a :class:`Registry`
of named factories.  Registering a factory makes it available *everywhere* at
once: the CLI derives its ``--model`` choices from :data:`MODELS`, the
:func:`repro.anonymize.anonymizer.anonymize` wrapper dispatches through
:data:`ALGORITHMS`, and :class:`repro.api.session.Session` resolves prior
estimators and measures by name.  Adding a new model is a single decorated
function instead of a cross-cutting edit::

    from repro.api import register_model

    @register_model("my-model", summary="toy requirement")
    def build_my_model(*, threshold=0.5):
        return MyModel(threshold)

Factories are keyword-only callables; :meth:`Registry.parameters` exposes the
accepted keyword names so callers holding a superset of parameters (the CLI's
``--b/--t/--l/--k`` flags, a sweep grid row) can filter before calling - see
:meth:`Registry.build_filtered`.

The built-in entries are registered by :mod:`repro.api.builtins`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro.exceptions import (
    AnonymizationError,
    KnowledgeError,
    PrivacyModelError,
    RegistryError,
)


@dataclass(frozen=True)
class RegistryEntry:
    """One registered factory: canonical name, aliases and a short summary."""

    name: str
    factory: Callable[..., Any]
    aliases: tuple[str, ...]
    summary: str


class Registry:
    """A mapping from names to factories with decorator-based registration.

    Parameters
    ----------
    kind:
        Human-readable description of what the registry holds (used in error
        messages, e.g. ``"privacy model"``).
    error_class:
        Exception raised on unknown-name lookups (defaults to
        :class:`~repro.exceptions.RegistryError`).  Duplicate registrations
        always raise :class:`~repro.exceptions.RegistryError`.
    """

    def __init__(self, kind: str, *, error_class: type[Exception] = RegistryError):
        self.kind = kind
        self.error_class = error_class
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, str] = {}

    # -- registration -----------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        aliases: tuple[str, ...] = (),
        summary: str | None = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering a factory under ``name`` (plus optional aliases)."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"a {self.kind} name must be a non-empty string")

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            for candidate in (name, *aliases):
                if candidate in self._entries or candidate in self._aliases:
                    raise RegistryError(
                        f"{self.kind} {candidate!r} is already registered"
                    )
            doc = summary
            if doc is None:
                doc = (inspect.getdoc(factory) or "").strip().splitlines()
                doc = doc[0] if doc else ""
            entry = RegistryEntry(
                name=name, factory=factory, aliases=tuple(aliases), summary=doc
            )
            self._entries[name] = entry
            for alias in aliases:
                self._aliases[alias] = name
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests exercising plugin lifecycles)."""
        entry = self.entry(name)
        del self._entries[entry.name]
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # -- lookup -----------------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        """The :class:`RegistryEntry` for ``name`` (aliases resolve to it)."""
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise self.error_class(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            ) from None

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``."""
        return self.entry(name).factory

    def build(self, name: str, **params: Any) -> Any:
        """Instantiate the ``name`` entry with exactly ``params``."""
        return self.get(name)(**params)

    def parameters(self, name: str) -> tuple[str, ...]:
        """Keyword parameter names accepted by the ``name`` factory."""
        signature = inspect.signature(self.get(name))
        return tuple(
            parameter.name
            for parameter in signature.parameters.values()
            if parameter.kind
            in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
        )

    def keyword_parameters(self, name: str) -> tuple[str, ...]:
        """Only the keyword-*only* parameters of the ``name`` factory.

        This is the right filter for factories with positional context
        arguments (an algorithm's ``(table, requirement, *, ...)``): the
        positional names must not be supplied - or validated - as options.
        """
        signature = inspect.signature(self.get(name))
        return tuple(
            parameter.name
            for parameter in signature.parameters.values()
            if parameter.kind == parameter.KEYWORD_ONLY
        )

    def build_filtered(self, name: str, params: Mapping[str, Any]) -> Any:
        """Instantiate ``name``, silently dropping parameters it does not accept.

        This is the CLI/sweep entry point: the caller holds one parameter
        superset (``b``, ``t``, ``l``, ...) and each model picks what it
        understands.  Library code should prefer the strict :meth:`build`.
        """
        accepted = set(self.parameters(name))
        return self.build(name, **{k: v for k, v in params.items() if k in accepted})

    # -- introspection ----------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order (aliases excluded)."""
        return tuple(self._entries)

    def summaries(self) -> dict[str, str]:
        """Mapping of canonical name to one-line summary (for ``--help`` text)."""
        return {name: entry.summary for name, entry in self._entries.items()}

    def __contains__(self, name: object) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self._entries)})"


#: Privacy models (``anonymize``'s requirement, the CLI's ``--model`` choices).
MODELS = Registry("privacy model", error_class=PrivacyModelError)
#: Anonymization algorithms (Mondrian generalization, Anatomy bucketization, ...).
ALGORITHMS = Registry("anonymization algorithm", error_class=AnonymizationError)
#: Prior-belief estimators (kernel regression and the Section II-D baselines).
PRIOR_ESTIMATORS = Registry("prior estimator", error_class=KnowledgeError)
#: Distance measures ``D[P, Q]`` between prior and posterior beliefs.
MEASURES = Registry("distance measure", error_class=PrivacyModelError)

register_model = MODELS.register
register_algorithm = ALGORITHMS.register
register_prior_estimator = PRIOR_ESTIMATORS.register
register_measure = MEASURES.register
