"""Sessions: cached preparation shared across anonymize -> audit -> report runs.

Estimating the adversary's background knowledge (the kernel prior regression)
dominates the cost of publishing under (B,t)-privacy - the paper's Figure 4(b)
reports it separately from the partitioning time for exactly that reason.  A
:class:`Session` binds one table and memoises every expensive preparation
artefact so repeated runs - parameter sweeps, figure reproductions, serving
many release requests for one dataset - pay the cost once:

* **kernel priors**, keyed by ``(table_id, estimator, kernel, bandwidth)``;
* **attribute distance matrices** (bandwidth-independent, shared between
  estimators with different ``b`` values);
* **distance measures** and **audit adversaries**, keyed by their parameters.

Typical use::

    session = Session(table)
    bundle = session.pipeline().model("bt", b=0.3, t=0.2).with_k(4).audit().run()
    other  = session.pipeline().model("bt", b=0.3, t=0.1).with_k(4).audit().run()
    session.stats.prior_estimations   # 1 - the second run hit the cache

``session.stats`` counts estimations and cache hits, which the tests use to
assert that preparation really is shared.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

from repro.anonymize.anonymizer import AnonymizationResult, anonymize
from repro.api.registry import MEASURES, MODELS, PRIOR_ESTIMATORS
from repro.audit.engine import SkylineAuditEngine, SkylineAuditReport
from repro.data.distance import attribute_distance_matrix
from repro.data.table import MicrodataTable
from repro.knowledge.backend import EstimatorConfig, backend_name, resolve_config
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.parallel import parse_jobs
from repro.knowledge.prior import PriorBeliefs
from repro.obs.tracing import Tracer
from repro.privacy.disclosure import AttackResult, BackgroundKnowledgeAttack
from repro.privacy.measures import DistanceMeasure
from repro.privacy.models import BTPrivacy, PrivacyModel
from repro.stats import CounterSet

from repro.api import builtins as _builtins  # noqa: F401  (registers the built-in entries)


class SessionStats(CounterSet):
    """Counters for the session's preparation caches.

    A :class:`~repro.stats.CounterSet` with a fixed field list - the same
    counting primitive the serving daemon's metrics are built on, so there is
    exactly one counter implementation in the codebase.
    """

    _FIELDS = (
        "prior_estimations",
        "prior_cache_hits",
        "measure_builds",
        "measure_cache_hits",
        "attack_builds",
        "attack_cache_hits",
    )

    def __init__(self) -> None:
        super().__init__(self._FIELDS)


@dataclass(frozen=True)
class _PriorKey:
    table_id: int
    estimator: str
    kernel: str | None
    bandwidth: tuple[tuple[str, float], ...] | None
    # Estimator-backend identity: differing backend configurations (the
    # factored/flat switch and the max_cells contraction budget) must never
    # collide on one cache entry - their priors differ at round-off level
    # and their costs differ wildly.  None for estimators without the knob.
    backend: str | None = None
    max_cells: int | None = None


class Session:
    """A cache-backed workspace for anonymizing and auditing one table.

    Parameters
    ----------
    table:
        The microdata table every pipeline, sweep and audit of this session
        works on.  A chunked :class:`~repro.data.source.TableSource` (e.g.
        from :func:`~repro.data.io.open_table`) is accepted and materialised
        through its memory-frugal codes-backed path.
    config:
        An :class:`~repro.knowledge.backend.EstimatorConfig` carrying every
        estimation knob (kernel, cell budget, batch size, contraction
        threads, fit chunk size) end to end; the ``kernel``/``max_cells``/
        ``jobs`` keywords below are back-compat overrides layered on top.
    kernel:
        Default kernel for prior estimation and smoothing (the paper uses
        Epanechnikov throughout).
    max_cells:
        Default cell budget for the factored prior-estimation backend (see
        :class:`~repro.knowledge.backend.FactoredPriorBackend`); part of the
        prior cache key, overridable per :meth:`priors` call.
    jobs:
        Worker threads for the backend's parallel contraction, handed to
        every estimator, audit engine and publisher this session creates
        (``None`` resolves to ``REPRO_JOBS`` / ``os.cpu_count()``).
        Deliberately *not* part of the prior cache key: priors are bitwise
        identical at any thread count, so differing ``jobs`` may share one
        cache entry.
    """

    def __init__(
        self,
        table: MicrodataTable,
        *,
        config: EstimatorConfig | None = None,
        kernel: str | None = None,
        max_cells: int | None = None,
        jobs: int | None = None,
    ):
        from repro.data.source import as_table

        self.table = as_table(table)
        self.config = resolve_config(config, kernel=kernel, max_cells=max_cells, jobs=jobs)
        self.default_kernel = self.config.kernel
        self.max_cells = int(self.config.max_cells)
        if self.config.jobs is not None:
            parse_jobs(self.config.jobs)
        self.jobs = self.config.jobs
        self.stats = SessionStats()
        self._priors: dict[_PriorKey, PriorBeliefs] = {}
        self._distance_matrices: dict[str, np.ndarray] = {}
        self._measures: dict[tuple, DistanceMeasure] = {}
        self._attacks: dict[tuple, BackgroundKnowledgeAttack] = {}
        self._sensitive_codes: np.ndarray | None = None

    @property
    def table_id(self) -> int:
        """Identity of the bound table (part of every prior cache key)."""
        return id(self.table)

    # -- cached preparation -----------------------------------------------------------
    def bandwidth(self, b: float | Bandwidth) -> Bandwidth:
        """Normalise a scalar ``b`` to a uniform per-QI :class:`Bandwidth`."""
        if isinstance(b, Bandwidth):
            return b
        return Bandwidth.uniform(self.table.quasi_identifier_names, float(b))

    def distance_matrix(self, attribute_name: str) -> np.ndarray:
        """The Section II-C distance matrix of one attribute (computed once)."""
        matrix = self._distance_matrices.get(attribute_name)
        if matrix is None:
            matrix = attribute_distance_matrix(self.table.domain(attribute_name))
            self._distance_matrices[attribute_name] = matrix
        return matrix

    def _kernel_prior_key(
        self, bandwidth: Bandwidth, kernel: str, max_cells: int
    ) -> _PriorKey:
        """The cache key of one kernel-estimated prior (backend config included)."""
        return _PriorKey(
            table_id=self.table_id,
            estimator="kernel",
            kernel=kernel,
            bandwidth=bandwidth.items(),
            backend=backend_name(max_cells),
            max_cells=int(max_cells),
        )

    def priors(
        self,
        b: float | Bandwidth | None = None,
        *,
        estimator: str = "kernel",
        kernel: str | None = None,
        max_cells: int | None = None,
    ) -> PriorBeliefs:
        """Prior beliefs of the ``Adv(b)`` adversary, estimated at most once.

        ``estimator`` names an entry of the prior-estimator registry
        (``"kernel"`` needs ``b``; the ``"uniform"``/``"overall"``/``"mle"``
        baselines ignore it).  ``max_cells`` overrides the session's backend
        cell budget for estimators that take it; the backend configuration is
        part of the cache key, so differing budgets never collide.
        """
        kernel = kernel or self.default_kernel
        max_cells = self.max_cells if max_cells is None else int(max_cells)
        # Parameters the estimator ignores must not fragment the cache: the
        # uniform/overall/mle baselines are keyed independently of b/kernel.
        accepted = set(PRIOR_ESTIMATORS.keyword_parameters(estimator))
        bandwidth = self.bandwidth(b) if b is not None and "b" in accepted else None
        takes_max_cells = "max_cells" in accepted
        key = _PriorKey(
            table_id=self.table_id,
            estimator=estimator,
            kernel=kernel if "kernel" in accepted else None,
            bandwidth=bandwidth.items() if bandwidth is not None else None,
            backend=backend_name(max_cells) if takes_max_cells else None,
            max_cells=max_cells if takes_max_cells else None,
        )
        cached = self._priors.get(key)
        if cached is not None:
            self.stats.prior_cache_hits += 1
            return cached
        params: dict[str, Any] = {}
        if "b" in accepted:
            if bandwidth is None:
                raise PRIOR_ESTIMATORS.error_class(
                    f"prior estimator {estimator!r} requires a bandwidth b"
                )
            params["b"] = bandwidth
        if "kernel" in accepted:
            params["kernel"] = kernel
        if takes_max_cells:
            params["max_cells"] = max_cells
        if "jobs" in accepted:
            params["jobs"] = self.jobs
        if "distance_matrices" in accepted:
            params["distance_matrices"] = {
                name: self.distance_matrix(name)
                for name in self.table.quasi_identifier_names
            }
        priors = PRIOR_ESTIMATORS.get(estimator)(self.table, **params)
        self.stats.prior_estimations += 1
        self._priors[key] = priors
        return priors

    def sensitive_codes(self) -> np.ndarray:
        """The table's sensitive value codes (computed once)."""
        if self._sensitive_codes is None:
            self._sensitive_codes = self.table.sensitive_codes()
        return self._sensitive_codes

    def measure(
        self,
        name: str = "smoothed-js",
        *,
        bandwidth: float = 0.5,
        kernel: str | None = None,
    ) -> DistanceMeasure:
        """A distance measure from the measure registry (built at most once)."""
        kernel = kernel or self.default_kernel
        key = (name, bandwidth, kernel)
        cached = self._measures.get(key)
        if cached is not None:
            self.stats.measure_cache_hits += 1
            return cached
        # Measure factories take the table as their positional argument; filter
        # the keyword superset down to what this measure accepts.
        accepted = set(MEASURES.keyword_parameters(name))
        params = {k: v for k, v in {"bandwidth": bandwidth, "kernel": kernel}.items() if k in accepted}
        measure = MEASURES.get(name)(self.table, **params)
        self.stats.measure_builds += 1
        self._measures[key] = measure
        return measure

    # -- model construction and preparation -------------------------------------------
    def build_model(self, model: str | PrivacyModel, **params: Any) -> PrivacyModel:
        """Resolve a model name through the registry (instances pass through).

        Models that take the estimator cell budget default to the *session's*
        ``max_cells`` (instead of the factory default), so the budget a
        session was configured with governs its models' prior estimation and
        its audits alike; an explicit ``max_cells`` parameter still wins.
        """
        if isinstance(model, PrivacyModel):
            if params:
                raise MODELS.error_class(
                    "model parameters can only be given with a model *name*, "
                    "not an already-constructed instance"
                )
            return model
        if (
            "max_cells" not in params
            and model in MODELS
            and "max_cells" in MODELS.keyword_parameters(model)
        ):
            params["max_cells"] = self.max_cells
        return MODELS.build(model, **params)

    def prepare_model(self, model: PrivacyModel) -> PrivacyModel:
        """Inject cached priors and measures into every (B,t) component of ``model``.

        After this, ``model.prepare(table)`` skips the kernel estimation (the
        dominant preparation cost) for components whose priors the session has
        already computed.
        """
        domain_size = self.table.sensitive_domain().size
        for component in model.components():
            if isinstance(component, BTPrivacy) and not component.has_priors:
                priors = self.priors(
                    component.b, kernel=component.kernel, max_cells=component.max_cells
                )
                component.set_priors(priors, self.sensitive_codes(), domain_size)
                if component.measure is None:
                    component.measure = self.measure(
                        "smoothed-js",
                        bandwidth=component.smoothing_bandwidth,
                        kernel=component.kernel,
                    )
        return model

    # -- workflows --------------------------------------------------------------------
    def anonymize(
        self,
        model: str | PrivacyModel,
        *,
        params: Mapping[str, Any] | None = None,
        k: int | None = None,
        algorithm: str = "mondrian",
        **options: Any,
    ) -> AnonymizationResult:
        """:func:`repro.anonymize.anonymizer.anonymize` with cached preparation.

        ``prepare_seconds`` includes the session-side preparation (prior
        estimation on a cache miss, ~0 on a hit), so the reported timings
        stay comparable with the plain :func:`anonymize` call.
        """
        requirement = self.build_model(model, **(params or {}))
        start = time.perf_counter()
        self.prepare_model(requirement)
        injected = time.perf_counter() - start
        result = anonymize(self.table, requirement, algorithm=algorithm, k=k, **options)
        result.prepare_seconds += injected
        return result

    def attack(
        self,
        groups: list[np.ndarray],
        *,
        b_prime: float = 0.3,
        threshold: float,
        kernel: str | None = None,
        method: str = "omega",
    ) -> AttackResult:
        """Audit a release with ``Adv(b')``, reusing cached priors and adversaries."""
        kernel = kernel or self.default_kernel
        key = (float(b_prime), kernel, method)
        adversary = self._attacks.get(key)
        if adversary is None:
            adversary = BackgroundKnowledgeAttack(
                self.table,
                b_prime,
                kernel=kernel,
                method=method,
                measure=self.measure("smoothed-js", kernel=kernel),
                priors=self.priors(b_prime, kernel=kernel),
            )
            self.stats.attack_builds += 1
            self._attacks[key] = adversary
        else:
            self.stats.attack_cache_hits += 1
        return adversary.attack(groups, threshold)

    def audit_skyline(
        self,
        groups: list[np.ndarray],
        skyline: Iterable[tuple[float | Bandwidth, float]],
        *,
        method: str = "omega",
        kernel: str | None = None,
        processes: int | None = None,
        chunk_rows: int | None = None,
    ) -> SkylineAuditReport:
        """Audit a release against a whole skyline ``{(B_i, t_i)}`` in one pass.

        Priors already held by the session (from anonymization or earlier
        audits) are reused; the remaining bandwidths are estimated together by
        one :class:`~repro.knowledge.prior.BatchedKernelPriorEstimator` pass
        and enter the session cache, so a later ``session.attack(b_prime=B_i)``
        is a cache hit.
        """
        kernel = kernel or self.default_kernel
        points = [(self.bandwidth(b), float(t)) for b, t in skyline]
        priors: list[PriorBeliefs | None] = []
        keys: list[_PriorKey] = []
        for bandwidth, _ in points:
            key = self._kernel_prior_key(bandwidth, kernel, self.max_cells)
            keys.append(key)
            cached = self._priors.get(key)
            if cached is not None:
                self.stats.prior_cache_hits += 1
            priors.append(cached)
        missing = [i for i, prior in enumerate(priors) if prior is None]
        engine = SkylineAuditEngine(
            self.table,
            points,
            config=resolve_config(self.config, kernel=kernel),
            method=method,
            measure=self.measure("smoothed-js", kernel=kernel),
            priors=priors,
            chunk_rows=chunk_rows,
            distance_matrices={
                name: self.distance_matrix(name)
                for name in self.table.quasi_identifier_names
            },
        )
        if missing:
            # One batched pass over every missing bandwidth (duplicates are
            # computed once inside the engine's estimator but cached under
            # each key); the engine's own prepare() does the work so there is
            # exactly one estimation path.
            estimated = engine.priors
            unique_keys = set()
            for index in missing:
                if keys[index] not in self._priors:
                    self._priors[keys[index]] = estimated[index]
                unique_keys.add(keys[index])
            self.stats.prior_estimations += len(unique_keys)
        return engine.audit(groups, processes=processes)

    def stream(
        self,
        model: str | PrivacyModel,
        *,
        params: Mapping[str, Any] | None = None,
        skyline: Iterable[tuple[float | Bandwidth, float]] | None = None,
        k: int | None = None,
        method: str = "omega",
        split_strategy: str = "widest",
        refine_factor: float = 1.5,
        compact_drift: float = 0.5,
        max_cells: int | None = None,
        store_dir: str | None = None,
        tracer: Tracer | None = None,
    ) -> "IncrementalPublisher":
        """An :class:`~repro.stream.IncrementalPublisher` seeded with this table.

        The session's table becomes version 0 of a full-lifecycle stream: the
        returned publisher has already published the seed release and accepts
        ``append(batch)``, ``delete(rows)`` and ``update(rows, batch)`` calls
        that republish incrementally (exact additive/negative prior deltas,
        dirty-leaf re-splits and merge-ups, delta skyline audits, periodic
        full-refine compaction once ``compact_drift`` worth of deferred
        maintenance accumulates).  The publisher shares the session's cached
        distance matrices; its own prior state is incremental and therefore
        private to the stream.

        ``skyline`` defaults to the ``(b, t)`` pairs of the model's (B,t)
        components, mirroring :meth:`Pipeline.audit_skyline`; ``max_cells``
        defaults to the session's backend cell budget.  ``store_dir`` makes
        the publisher's :class:`~repro.stream.ReleaseStore` disk-backed, so
        :meth:`~repro.stream.IncrementalPublisher.resume` can later continue
        the stream from the directory.  ``tracer`` hands the publisher a
        specific :class:`~repro.obs.tracing.Tracer` (e.g. a disabled one, or
        one whose root span should enclose the whole stream).
        """
        from repro.stream import IncrementalPublisher

        requirement = self.build_model(model, **(params or {}))
        publisher = IncrementalPublisher(
            self.table,
            requirement,
            skyline=skyline,
            k=k,
            config=resolve_config(self.config, max_cells=max_cells),
            method=method,
            split_strategy=split_strategy,
            refine_factor=refine_factor,
            compact_drift=compact_drift,
            distance_matrices={
                name: self.distance_matrix(name)
                for name in self.table.quasi_identifier_names
            },
            store_path=store_dir,
            tracer=tracer,
        )
        publisher.publish()
        return publisher

    def pipeline(self) -> "Pipeline":
        """A fluent :class:`~repro.api.pipeline.Pipeline` bound to this session."""
        from repro.api.pipeline import Pipeline

        return Pipeline(session=self)

    def sweep(
        self,
        specs: Iterable["SweepSpec | Mapping[str, Any]"],
        *,
        processes: int | None = None,
        on_error: str = "raise",
    ) -> "SweepOutcome":
        """Run a grid of pipeline configurations (see :mod:`repro.api.sweep`)."""
        from repro.api.sweep import run_sweep

        return run_sweep(self, specs, processes=processes, on_error=on_error)
