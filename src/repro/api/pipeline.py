"""The fluent pipeline: anonymize -> audit -> report in one composable run.

The paper's workflow is a pipeline - estimate the adversary's priors,
anonymize under a privacy requirement, then audit the disclosure risk and the
remaining utility.  :class:`Pipeline` expresses it as a chainable builder::

    bundle = (
        Pipeline(table)
        .model("bt", b=0.3, t=0.2)
        .with_k(4)
        .algorithm("mondrian")
        .audit(b_prime=0.3)
        .run()
    )
    bundle.release.n_groups
    bundle.attack.vulnerable_tuples
    bundle.utility["discernibility_metric"]
    bundle.timings["prepare_seconds"]

Model and algorithm names resolve through the registries of
:mod:`repro.api.registry`; a pipeline built from a :class:`Session` (or via
``session.pipeline()``) shares that session's preparation caches, so the
kernel prior estimation - the dominant cost - runs at most once per
``(bandwidth, kernel)`` no matter how many pipelines run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.anonymize.anonymizer import AnonymizationResult
from repro.obs.tracing import Tracer, current_tracer
from repro.anonymize.partition import AnonymizedRelease
from repro.api.session import Session
from repro.audit.engine import SkylineAuditReport
from repro.data.table import MicrodataTable
from repro.exceptions import PipelineError
from repro.privacy.disclosure import AttackResult
from repro.privacy.models import BTPrivacy, PrivacyModel
from repro.utility.metrics import utility_report


@dataclass
class ReleaseBundle:
    """Everything one pipeline run produces: release, audit, utility, timings."""

    release: AnonymizedRelease
    result: AnonymizationResult
    model_description: str
    attack: AttackResult | None = None
    skyline_audit: SkylineAuditReport | None = None
    utility: dict[str, float] | None = None
    timings: dict[str, float] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """Flat summary dictionary (one sweep-table row)."""
        row: dict[str, Any] = {
            "model": self.model_description,
            "method": self.release.method,
            "n_groups": self.release.n_groups,
            "average_group_size": self.release.average_group_size(),
            "prepare_seconds": self.timings.get("prepare_seconds", 0.0),
            "partition_seconds": self.timings.get("partition_seconds", 0.0),
            "total_seconds": self.timings.get("total_seconds", 0.0),
        }
        if self.attack is not None:
            row["vulnerable_tuples"] = self.attack.vulnerable_tuples
            row["worst_case_risk"] = self.attack.worst_case_risk
        if self.skyline_audit is not None:
            row["skyline_satisfied"] = self.skyline_audit.satisfied
            row["skyline_worst_margin"] = self.skyline_audit.worst_entry().margin
        if self.utility is not None:
            row["discernibility_metric"] = self.utility["discernibility_metric"]
            row["global_certainty_penalty"] = self.utility["global_certainty_penalty"]
        return row

    def render(self) -> str:
        """Human-readable multi-line report of this bundle."""
        lines = [
            f"model: {self.model_description}",
            f"method: {self.release.method}",
            f"groups: {self.release.n_groups} (avg size {self.release.average_group_size():.1f})",
            "timings: "
            + ", ".join(f"{name}={value:.3f}s" for name, value in self.timings.items()),
        ]
        if self.attack is not None:
            lines.append(
                f"audit Adv(b'={self.attack.adversary_b:g}): "
                f"{self.attack.vulnerable_tuples} vulnerable tuples, "
                f"worst-case gain {self.attack.worst_case_risk:.4f} "
                f"(threshold {self.attack.threshold:g})"
            )
        if self.skyline_audit is not None:
            lines.append(self.skyline_audit.render())
        if self.utility is not None:
            lines.append(
                f"utility: DM={self.utility['discernibility_metric']:.0f} "
                f"GCP={self.utility['global_certainty_penalty']:.0f}"
            )
        return "\n".join(lines)


class Pipeline:
    """Chainable builder for one anonymize -> audit -> report run.

    Construct from a table - a :class:`~repro.data.table.MicrodataTable` or
    a chunked :class:`~repro.data.source.TableSource` (an ephemeral session is
    created, materialising sources through the codes-backed path) - or from an
    existing :class:`~repro.api.session.Session` to share preparation caches::

        Pipeline(table).model("bt", b=0.3, t=0.2).with_k(4).run()
        session.pipeline().model("t-closeness", t=0.15).run()
    """

    def __init__(self, table: "MicrodataTable | Any | None" = None, *, session: Session | None = None):
        if session is None:
            if table is None:
                raise PipelineError("Pipeline requires a table or a session")
            session = Session(table)
        elif table is not None and table is not session.table:
            raise PipelineError("Pipeline table and session table differ; pass only one")
        self.session = session
        self._model: str | PrivacyModel | None = None
        self._model_params: dict[str, Any] = {}
        self._k: int | None = None
        self._algorithm: str = "mondrian"
        self._algorithm_options: dict[str, Any] = {}
        self._audit: dict[str, Any] | None = None
        self._skyline_audit: dict[str, Any] | None = None
        self._utility: bool = True

    # -- builder steps ----------------------------------------------------------------
    def model(self, model: str | PrivacyModel, **params: Any) -> "Pipeline":
        """The privacy requirement: a registry name plus parameters, or an instance."""
        self._model = model
        self._model_params = dict(params)
        return self

    def with_k(self, k: int | None) -> "Pipeline":
        """Conjoin a k-anonymity requirement (the paper's identity-disclosure guard)."""
        self._k = k
        return self

    def algorithm(self, name: str, **options: Any) -> "Pipeline":
        """The anonymization algorithm (registry name) and its options."""
        self._algorithm = name
        self._algorithm_options = dict(options)
        return self

    def audit(
        self,
        *,
        b_prime: float = 0.3,
        threshold: float | None = None,
        kernel: str | None = None,
        method: str = "omega",
    ) -> "Pipeline":
        """Replay the background-knowledge attack of ``Adv(b')`` on the release.

        ``threshold`` defaults to the privacy model's own ``t`` when it has
        one (the natural "did the model keep its promise" audit).
        """
        self._audit = {
            "b_prime": float(b_prime),
            "threshold": threshold,
            "kernel": kernel,
            "method": method,
        }
        return self

    def audit_skyline(
        self,
        skyline: list[tuple[Any, float]] | None = None,
        *,
        method: str = "omega",
        processes: int | None = None,
        chunk_rows: int | None = None,
    ) -> "Pipeline":
        """Audit the release against a whole skyline ``{(B_i, t_i)}`` of adversaries.

        With ``skyline=None`` the points are taken from the privacy model
        itself (every (B,t) component contributes its ``(b, t)`` pair) - the
        natural "did every promised adversary stay below budget" audit for
        :class:`~repro.privacy.models.SkylineBTPrivacy` releases.
        """
        self._skyline_audit = {
            "skyline": list(skyline) if skyline is not None else None,
            "method": method,
            "processes": processes,
            "chunk_rows": chunk_rows,
        }
        return self

    def with_utility(self, enabled: bool = True) -> "Pipeline":
        """Toggle the utility report (on by default)."""
        self._utility = bool(enabled)
        return self

    # -- execution --------------------------------------------------------------------
    def _resolve_threshold(self, model: PrivacyModel, configured: float | None) -> float:
        if configured is not None:
            return float(configured)
        for component in model.components():
            t = getattr(component, "t", None)
            if t is not None:
                return float(t)
        raise PipelineError(
            "audit threshold not given and the model has no t parameter; "
            "pass audit(threshold=...)"
        )

    def _resolve_skyline(
        self, model: PrivacyModel, configured: list[tuple[Any, float]] | None
    ) -> list[tuple[Any, float]]:
        if configured is not None:
            return configured
        points = [
            (component.b, component.t)
            for component in model.components()
            if isinstance(component, BTPrivacy)
        ]
        if not points:
            raise PipelineError(
                "audit_skyline() without points requires a model with (B,t) "
                "components; pass audit_skyline([(b1, t1), ...])"
            )
        return points

    def streaming(
        self,
        *,
        refine_factor: float = 1.5,
        compact_drift: float = 0.5,
        store_dir: str | None = None,
    ) -> "IncrementalPublisher":
        """Launch this pipeline's configuration as an incremental stream.

        Instead of one :meth:`run`, the configured model (plus ``with_k`` and
        the ``audit_skyline`` points, when set) seeds an
        :class:`~repro.stream.IncrementalPublisher` on the session's table;
        the seed release is published immediately and subsequent
        ``append(batch)`` / ``delete(rows)`` / ``update(rows, batch)`` calls
        republish incrementally.  ``store_dir`` persists every version to a
        disk-backed :class:`~repro.stream.ReleaseStore` (resumable with
        :meth:`~repro.stream.IncrementalPublisher.resume`).  Only the
        Mondrian algorithm supports streaming (the split tree is what gets
        reused).
        """
        if self._model is None:
            raise PipelineError("pipeline has no model; call .model(name, ...) first")
        if self._algorithm != "mondrian":
            raise PipelineError(
                f"streaming supports only the 'mondrian' algorithm, not {self._algorithm!r}"
            )
        requirement = self.session.build_model(self._model, **self._model_params)
        skyline = None
        if self._skyline_audit is not None:
            skyline = self._resolve_skyline(requirement, self._skyline_audit["skyline"])
        method = (
            self._skyline_audit["method"] if self._skyline_audit is not None else "omega"
        )
        return self.session.stream(
            requirement,
            skyline=skyline,
            k=self._k,
            method=method,
            split_strategy=self._algorithm_options.get("split_strategy", "widest"),
            refine_factor=refine_factor,
            compact_drift=compact_drift,
            store_dir=store_dir,
        )

    def run(self, *, tracer: Tracer | None = None) -> ReleaseBundle:
        """Execute the configured pipeline and return its :class:`ReleaseBundle`.

        ``tracer`` (default: the thread's ambient tracer) records one
        ``pipeline.run`` span with an ``anonymize`` / ``audit`` /
        ``skyline_audit`` / ``utility`` child per executed stage; the
        bundle's ``timings`` dict is derived from those spans, with the same
        keys whether tracing is enabled or not.
        """
        if self._model is None:
            raise PipelineError("pipeline has no model; call .model(name, ...) first")
        session = self.session
        requirement = session.build_model(self._model, **self._model_params)
        tracer = tracer if tracer is not None else current_tracer()

        with tracer.activate(), tracer.timed("pipeline.run") as run_span:
            with tracer.timed("anonymize", algorithm=self._algorithm) as anonymize_span:
                result = session.anonymize(
                    requirement,
                    k=self._k,
                    algorithm=self._algorithm,
                    **self._algorithm_options,
                )
            anonymize_span.annotate(
                groups=result.release.n_groups,
                prepare_seconds=result.prepare_seconds,
                partition_seconds=result.partition_seconds,
            )
            timings = {
                "prepare_seconds": result.prepare_seconds,
                "partition_seconds": result.partition_seconds,
            }

            attack: AttackResult | None = None
            if self._audit is not None:
                threshold = self._resolve_threshold(requirement, self._audit["threshold"])
                with tracer.timed(
                    "audit", b_prime=self._audit["b_prime"]
                ) as audit_span:
                    attack = session.attack(
                        result.release.groups,
                        b_prime=self._audit["b_prime"],
                        threshold=threshold,
                        kernel=self._audit["kernel"],
                        method=self._audit["method"],
                    )
                timings["audit_seconds"] = audit_span.duration_s

            skyline_audit: SkylineAuditReport | None = None
            if self._skyline_audit is not None:
                points = self._resolve_skyline(requirement, self._skyline_audit["skyline"])
                with tracer.timed(
                    "skyline_audit", adversaries=len(points)
                ) as skyline_span:
                    skyline_audit = session.audit_skyline(
                        result.release.groups,
                        points,
                        method=self._skyline_audit["method"],
                        processes=self._skyline_audit["processes"],
                        chunk_rows=self._skyline_audit["chunk_rows"],
                    )
                timings["skyline_audit_seconds"] = skyline_span.duration_s

            utility: dict[str, float] | None = None
            if self._utility:
                with tracer.timed("utility") as utility_span:
                    utility = utility_report(result.release)
                timings["utility_seconds"] = utility_span.duration_s

            timings["total_seconds"] = sum(timings.values())
            run_span.annotate(model=result.model_description)
        return ReleaseBundle(
            release=result.release,
            result=result,
            model_description=result.model_description,
            attack=attack,
            skyline_audit=skyline_audit,
            utility=utility,
            timings=timings,
        )
