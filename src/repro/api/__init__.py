"""Registry-driven pipeline API: composable anonymize -> audit -> report runs.

This package is the library's orchestration layer:

* :mod:`repro.api.registry` - named, decorator-based registries for privacy
  models, anonymization algorithms, prior estimators and distance measures;
  the CLI, :func:`repro.anonymize.anonymizer.anonymize` and every session
  resolve plugins through them;
* :mod:`repro.api.session` - :class:`Session`, a cache-backed workspace that
  estimates kernel priors (the dominant preparation cost) at most once per
  ``(bandwidth, kernel)``;
* :mod:`repro.api.pipeline` - the fluent :class:`Pipeline` builder returning
  a :class:`ReleaseBundle` (release + attack outcome + utility + timings);
* :mod:`repro.api.sweep` - :func:`expand_grid` / :meth:`Session.sweep` for
  model/parameter grids with shared caches and optional multiprocessing.
"""

from repro.api import builtins as _builtins  # noqa: F401  (registers built-in entries)
from repro.api.pipeline import Pipeline, ReleaseBundle
from repro.api.registry import (
    ALGORITHMS,
    MEASURES,
    MODELS,
    PRIOR_ESTIMATORS,
    Registry,
    RegistryEntry,
    register_algorithm,
    register_measure,
    register_model,
    register_prior_estimator,
)
from repro.api.session import Session, SessionStats
from repro.api.sweep import SweepOutcome, SweepRow, SweepSpec, expand_grid, run_sweep

__all__ = [
    "ALGORITHMS",
    "MEASURES",
    "MODELS",
    "PRIOR_ESTIMATORS",
    "Pipeline",
    "Registry",
    "RegistryEntry",
    "ReleaseBundle",
    "Session",
    "SessionStats",
    "SweepOutcome",
    "SweepRow",
    "SweepSpec",
    "expand_grid",
    "register_algorithm",
    "register_measure",
    "register_model",
    "register_prior_estimator",
    "run_sweep",
]
