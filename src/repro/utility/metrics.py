"""General utility measures for anonymized tables (Section V-E.1).

Two standard measures are implemented:

* **Discernibility Metric (DM)** (Bayardo & Agrawal, paper ref [25]): each
  tuple pays a penalty equal to the size of its group, so
  ``DM = sum over groups |G|^2``.  Smaller is better; a table left as one
  giant group pays ``n^2``.
* **Global Certainty Penalty (GCP)** (Xu et al., paper ref [26]): each tuple
  pays its Normalised Certainty Penalty - the sum over QI attributes of the
  fraction of the attribute's domain covered by its group's generalized value;
  ``GCP = sum over groups |G| * NCP(G)``.  Smaller is better; publishing every
  tuple fully generalized costs ``n * d``.
"""

from __future__ import annotations

import numpy as np

from repro.anonymize.partition import AnonymizedRelease
from repro.exceptions import UtilityError


def discernibility_metric(release: AnonymizedRelease) -> float:
    """Discernibility Metric ``sum_G |G|^2`` of a release."""
    sizes = release.group_sizes().astype(np.float64)
    return float((sizes**2).sum())


def group_certainty_penalty(release: AnonymizedRelease, group_index: int) -> float:
    """Normalised Certainty Penalty of one group (sum over QI attributes, in ``[0, d]``)."""
    table = release.table
    if not 0 <= group_index < release.n_groups:
        raise UtilityError(f"group index {group_index} out of range")
    indices = release.groups[group_index]
    penalty = 0.0
    for name in table.quasi_identifier_names:
        attribute = table.schema[name]
        domain = table.domain(name)
        if attribute.is_numeric:
            column = table.column(name)[indices]
            spread = domain.numeric_range
            if spread > 0:
                penalty += float(column.max() - column.min()) / spread
        else:
            distinct = len({str(v) for v in table.column(name)[indices].tolist()})
            if distinct > 1:
                if attribute.taxonomy is not None:
                    values = {str(v) for v in table.column(name)[indices].tolist()}
                    ancestor = attribute.taxonomy.generalize(values)
                    covered = len(attribute.taxonomy.leaves_under(ancestor))
                else:
                    covered = distinct
                penalty += covered / domain.size
    return penalty


def global_certainty_penalty(release: AnonymizedRelease, *, normalised: bool = False) -> float:
    """Global Certainty Penalty ``sum_G |G| * NCP(G)``.

    With ``normalised=True`` the value is divided by ``n * d`` so it lies in
    ``[0, 1]`` regardless of table size (useful for comparing across datasets).
    """
    total = 0.0
    for group_index, indices in enumerate(release.groups):
        total += len(indices) * group_certainty_penalty(release, group_index)
    if normalised:
        d = len(release.table.quasi_identifier_names)
        total /= release.table.n_rows * d
    return float(total)


def average_group_size(release: AnonymizedRelease) -> float:
    """Average number of tuples per group (the ``C_avg`` style metric)."""
    return release.average_group_size()


def utility_report(release: AnonymizedRelease) -> dict[str, float]:
    """All general utility measures of a release in one dictionary."""
    return {
        "n_groups": float(release.n_groups),
        "average_group_size": average_group_size(release),
        "discernibility_metric": discernibility_metric(release),
        "global_certainty_penalty": global_certainty_penalty(release),
        "normalised_certainty_penalty": global_certainty_penalty(release, normalised=True),
    }
