"""Utility metrics (DM, GCP) and aggregate-query workloads."""

from repro.utility.metrics import (
    average_group_size,
    discernibility_metric,
    global_certainty_penalty,
    group_certainty_penalty,
    utility_report,
)
from repro.utility.query import (
    AggregateQuery,
    QueryWorkloadGenerator,
    average_relative_error,
    estimated_count,
    true_count,
)

__all__ = [
    "AggregateQuery",
    "QueryWorkloadGenerator",
    "average_group_size",
    "average_relative_error",
    "discernibility_metric",
    "estimated_count",
    "global_certainty_penalty",
    "group_certainty_penalty",
    "true_count",
    "utility_report",
]
