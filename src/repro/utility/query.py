"""Aggregate-query workloads over anonymized data (Section V-E.2).

The paper evaluates utility by "performance in aggregate query answering"
(refs [27], [16], [28]): random COUNT queries that combine predicates on
``qd`` quasi-identifier attributes and on the sensitive attribute, answered

* exactly on the original microdata, and
* approximately on the anonymized release, using the standard
  uniform-distribution assumption inside each generalized group.

The reported number is the average relative error over the workload, as a
function of the query dimension ``qd`` (Figure 6(a)) and of the per-attribute
selectivity ``sel`` (Figure 6(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.anonymize.partition import AnonymizedRelease
from repro.data.table import MicrodataTable
from repro.exceptions import UtilityError


@dataclass(frozen=True)
class AggregateQuery:
    """One COUNT(*) query with per-attribute predicates.

    ``numeric_predicates`` maps a numeric QI attribute to an inclusive value
    range; ``categorical_predicates`` maps a categorical QI attribute to an
    accepted value set; ``sensitive_values`` is the accepted set of sensitive
    values (empty means "no sensitive predicate").
    """

    numeric_predicates: tuple[tuple[str, float, float], ...] = ()
    categorical_predicates: tuple[tuple[str, frozenset], ...] = ()
    sensitive_values: frozenset = field(default_factory=frozenset)

    @property
    def dimension(self) -> int:
        """Number of quasi-identifier attributes constrained by the query."""
        return len(self.numeric_predicates) + len(self.categorical_predicates)


class QueryWorkloadGenerator:
    """Random COUNT-query workload with controlled dimension and selectivity.

    Parameters
    ----------
    table:
        The original microdata table (defines domains).
    query_dimension:
        Number of QI attributes each query constrains (``qd``).
    selectivity:
        Target overall selectivity ``sel``; each of the ``qd + 1`` constrained
        attributes (including the sensitive attribute) uses a per-attribute
        selectivity of ``sel ** (1 / (qd + 1))``, following the workload setup
        of the Anatomy paper.
    include_sensitive:
        Whether queries also constrain the sensitive attribute (default True).
    seed:
        Seed for the query generator.
    """

    def __init__(
        self,
        table: MicrodataTable,
        *,
        query_dimension: int,
        selectivity: float,
        include_sensitive: bool = True,
        seed: int = 7,
    ):
        qi_count = len(table.quasi_identifier_names)
        if not 1 <= query_dimension <= qi_count:
            raise UtilityError(
                f"query_dimension must be between 1 and {qi_count}, got {query_dimension}"
            )
        if not 0.0 < selectivity <= 1.0:
            raise UtilityError("selectivity must lie in (0, 1]")
        self.table = table
        self.query_dimension = int(query_dimension)
        self.selectivity = float(selectivity)
        self.include_sensitive = bool(include_sensitive)
        self._rng = np.random.default_rng(seed)

    def _per_attribute_selectivity(self) -> float:
        constrained = self.query_dimension + (1 if self.include_sensitive else 0)
        return self.selectivity ** (1.0 / constrained)

    def _numeric_predicate(self, name: str, share: float) -> tuple[str, float, float]:
        domain = self.table.domain(name)
        low, high = float(domain.values[0]), float(domain.values[-1])
        width = (high - low) * share
        start = self._rng.uniform(low, max(low, high - width))
        return (name, start, start + width)

    def _categorical_predicate(self, name: str, share: float) -> tuple[str, frozenset]:
        domain = self.table.domain(name)
        count = max(1, int(round(share * domain.size)))
        chosen = self._rng.choice(domain.size, size=min(count, domain.size), replace=False)
        return (name, frozenset(str(domain.values[i]) for i in chosen))

    def generate(self, n_queries: int) -> list[AggregateQuery]:
        """Generate ``n_queries`` random queries."""
        if n_queries <= 0:
            raise UtilityError("n_queries must be positive")
        share = self._per_attribute_selectivity()
        qi_names = list(self.table.quasi_identifier_names)
        queries: list[AggregateQuery] = []
        for _ in range(n_queries):
            chosen = self._rng.choice(len(qi_names), size=self.query_dimension, replace=False)
            numeric: list[tuple[str, float, float]] = []
            categorical: list[tuple[str, frozenset]] = []
            for attribute_index in chosen:
                name = qi_names[attribute_index]
                if self.table.schema[name].is_numeric:
                    numeric.append(self._numeric_predicate(name, share))
                else:
                    categorical.append(self._categorical_predicate(name, share))
            sensitive: frozenset = frozenset()
            if self.include_sensitive:
                domain = self.table.sensitive_domain()
                count = max(1, int(round(share * domain.size)))
                chosen_values = self._rng.choice(domain.size, size=min(count, domain.size), replace=False)
                sensitive = frozenset(str(domain.values[i]) for i in chosen_values)
            queries.append(
                AggregateQuery(
                    numeric_predicates=tuple(numeric),
                    categorical_predicates=tuple(categorical),
                    sensitive_values=sensitive,
                )
            )
        return queries


def true_count(table: MicrodataTable, query: AggregateQuery) -> int:
    """Exact answer of ``query`` on the original microdata."""
    mask = np.ones(table.n_rows, dtype=bool)
    for name, low, high in query.numeric_predicates:
        column = table.column(name)
        mask &= (column >= low) & (column <= high)
    for name, accepted in query.categorical_predicates:
        column = table.column(name)
        mask &= np.isin(column, list(accepted))
    if query.sensitive_values:
        mask &= np.isin(table.sensitive_values(), list(query.sensitive_values))
    return int(mask.sum())


def estimated_count(release: AnonymizedRelease, query: AggregateQuery) -> float:
    """Estimated answer of ``query`` on the anonymized release.

    Each group contributes ``(number of group tuples matching the sensitive
    predicate) * (estimated fraction of the group matching the QI predicates)``
    where the fraction assumes values are uniformly distributed within the
    group's generalized region - the standard estimator in the utility
    literature the paper cites.
    """
    table = release.table
    total = 0.0
    for group in release.generalized_groups():
        if query.sensitive_values:
            sensitive_matches = sum(
                1 for value in group.sensitive_values if str(value) in query.sensitive_values
            )
        else:
            sensitive_matches = group.size
        if sensitive_matches == 0:
            continue
        fraction = 1.0
        by_name = group.generalized_by_name()
        for name, low, high in query.numeric_predicates:
            value = by_name[name]
            fraction *= _interval_overlap(value.low, value.high, low, high)
            if fraction == 0.0:
                break
        if fraction > 0.0:
            for name, accepted in query.categorical_predicates:
                value = by_name[name]
                attribute = table.schema[name]
                if value.label is not None and attribute.taxonomy is not None and len(value.values) > 1:
                    covered = set(attribute.taxonomy.leaves_under(value.label))
                else:
                    covered = set(value.values)
                fraction *= len(covered & set(accepted)) / len(covered)
                if fraction == 0.0:
                    break
        total += sensitive_matches * fraction
    return float(total)


def _interval_overlap(group_low: float, group_high: float, query_low: float, query_high: float) -> float:
    """Fraction of the group interval covered by the query interval (uniform assumption)."""
    if group_high == group_low:
        return 1.0 if query_low <= group_low <= query_high else 0.0
    overlap = min(group_high, query_high) - max(group_low, query_low)
    if overlap <= 0.0:
        return 0.0
    return overlap / (group_high - group_low)


def average_relative_error(
    release: AnonymizedRelease,
    queries: list[AggregateQuery],
    *,
    minimum_count: int = 1,
) -> float:
    """Average relative error (in percent) of ``queries`` on ``release``.

    Queries whose true answer is below ``minimum_count`` are skipped, as is
    standard in the workload-evaluation literature (relative error is unstable
    near zero).
    """
    if not queries:
        raise UtilityError("average_relative_error requires at least one query")
    errors: list[float] = []
    for query in queries:
        actual = true_count(release.table, query)
        if actual < minimum_count:
            continue
        estimate = estimated_count(release, query)
        errors.append(abs(estimate - actual) / actual)
    if not errors:
        raise UtilityError(
            "no query had a true count above the minimum; use a larger selectivity or more queries"
        )
    return float(100.0 * np.mean(errors))
