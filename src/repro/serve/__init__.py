"""``repro.serve``: a multi-tenant release-serving daemon over the stream engine.

The serving layer turns the incremental publication machinery of
:mod:`repro.stream` into a long-running HTTP service: a
:class:`~repro.serve.registry.StreamRegistry` hosts many named streams (each
an :class:`~repro.stream.IncrementalPublisher` over its own disk shard),
per-stream workers coalesce queued mutations into single published versions,
and immutable historical versions, lineages and skyline-audit reports are
served lock-free to concurrent readers.  See :mod:`repro.serve.app` for the
daemon, :mod:`repro.serve.service` for the route semantics and
:mod:`repro.serve.registry` for the hosting model; ``repro serve`` is the CLI
entry point.
"""

from repro.serve.app import MAX_BODY_BYTES, ServeApp
from repro.serve.errors import (
    ApiError,
    BadRequest,
    Conflict,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    TooManyRequests,
)
from repro.serve.metrics import ServeMetrics, StreamMetrics
from repro.serve.pool import PublicationError, PublicationPool
from repro.serve.registry import (
    CONFIG_DEFAULTS,
    DEFAULT_MAX_QUEUE_BATCHES,
    DEFAULT_MAX_QUEUED_ROWS,
    StreamHost,
    StreamRegistry,
)
from repro.serve.router import Request, Response, Router
from repro.serve.service import ReproService

__all__ = [
    "ApiError",
    "BadRequest",
    "CONFIG_DEFAULTS",
    "Conflict",
    "DEFAULT_MAX_QUEUE_BATCHES",
    "DEFAULT_MAX_QUEUED_ROWS",
    "MAX_BODY_BYTES",
    "MethodNotAllowed",
    "NotFound",
    "PayloadTooLarge",
    "PublicationError",
    "PublicationPool",
    "ReproService",
    "Request",
    "Response",
    "Router",
    "ServeApp",
    "ServeMetrics",
    "StreamHost",
    "StreamMetrics",
    "StreamRegistry",
    "TooManyRequests",
]
