"""A small HTTP router: path templates with ``{param}`` segments.

The daemon deliberately runs on the stdlib alone (the clean-venv
package-smoke job must need nothing beyond numpy/scipy), so this module
supplies the few pieces a framework would: a :class:`Request` /
:class:`Response` pair and a :class:`Router` that matches method + path
templates like ``/streams/{name}/versions/{version}`` and extracts the
parameters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, unquote

from repro.serve.errors import BadRequest, MethodNotAllowed, NotFound


@dataclass
class Request:
    """One parsed HTTP request as the handlers see it."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    params: dict[str, str] = field(default_factory=dict)
    #: Per-request trace id, assigned by the app layer and echoed back in
    #: the ``X-Repro-Trace-Id`` response header and every log record.
    trace_id: str = ""

    def json(self) -> Any:
        """The request body decoded as JSON (400 on malformed bodies)."""
        if not self.body:
            raise BadRequest("the request requires a JSON body")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise BadRequest(f"the request body is not valid JSON ({error})") from None


@dataclass
class Response:
    """One handler result: status code, JSON-able payload, extra headers.

    ``stream=True`` marks responses whose bodies may be large (historical
    versions, whole lineages, audit reports): the app layer sends them with
    chunked transfer encoding, serializing incrementally via
    :meth:`body_chunks` instead of materializing one JSON string.

    ``text`` (with ``payload`` left ``None``) carries a raw non-JSON body -
    the Prometheus exposition endpoint - and ``content_type`` labels it.
    """

    status: int = 200
    payload: Any = None
    headers: dict[str, str] = field(default_factory=dict)
    stream: bool = False
    text: str | None = None
    content_type: str = "application/json"

    def body(self) -> bytes:
        """The serialized body (JSON payload, or the raw ``text``).

        ``sort_keys`` keeps the JSON serialization deterministic, which is
        what makes "concurrent readers see byte-identical historical
        versions" testable at the HTTP layer.
        """
        if self.text is not None:
            return self.text.encode()
        return (json.dumps(self.payload, sort_keys=True) + "\n").encode()

    def body_chunks(self, chunk_bytes: int = 64 * 1024):
        """Yield the serialized body in bounded pieces (for chunked sends).

        Uses :meth:`json.JSONEncoder.iterencode` with the same ``sort_keys``
        encoder settings as :meth:`body`, so the concatenation of the chunks
        is byte-identical to the non-streaming body - a client that decodes
        the chunked framing sees exactly the bytes ``body()`` would have
        sent.  ``iterencode`` emits ASCII (the default ``ensure_ascii``), so
        character counts are byte counts.
        """
        if self.text is not None:
            yield self.text.encode()
            return
        encoder = json.JSONEncoder(sort_keys=True)
        pending: list[str] = []
        size = 0
        for piece in encoder.iterencode(self.payload):
            pending.append(piece)
            size += len(piece)
            if size >= chunk_bytes:
                yield "".join(pending).encode()
                pending = []
                size = 0
        pending.append("\n")
        yield "".join(pending).encode()


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """Method + path-template dispatch.

    Templates are ``/``-joined literal segments and ``{param}`` captures;
    a captured segment is URL-unquoted and lands in ``request.params``.
    Resolution distinguishes "no such path" (404) from "path exists, method
    does not" (405, naming the allowed methods).
    """

    def __init__(self) -> None:
        self._routes: list[tuple[str, tuple[str, ...], Handler]] = []

    @staticmethod
    def _segments(path: str) -> tuple[str, ...]:
        return tuple(segment for segment in path.split("/") if segment)

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` requests matching ``template``."""
        self._routes.append((method.upper(), self._segments(template), handler))

    @staticmethod
    def _match(template: tuple[str, ...], segments: tuple[str, ...]) -> dict[str, str] | None:
        if len(template) != len(segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(template, segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = unquote(actual)
            elif expected != actual:
                return None
        return params

    def resolve(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        """The handler and extracted parameters for one request line."""
        segments = self._segments(path)
        allowed: list[str] = []
        for route_method, template, handler in self._routes:
            params = self._match(template, segments)
            if params is None:
                continue
            if route_method == method.upper():
                return handler, params
            allowed.append(route_method)
        if allowed:
            raise MethodNotAllowed(
                f"{method} is not allowed on {path}; allowed: {', '.join(sorted(set(allowed)))}"
            )
        raise NotFound(f"no route matches {path}")


def parse_query(raw: str) -> dict[str, str]:
    """Decode a query string into a flat dict (last value wins)."""
    return dict(parse_qsl(raw, keep_blank_values=True))
