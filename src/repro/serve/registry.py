"""Multi-tenant stream hosting: one publisher + store shard + writer per stream.

The :class:`StreamRegistry` owns a data directory with one shard per named
stream::

    data/
      census/   stream.json  lineage.jsonl  state.json  version-*.npz  store.lock
      hospital/ ...

``stream.json`` records the creation config (model name and parameters), so a
daemon restart can rebuild each stream's privacy model and hand it to
:meth:`~repro.stream.IncrementalPublisher.resume` - every stream resumes
automatically, with versions identical to an uninterrupted publisher.

Writes are serialized per stream through a :class:`StreamHost` worker thread:
every mutation submitted while a tick is in flight (plus anything arriving
within the ``coalesce_ms`` window) is drained into **one** coalesced publish,
so a burst of N batches publishes one version instead of N.  Reads never
enter the worker: published versions are immutable and the store's version
list is append-only, so historical versions, lineages and audit reports are
served lock-free from memory while a publication is in flight.

Publication runs in one of two modes.  With ``publish_workers=0`` (the
default) the tick calls
:meth:`~repro.stream.IncrementalPublisher.publish_coalesced` in-process, on
the host's own publisher.  With ``publish_workers=N`` the registry owns a
:class:`~repro.serve.pool.PublicationPool` and the tick is dispatched as a
job ``(shard path, operations, config)`` to a worker *process*, which
resumes the shard (holding its ``store.lock``) and publishes there; the host
then re-pins its lock-free reader store
(:meth:`~repro.stream.store.ReleaseStore.refresh`) and resolves the waiters
from the refreshed, immutable version - so heavy publication compute for
different tenants runs on different cores instead of contending on the GIL.

Every host's queue is **bounded** (``max_queue_batches`` /
``max_queued_rows``): a mutation that would overflow it is rejected
immediately with :class:`~repro.serve.errors.TooManyRequests` (HTTP 429 +
``Retry-After`` derived from observed publish latency) instead of buffering
without limit.  The queue's high-water marks and the cumulative rejected
count stay visible in ``/metrics`` after the burst passes.

A publication failure poisons only its own stream (PR 5's poisoning
semantics): the host fails the tick's waiters, marks itself poisoned, and
keeps serving reads; sibling streams keep publishing.  This holds in process
mode too - a worker crash or job timeout poisons exactly the stream whose
job died (the pool respawns the slot for its siblings).  The daemon surfaces
the state as 409 pointing at the restart-resume path.
"""

from __future__ import annotations

import json
import logging
import queue
import re
import shutil
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.api.registry import MODELS
from repro.data.adult import adult_schema
from repro.data.schema import Schema
from repro.data.table import MicrodataTable
from repro.exceptions import ReproError, StreamError
from repro.knowledge.backend import DEFAULT_MAX_CELLS
from repro.knowledge.parallel import parse_jobs
from repro.obs.tracing import Span, Tracer
from repro.serve.errors import ApiError, BadRequest, Conflict, NotFound, TooManyRequests
from repro.serve.metrics import StreamMetrics
from repro.serve.pool import PublicationPool, build_stream_model
from repro.stream import IncrementalPublisher
from repro.stream.store import ReleaseStore, VersionCache

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_STOP = object()

_logger = logging.getLogger("repro.serve.registry")

#: Bounded-queue defaults: generous enough that a well-paced client never
#: sees 429, small enough that a flood cannot buffer without limit.
DEFAULT_MAX_QUEUE_BATCHES = 64
DEFAULT_MAX_QUEUED_ROWS = 100_000

#: Publications slower than this (seconds) log a warning by default.
DEFAULT_SLOW_PUBLISH_SECONDS = 5.0

#: Completed tick traces kept in memory per stream (oldest evicted first).
_MAX_TRACES = 64


def _operation_rows(operation: tuple[str, Any]) -> int:
    """Rows a queued mutation pins in memory (the queue's row accounting)."""
    kind, payload = operation
    if kind == "append":
        return len(payload)
    if kind == "delete":
        return len(payload)
    if kind == "update":
        return len(payload[0])
    return 0

#: Creation config: accepted keys and their defaults (persisted per shard).
CONFIG_DEFAULTS: dict[str, Any] = {
    "model": "bt",
    "b": 0.3,
    "t": 0.2,
    "l": 4.0,
    "k": 4,
    "skyline": None,
    "method": "omega",
    "split_strategy": "widest",
    "refine_factor": 1.5,
    "compact_drift": 0.5,
    "max_cells": DEFAULT_MAX_CELLS,
}

CONFIG_FILE = "stream.json"


class _Submission:
    """One queued mutation, its row weight and the future its submitter awaits."""

    __slots__ = ("operation", "rows", "future", "trace_id")

    def __init__(self, operation: tuple[str, Any], trace_id: str | None = None):
        self.operation = operation
        self.rows = _operation_rows(operation)
        self.future: Future = Future()
        self.trace_id = trace_id


class StreamHost:
    """One hosted stream: its config, bounded queue and serialized write worker.

    In thread mode (``pool=None``) the host owns an
    :class:`~repro.stream.IncrementalPublisher` and publishes in-process.  In
    process mode (``pool`` given) ``publisher`` is ``None``: the host owns a
    lock-free reader :class:`~repro.stream.store.ReleaseStore` over the shard
    and dispatches every tick to the pool, whose worker process holds the
    shard's ``store.lock`` and warm publisher.
    """

    def __init__(
        self,
        name: str,
        publisher: IncrementalPublisher | None,
        config: dict[str, Any],
        *,
        coalesce_seconds: float = 0.05,
        max_queue_batches: int = DEFAULT_MAX_QUEUE_BATCHES,
        max_queued_rows: int = DEFAULT_MAX_QUEUED_ROWS,
        pool: PublicationPool | None = None,
        store: ReleaseStore | None = None,
        slow_publish_seconds: float = DEFAULT_SLOW_PUBLISH_SECONDS,
    ):
        if publisher is None and (pool is None or store is None):
            raise StreamError(
                "a host without a publisher needs a publication pool and a store"
            )
        self.name = name
        self.publisher = publisher
        self.config = config
        # Thread mode shares the publisher's tracer, so the tick span and the
        # publish spans land in one tree; process mode stitches the worker's
        # shipped trace under the tick span instead.
        self.tracer = publisher.tracer if publisher is not None else Tracer()
        self._slow_publish_seconds = float(slow_publish_seconds)
        self._traces: dict[int, dict[str, Any]] = {}
        # The real release store, captured once: during a coalesced publish
        # the publisher temporarily swaps ``publisher.store`` for its
        # intermediate-version buffer, and readers must never see that -
        # they keep serving the (append-only) published history.
        self._store = store if store is not None else publisher.store
        self._pool = pool
        self.metrics = StreamMetrics()
        self._coalesce_seconds = float(coalesce_seconds)
        self._max_queue_batches = int(max_queue_batches)
        self._max_queued_rows = int(max_queued_rows)
        self._queued_batches = 0
        self._queued_rows = 0
        self._queue_high_water_batches = 0
        self._queue_high_water_rows = 0
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._poisoned: str | None = None
        self._gate = threading.Event()
        self._gate.set()
        self._worker = threading.Thread(
            target=self._run, name=f"repro-serve-{name}", daemon=True
        )
        self._worker.start()

    # -- read-side accessors (lock-free: published versions are immutable) -------------
    @property
    def store(self):
        """The stream's release store (always the real one, never a buffer)."""
        return self._store

    @property
    def poisoned(self) -> str | None:
        """The poisoning error message, or ``None`` while healthy."""
        return self._poisoned

    @property
    def queue_depth(self) -> int:
        """Mutation batches waiting for the worker (approximate, by nature)."""
        with self._lock:
            return self._queued_batches

    def queue_stats(self) -> dict[str, int]:
        """Bounded-queue accounting: depth, bounds and high-water marks."""
        with self._lock:
            return {
                "queue_depth": self._queued_batches,
                "queue_depth_rows": self._queued_rows,
                "queue_high_water": self._queue_high_water_batches,
                "queue_high_water_rows": self._queue_high_water_rows,
                "max_queue_batches": self._max_queue_batches,
                "max_queued_rows": self._max_queued_rows,
            }

    def retry_after_seconds(self) -> int:
        """Whole seconds a 429'd client should wait: the publish-latency p50.

        One median publication usually frees the whole queue (a tick drains
        everything queued), so the observed p50 - floored at the protocol's
        minimum of one second - is an honest pacing hint.
        """
        p50 = self.metrics.publish_seconds.percentile(50.0)
        if p50 is None:
            return 1
        return max(1, int(-(-p50 // 1)))

    def poisoned_message(self) -> str:
        return (
            f"stream {self.name!r} is poisoned ({self._poisoned}); historical "
            "versions remain servable, and the stream continues after a daemon "
            "restart (IncrementalPublisher.resume reconstructs it from disk)"
        )

    def describe(self) -> dict[str, Any]:
        """JSON-able summary: lineage position, drift, queue and health."""
        latest = self.store.latest()
        if self.publisher is not None:
            drift = self.publisher.drift_rows
        else:
            # Process mode: the worker's publisher owns the live drift; the
            # persisted resume state carries it to the parent on refresh.
            drift = int((self.store.state or {}).get("drift_rows", 0))
        summary = {
            "name": self.name,
            "versions": len(self.store),
            "rows": latest.n_rows,
            "groups": latest.n_groups,
            "satisfied": latest.satisfied,
            "drift_rows": drift,
            "poisoned": self._poisoned,
            "config": self.config,
        }
        summary.update(self.queue_stats())
        return summary

    def trace_for(self, number: int) -> dict[str, Any] | None:
        """The stitched publish trace of a recently published version.

        Traces live in a bounded in-memory window (the lineage on disk stays
        exactly as before); versions published before the daemon started, or
        evicted from the window, return ``None``.
        """
        with self._lock:
            return self._traces.get(int(number))

    # -- write side ---------------------------------------------------------------------
    def submit(self, operation: tuple[str, Any], trace_id: str | None = None) -> Future:
        """Enqueue one mutation; the future resolves to the published version.

        All operations drained in one worker tick coalesce into a single
        version, so concurrent submitters may receive the *same* version.
        ``trace_id`` (the submitting request's id) is echoed on the tick's
        publish span.  Raises :class:`~repro.exceptions.StreamError`
        immediately when the stream is already poisoned, and
        :class:`~repro.serve.errors.TooManyRequests` when accepting the
        mutation would push the queue past its batch or row bound -
        backpressure instead of unbounded buffering.
        """
        submission = _Submission(operation, trace_id)
        with self._lock:
            if self._poisoned is not None:
                raise StreamError(self.poisoned_message())
            if (
                self._queued_batches + 1 > self._max_queue_batches
                or self._queued_rows + submission.rows > self._max_queued_rows
            ):
                self.metrics.counters.increment("rejected_batches")
                raise TooManyRequests(
                    f"stream {self.name!r} write queue is full "
                    f"({self._queued_batches} batches / {self._queued_rows} rows "
                    f"queued; bounds: {self._max_queue_batches} batches, "
                    f"{self._max_queued_rows} rows); retry once the in-flight "
                    "publication drains the queue",
                    retry_after=self.retry_after_seconds(),
                )
            self._queued_batches += 1
            self._queued_rows += submission.rows
            self._queue_high_water_batches = max(
                self._queue_high_water_batches, self._queued_batches
            )
            self._queue_high_water_rows = max(
                self._queue_high_water_rows, self._queued_rows
            )
            self._queue.put(submission)
            return submission.future

    def pause(self) -> None:
        """Hold the worker before its next tick (tests/benchmarks only).

        Submissions made while paused pile up in the queue and coalesce into
        one deterministic tick on :meth:`unpause`.
        """
        self._gate.clear()

    def unpause(self) -> None:
        """Release a :meth:`pause`."""
        self._gate.set()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._gate.wait()
            batch = [item]
            stop = False
            deadline = time.monotonic() + self._coalesce_seconds
            while True:
                remaining = deadline - time.monotonic()
                try:
                    nxt = (
                        self._queue.get(timeout=remaining)
                        if remaining > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            # The tick owns its batch now: free the queue budget *before*
            # publishing, so clients rejected during a long publication can
            # refill the queue up to the bound while it runs.
            with self._lock:
                self._queued_batches -= len(batch)
                self._queued_rows -= sum(item.rows for item in batch)
            self._publish_tick(batch)
            if stop:
                return

    def _publish_tick(self, batch: list[_Submission]) -> None:
        """Publish one coalesced version for every submission of this tick."""
        # A submitter may have cancelled (e.g. its connection died); marking
        # the rest RUNNING makes them uncancellable for the publish.
        live = [s for s in batch if s.future.set_running_or_notify_cancel()]
        if not live:
            return
        if self._poisoned is not None:
            error = StreamError(self.poisoned_message())
            for submission in live:
                submission.future.set_exception(error)
            return
        operations = [submission.operation for submission in live]
        trace_ids = [s.trace_id for s in live if s.trace_id]
        version = None
        with self.tracer.timed(
            "serve.publish_tick",
            stream=self.name,
            operations=len(live),
            trace_ids=trace_ids,
        ) as tick_span:
            try:
                if self._pool is None:
                    version = self.publisher.publish_coalesced(operations)
                else:
                    number, trace = self._pool.publish(
                        self.name, self._store.path, self.config, operations
                    )
                    # Re-pin: load exactly what the worker persisted (the reload
                    # is byte-identical by the store's round-trip guarantee).
                    self._store.refresh()
                    version = self._store[number]
                    if trace is not None:
                        tick_span.adopt(Span.from_dict(trace))
            except BaseException as error:  # noqa: BLE001 - forwarded to every waiter
                if self._pool is None:
                    poisoned = self.publisher.poisoned
                else:
                    poisoned = getattr(error, "poisoned", True)
                if poisoned:
                    with self._lock:
                        self._poisoned = f"{type(error).__name__}: {error}"
                _logger.error(
                    "publication tick failed",
                    extra={
                        "stream": self.name,
                        "operations": len(live),
                        "trace_ids": trace_ids,
                        "poisoned": bool(poisoned),
                        "error": f"{type(error).__name__}: {error}",
                    },
                )
                self.metrics.counters.increment("failed_batches", len(live))
                for submission in live:
                    submission.future.set_exception(error)
            else:
                tick_span.annotate(version=version.version)
        root = self.tracer.take_root()
        if version is None:
            return
        if root is not None:
            with self._lock:
                self._traces[version.version] = root.to_dict()
                while len(self._traces) > _MAX_TRACES:
                    del self._traces[next(iter(self._traces))]
        seconds = tick_span.duration_s
        if seconds >= self._slow_publish_seconds:
            _logger.warning(
                "slow publish",
                extra={
                    "stream": self.name,
                    "publish_seconds": seconds,
                    "operations": len(live),
                    "version": version.version,
                    "trace_ids": trace_ids,
                },
            )
        self.metrics.publish_seconds.observe(seconds)
        self.metrics.counters.increment("publishes")
        self.metrics.counters.increment("coalesced_operations", len(live))
        for submission in live:
            self.metrics.counters.increment(f"{submission.operation[0]}_batches")
            submission.future.set_result(version)

    def close(self) -> None:
        """Stop the worker, fail unserved waiters and release the store lock."""
        self._gate.set()
        self._queue.put(_STOP)
        self._worker.join(timeout=60.0)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(
                    StreamError(f"stream {self.name!r} is shutting down")
                )
        if self.publisher is not None:
            self.publisher.close()
        else:
            # Process mode: the shard lock lives in a worker process (the
            # pool's close releases it); the reader store holds no lock.
            self._store.close()


class StreamRegistry:
    """Every hosted stream under one data directory.

    Construction scans ``data_dir`` and resumes every shard holding a
    ``stream.json`` (failed shards raise, naming the directory - a daemon
    must not silently drop a stream).  ``schema`` defaults to the Adult
    (Table IV) schema the CLI is bound to.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        coalesce_ms: float = 50.0,
        schema: Schema | None = None,
        publish_workers: int = 0,
        publish_timeout: float = 0.0,
        jobs: int | None = None,
        max_queue_batches: int | None = None,
        max_queued_rows: int | None = None,
        slow_publish_seconds: float = DEFAULT_SLOW_PUBLISH_SECONDS,
    ):
        if coalesce_ms < 0:
            raise BadRequest("coalesce_ms must be non-negative")
        if publish_workers < 0:
            raise BadRequest("publish_workers must be >= 0 (0 = in-process threads)")
        if publish_timeout < 0:
            raise BadRequest("publish_timeout must be >= 0 (0 disables it)")
        if slow_publish_seconds <= 0:
            raise BadRequest("slow_publish_seconds must be positive")
        if jobs is not None:
            try:
                parse_jobs(jobs)
            except ReproError as error:
                raise BadRequest(str(error)) from None
        # A runtime knob for the estimation backend's contraction threads,
        # deliberately not part of any stream's persisted config: versions
        # are bitwise identical at any thread count.
        self.jobs = jobs
        self._slow_publish_seconds = float(slow_publish_seconds)
        self._max_queue_batches = (
            DEFAULT_MAX_QUEUE_BATCHES if max_queue_batches is None
            else int(max_queue_batches)
        )
        self._max_queued_rows = (
            DEFAULT_MAX_QUEUED_ROWS if max_queued_rows is None
            else int(max_queued_rows)
        )
        if self._max_queue_batches < 1 or self._max_queued_rows < 1:
            raise BadRequest("the queue bounds must be at least 1")
        self.schema = schema if schema is not None else adult_schema()
        # One byte-bounded LRU shared by every shard store: resumed versions
        # decode lazily on first access (GET /streams/<s>/versions/<v> pays
        # the npz decode once, not per request) and the decoded footprint
        # across all tenants stays bounded.
        self.version_cache = VersionCache()
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._coalesce_seconds = float(coalesce_ms) / 1000.0
        self._lock = threading.Lock()
        self._hosts: dict[str, StreamHost] = {}
        # The pool spawns before any host thread starts, so worker processes
        # never inherit mid-flight daemon state.
        self.pool: PublicationPool | None = (
            PublicationPool(
                publish_workers, self.schema, timeout=publish_timeout, jobs=jobs
            )
            if publish_workers
            else None
        )
        try:
            for config_path in sorted(self.data_dir.glob(f"*/{CONFIG_FILE}")):
                self._resume_shard(config_path.parent)
        except BaseException:
            self.close()
            raise

    # -- lookup -------------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered stream names, sorted."""
        with self._lock:
            return sorted(self._hosts)

    def hosts(self) -> list[StreamHost]:
        """A snapshot of every registered host."""
        with self._lock:
            return [self._hosts[name] for name in sorted(self._hosts)]

    def get(self, name: str) -> StreamHost:
        """The host serving ``name`` (404 when unknown)."""
        with self._lock:
            host = self._hosts.get(name)
        if host is None:
            raise NotFound(f"no stream named {name!r}")
        return host

    def __len__(self) -> int:
        with self._lock:
            return len(self._hosts)

    # -- creation and resume --------------------------------------------------------------
    @staticmethod
    def resolve_config(config: Mapping[str, Any] | None) -> dict[str, Any]:
        """Validate a creation config and fill in the defaults."""
        config = dict(config or {})
        unknown = sorted(set(config) - set(CONFIG_DEFAULTS))
        if unknown:
            raise BadRequest(
                f"unknown stream config keys {unknown}; "
                f"accepted: {sorted(CONFIG_DEFAULTS)}"
            )
        resolved = {**CONFIG_DEFAULTS, **config}
        if resolved["model"] not in MODELS.names():
            raise BadRequest(
                f"unknown model {resolved['model']!r}; choose one of {list(MODELS.names())}"
            )
        for key in ("b", "t", "l", "refine_factor", "compact_drift"):
            try:
                resolved[key] = float(resolved[key])
            except (TypeError, ValueError):
                raise BadRequest(f"stream config {key!r} must be a number") from None
        if resolved["k"] is not None:
            try:
                resolved["k"] = int(resolved["k"])
            except (TypeError, ValueError):
                raise BadRequest("stream config 'k' must be an integer or null") from None
        try:
            resolved["max_cells"] = int(resolved["max_cells"])
        except (TypeError, ValueError):
            raise BadRequest("stream config 'max_cells' must be an integer") from None
        if resolved["skyline"] is not None:
            try:
                resolved["skyline"] = [
                    [float(b), float(t)] for b, t in resolved["skyline"]
                ]
            except (TypeError, ValueError):
                raise BadRequest(
                    "stream config 'skyline' must be a list of [b, t] pairs"
                ) from None
        if resolved["method"] not in ("omega", "exact"):
            raise BadRequest("stream config 'method' must be 'omega' or 'exact'")
        return resolved

    def _build_model(self, config: Mapping[str, Any]):
        return build_stream_model(config)

    def create(
        self,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        config: Mapping[str, Any] | None = None,
    ) -> StreamHost:
        """Create a stream: seed table -> version 0 -> registered host.

        The shard directory, its ``stream.json`` and the seed publication are
        all in place before the host is registered; a failed creation tears
        the shard down again.  Runs the full estimate -> partition -> audit
        pipeline, so callers on an event loop should dispatch to an executor.
        """
        if not _NAME_PATTERN.match(name or ""):
            raise BadRequest(
                f"bad stream name {name!r}; use 1-64 characters from "
                "[A-Za-z0-9._-], starting with a letter or digit"
            )
        resolved = self.resolve_config(config)
        with self._lock:
            if name in self._hosts:
                raise Conflict(f"stream {name!r} already exists")
        shard = self.data_dir / name
        if shard.exists():
            raise Conflict(
                f"the shard directory {shard} already exists but is not a "
                "registered stream; remove the leftover directory first"
            )
        try:
            table = MicrodataTable.from_rows(self.schema, list(rows))
        except ApiError:
            raise
        except (ReproError, TypeError, ValueError) as error:
            raise BadRequest(f"bad seed rows: {error}") from None
        model = self._build_model(resolved)
        skyline = (
            [(b, t) for b, t in resolved["skyline"]]
            if resolved["skyline"] is not None
            else None
        )
        publisher = None
        try:
            publisher = IncrementalPublisher(
                table,
                model,
                skyline=skyline,
                k=resolved["k"],
                method=resolved["method"],
                split_strategy=resolved["split_strategy"],
                refine_factor=resolved["refine_factor"],
                compact_drift=resolved["compact_drift"],
                max_cells=resolved["max_cells"],
                jobs=self.jobs,
                store_path=shard,
                version_cache=self.version_cache,
            )
            publisher.publish()
            (shard / CONFIG_FILE).write_text(
                json.dumps(resolved, sort_keys=True) + "\n"
            )
        except ApiError:
            if publisher is not None:
                publisher.close()
            shutil.rmtree(shard, ignore_errors=True)
            raise
        except ReproError as error:
            if publisher is not None:
                publisher.close()
            shutil.rmtree(shard, ignore_errors=True)
            raise BadRequest(f"cannot publish the seed release: {error}") from None
        return self._register(name, publisher, resolved)

    def _resume_shard(self, shard: Path) -> StreamHost:
        """Rebuild one stream from its shard (daemon restart)."""
        name = shard.name
        try:
            config = self.resolve_config(json.loads((shard / CONFIG_FILE).read_text()))
        except (OSError, json.JSONDecodeError) as error:
            raise StreamError(
                f"cannot resume stream {name!r}: {shard / CONFIG_FILE} is "
                f"unreadable ({error})"
            ) from None
        if self.pool is None:
            publisher = IncrementalPublisher.resume(
                shard,
                schema=self.schema,
                model=self._build_model(config),
                jobs=self.jobs,
                version_cache=self.version_cache,
            )
            return self._register(name, publisher, config)
        # Process mode: the parent only *reads* the shard (no lock - the
        # publication workers take it); the first dispatched tick runs the
        # full resume validation in its worker.
        store = ReleaseStore(
            shard, schema=self.schema, lock=False, version_cache=self.version_cache
        )
        if not len(store):
            raise StreamError(
                f"cannot resume stream {name!r}: the release store at {shard} "
                "holds no versions"
            )
        if store.state is None:
            raise StreamError(
                f"cannot resume stream {name!r}: the release store at {shard} "
                "holds no publisher state (state.json)"
            )
        return self._register(name, None, config, store=store)

    def _register(
        self,
        name: str,
        publisher: IncrementalPublisher | None,
        config: dict[str, Any],
        store: ReleaseStore | None = None,
    ) -> StreamHost:
        if self.pool is not None and publisher is not None:
            # Lock handoff after an in-process creation: release the shard so
            # the first dispatched tick's worker can take it; keep the (still
            # readable, refreshable) store as the parent's reader.
            store = publisher.store
            publisher.close()
            publisher = None
        host = StreamHost(
            name,
            publisher,
            config,
            coalesce_seconds=self._coalesce_seconds,
            max_queue_batches=self._max_queue_batches,
            max_queued_rows=self._max_queued_rows,
            pool=self.pool,
            store=store,
            slow_publish_seconds=self._slow_publish_seconds,
        )
        with self._lock:
            self._hosts[name] = host
        return host

    def close(self) -> None:
        """Stop every worker and release every shard lock."""
        for host in self.hosts():
            host.close()
        if self.pool is not None:
            self.pool.close()
        with self._lock:
            self._hosts.clear()
