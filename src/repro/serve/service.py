"""Request handlers: the HTTP-shaped front of the registry (no socket code).

The split mirrors a conventional three-layer service: :mod:`repro.serve.app`
owns sockets and HTTP framing, this module owns request semantics (decode,
validate, pick status codes), and :mod:`repro.serve.registry` owns stream
state.  Handlers are ``async`` because writes await their stream's worker
(:func:`asyncio.wrap_future` bridges the worker's
:class:`concurrent.futures.Future` into the event loop) and stream creation
runs the full publication pipeline in the default executor; *reads* never
await anything - published versions are immutable, so lineage, version and
audit GETs are answered synchronously even while a publication is in flight.

Routes::

    GET  /healthz                                liveness + stream count
    GET  /metrics                                daemon + per-stream metrics
    GET  /metrics?format=prometheus              the same, text exposition 0.0.4
    GET  /metrics.prom                           alias for the above
    GET  /streams                                list stream summaries
    POST /streams                                create {name, rows, config?}
    GET  /streams/{name}                         one stream summary
    GET  /streams/{name}/versions                the full lineage
    GET  /streams/{name}/versions/{version}      one version (delta + audit)
    GET  /streams/{name}/versions/{version}/audit  that version's audit report
    GET  /streams/{name}/audit                   the latest audit report
    POST /streams/{name}/append                  {rows}
    POST /streams/{name}/delete                  {positions}
    POST /streams/{name}/update                  {positions, rows}
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.data.table import MicrodataTable
from repro.exceptions import ReproError
from repro.obs import prometheus
from repro.serve.errors import ApiError, BadRequest, Conflict, NotFound
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import StreamHost, StreamRegistry
from repro.serve.router import Request, Response, Router


class ReproService:
    """The daemon's request handlers over one registry."""

    def __init__(self, registry: StreamRegistry, metrics: ServeMetrics):
        self.registry = registry
        self.metrics = metrics

    def register(self, router: Router) -> None:
        """Attach every route to ``router``."""
        router.add("GET", "/healthz", self.healthz)
        router.add("GET", "/metrics", self.metrics_view)
        router.add("GET", "/metrics.prom", self.metrics_prometheus)
        router.add("GET", "/streams", self.list_streams)
        router.add("POST", "/streams", self.create_stream)
        router.add("GET", "/streams/{name}", self.get_stream)
        router.add("GET", "/streams/{name}/versions", self.versions)
        router.add("GET", "/streams/{name}/versions/{version}", self.version_detail)
        router.add(
            "GET", "/streams/{name}/versions/{version}/audit", self.version_audit
        )
        router.add("GET", "/streams/{name}/audit", self.latest_audit)
        router.add("POST", "/streams/{name}/append", self.append)
        router.add("POST", "/streams/{name}/delete", self.delete)
        router.add("POST", "/streams/{name}/update", self.update)

    # -- small helpers ------------------------------------------------------------------
    def _host(self, request: Request) -> StreamHost:
        return self.registry.get(request.params["name"])

    @staticmethod
    def _object_body(request: Request) -> dict[str, Any]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise BadRequest("the request body must be a JSON object")
        return payload

    def _rows_table(self, payload: Mapping[str, Any], key: str = "rows") -> MicrodataTable:
        """Decode and pre-validate a rows payload against the serving schema.

        Building the table here keeps malformed values (wrong keys, a
        non-numeric age) at the HTTP boundary as a 400 - they must never
        reach the worker, where a mid-publication failure would poison the
        stream.
        """
        rows = payload.get(key)
        if not isinstance(rows, list) or not rows or not all(
            isinstance(row, dict) for row in rows
        ):
            raise BadRequest(f"the request body must carry a non-empty {key!r} list of objects")
        try:
            return MicrodataTable.from_rows(self.registry.schema, rows)
        except (ReproError, TypeError, ValueError) as error:
            raise BadRequest(f"bad {key}: {error}") from None

    @staticmethod
    def _positions(payload: Mapping[str, Any]) -> list[int]:
        positions = payload.get("positions")
        if not isinstance(positions, list) or not positions:
            raise BadRequest("the request body must carry a non-empty 'positions' list")
        try:
            return [int(position) for position in positions]
        except (TypeError, ValueError):
            raise BadRequest("'positions' must be integers") from None

    @staticmethod
    def _version(host: StreamHost, raw: str):
        try:
            number = int(raw)
        except ValueError:
            raise BadRequest(f"bad version {raw!r}; expected an integer") from None
        if not 0 <= number < len(host.store):
            raise NotFound(
                f"stream {host.name!r} has versions 0..{len(host.store) - 1}, "
                f"not {number}"
            )
        return host.store[number]

    async def _mutate(
        self, request: Request, host: StreamHost, operation: tuple[str, Any]
    ) -> Response:
        """Submit one mutation and await its (possibly shared) version."""
        try:
            future = host.submit(operation, trace_id=request.trace_id or None)
        except ApiError:
            # TooManyRequests from the bounded queue must reach the client
            # as 429 (+ Retry-After), not be blurred into a 409.
            raise
        except ReproError as error:
            raise Conflict(str(error)) from None
        try:
            version = await asyncio.wrap_future(future)
        except ApiError:
            raise
        except ReproError as error:
            if host.poisoned is not None:
                raise Conflict(host.poisoned_message()) from None
            raise BadRequest(str(error)) from None
        return Response(
            200, {"stream": host.name, "version": version.as_dict()}
        )

    # -- health and metrics -------------------------------------------------------------
    async def healthz(self, request: Request) -> Response:
        return Response(200, {"status": "ok", "streams": self.registry.names()})

    def _metrics_payload(self) -> dict[str, Any]:
        streams = {}
        for host in self.registry.hosts():
            summary = host.describe()
            summary.pop("config", None)
            summary.update(host.metrics.as_dict())
            streams[host.name] = summary
        server = self.metrics.as_dict()
        if self.registry.pool is not None:
            server["publication_pool"] = self.registry.pool.describe()
        return {"server": server, "streams": streams}

    async def metrics_view(self, request: Request) -> Response:
        fmt = request.query.get("format", "json")
        if fmt == "prometheus":
            return await self.metrics_prometheus(request)
        if fmt != "json":
            raise BadRequest(
                f"unknown metrics format {fmt!r}; expected 'json' or 'prometheus'"
            )
        return Response(200, self._metrics_payload())

    async def metrics_prometheus(self, request: Request) -> Response:
        return Response(
            200,
            text=prometheus.render(self._metrics_payload()),
            content_type=prometheus.CONTENT_TYPE,
        )

    # -- stream lifecycle ----------------------------------------------------------------
    async def list_streams(self, request: Request) -> Response:
        return Response(
            200, {"streams": [host.describe() for host in self.registry.hosts()]}
        )

    async def create_stream(self, request: Request) -> Response:
        payload = self._object_body(request)
        name = payload.get("name")
        if not isinstance(name, str):
            raise BadRequest("the request body must carry a string 'name'")
        rows = payload.get("rows")
        if not isinstance(rows, list) or not rows or not all(
            isinstance(row, dict) for row in rows
        ):
            raise BadRequest("the request body must carry a non-empty 'rows' list of objects")
        config = payload.get("config")
        if config is not None and not isinstance(config, dict):
            raise BadRequest("'config' must be a JSON object when given")
        loop = asyncio.get_running_loop()
        host = await loop.run_in_executor(
            None, lambda: self.registry.create(name, rows, config)
        )
        return Response(201, {"stream": host.describe()})

    async def get_stream(self, request: Request) -> Response:
        return Response(200, {"stream": self._host(request).describe()})

    # -- history -------------------------------------------------------------------------
    async def versions(self, request: Request) -> Response:
        host = self._host(request)
        return Response(
            200,
            {"stream": host.name, "versions": host.store.lineage()},
            stream=True,
        )

    @staticmethod
    def _stage_breakdown(trace: dict[str, Any]) -> dict[str, Any] | None:
        """Per-stage durations of the ``publish.*`` span inside a tick trace."""

        def find_publish(node: dict[str, Any]) -> dict[str, Any] | None:
            if node.get("name", "").startswith("publish."):
                return node
            for child in node.get("children", ()):
                found = find_publish(child)
                if found is not None:
                    return found
            return None

        publish = find_publish(trace)
        if publish is None:
            return None
        stages: dict[str, float] = {}
        for child in publish.get("children", ()):
            name = child.get("name", "")
            stages[name] = stages.get(name, 0.0) + float(child.get("duration_s", 0.0))
        return {
            "publish": publish["name"],
            "duration_s": float(publish.get("duration_s", 0.0)),
            "stages": stages,
        }

    async def version_detail(self, request: Request) -> Response:
        host = self._host(request)
        version = self._version(host, request.params["version"])
        payload: dict[str, Any] = {"stream": host.name, "version": version.as_dict()}
        trace = host.trace_for(version.version)
        if trace is not None:
            payload["trace"] = trace
            breakdown = self._stage_breakdown(trace)
            if breakdown is not None:
                payload["stages"] = breakdown
        return Response(200, payload, stream=True)

    async def version_audit(self, request: Request) -> Response:
        host = self._host(request)
        version = self._version(host, request.params["version"])
        if version.report is None:
            raise NotFound(
                f"version {version.version} of stream {host.name!r} is unaudited"
            )
        payload: dict[str, Any] = {
            "stream": host.name,
            "version": version.version,
            "audit": version.report.summary(),
        }
        delta = host.store.report_delta(version.version)
        if delta is not None:
            payload["audit_delta"] = delta
        return Response(200, payload, stream=True)

    async def latest_audit(self, request: Request) -> Response:
        host = self._host(request)
        request.params["version"] = str(len(host.store) - 1)
        return await self.version_audit(request)

    # -- mutations -----------------------------------------------------------------------
    async def append(self, request: Request) -> Response:
        host = self._host(request)
        batch = self._rows_table(self._object_body(request))
        return await self._mutate(request, host, ("append", batch))

    async def delete(self, request: Request) -> Response:
        host = self._host(request)
        positions = self._positions(self._object_body(request))
        return await self._mutate(request, host, ("delete", positions))

    async def update(self, request: Request) -> Response:
        host = self._host(request)
        payload = self._object_body(request)
        positions = self._positions(payload)
        batch = self._rows_table(payload)
        if len(batch) != len(positions):
            raise BadRequest("'rows' must align one-to-one with 'positions'")
        return await self._mutate(request, host, ("update", (positions, batch)))
