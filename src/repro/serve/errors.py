"""HTTP-shaped errors for the serving daemon.

Handlers raise these; the app layer renders any :class:`ApiError` as a JSON
error body with the class's status code.  All of them derive from
:class:`~repro.exceptions.ServeError` (and therefore from
:class:`~repro.exceptions.ReproError`), so library callers embedding the
service can still catch everything with one ``except`` clause.
"""

from __future__ import annotations

from repro.exceptions import ServeError


class ApiError(ServeError):
    """An error carrying an HTTP status, rendered as a JSON error body."""

    status = 500
    reason = "Internal Server Error"

    def headers(self) -> dict[str, str]:
        """Extra response headers this error carries (e.g. ``Retry-After``)."""
        return {}


class BadRequest(ApiError):
    """The request body or parameters are malformed (400)."""

    status = 400
    reason = "Bad Request"


class NotFound(ApiError):
    """No such stream, version or route (404)."""

    status = 404
    reason = "Not Found"


class MethodNotAllowed(ApiError):
    """The route exists but not for this method (405)."""

    status = 405
    reason = "Method Not Allowed"


class Conflict(ApiError):
    """The stream cannot accept the mutation in its current state (409).

    Raised for duplicate stream names and for mutations against a poisoned
    stream - the message points at the PR-5 recovery path
    (:meth:`~repro.stream.IncrementalPublisher.resume`).
    """

    status = 409
    reason = "Conflict"


class PayloadTooLarge(ApiError):
    """The request body exceeds the daemon's size limit (413)."""

    status = 413
    reason = "Payload Too Large"


class TooManyRequests(ApiError):
    """The stream's bounded write queue is full (429).

    Backpressure instead of buffering: a mutation that would push the queue
    past ``--max-queue-batches`` / ``--max-queued-rows`` is rejected with
    this error, and ``retry_after`` (whole seconds, derived from the
    stream's observed publish latency) is rendered as the ``Retry-After``
    header so well-behaved clients pace themselves.
    """

    status = 429
    reason = "Too Many Requests"

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))

    def headers(self) -> dict[str, str]:
        return {"Retry-After": str(self.retry_after)}
