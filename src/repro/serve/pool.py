"""Process-parallel publication: a pool of persistent worker processes.

The daemon's per-stream workers are threads, so with ``--publish-workers 0``
concurrent tenants' publication compute (estimate -> partition -> audit)
contends on the GIL outside the BLAS calls.  With ``--publish-workers N`` the
registry routes every coalesced tick through this pool instead: a publication
job is just ``(shard path, queued mutation batches, stream config)``, executed
in a worker process via
:meth:`~repro.stream.IncrementalPublisher.publish_to_shard` - the worker
resumes the shard (taking ``store.lock``), publishes the tick and caches the
warm publisher for the shard's next tick.  The parent never holds a shard
lock in this mode; it re-pins its lock-free reader store
(:meth:`~repro.stream.store.ReleaseStore.refresh`) after each job and keeps
serving reads from immutable versions exactly as in thread mode.

Streams have **sticky worker affinity**: a stream's jobs always land on the
same worker slot, so its cached publisher (and its ``store.lock``) stay in
exactly one process.  The pool is deliberately *not* a
:class:`concurrent.futures.ProcessPoolExecutor` - there, one dead worker
breaks the whole pool (``BrokenProcessPool``), which would poison every
stream at once.  Here a worker crash or a job timeout raises
:class:`PublicationError` with ``poisoned=True`` for the affected stream only
(the host 409s pointing at restart-resume, matching an in-process
mid-publication failure) and the slot is respawned, so sibling streams keep
publishing.  The dead worker's ``store.lock`` files are stale (their pid is
gone) and are stolen by whichever process resumes the shard next.

Every worker runs a parent-death watchdog: if the daemon is SIGKILLed, the
orphaned workers ``os._exit`` within a poll interval, so their locks go stale
and a restarted daemon resumes every shard cleanly.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.data.schema import Schema
from repro.exceptions import StreamError
from repro.obs.tracing import Tracer

#: Seconds between parent-liveness polls in the worker watchdog.
_WATCHDOG_INTERVAL = 0.2

_logger = logging.getLogger("repro.serve.pool")


class PublicationError(StreamError):
    """A dispatched publication job failed.

    ``poisoned`` mirrors the in-process poisoning semantics: ``True`` when
    the shard's maintained state may be ahead of its published lineage (the
    job died mid-publication, timed out, or the worker crashed), in which
    case the stream must stop accepting writes until a restart resumes it;
    ``False`` for pure validation failures that left the shard consistent.
    """

    def __init__(self, message: str, *, poisoned: bool = True):
        super().__init__(message)
        self.poisoned = poisoned


def build_stream_model(config: Mapping[str, Any]):
    """Build a stream's privacy model from its (resolved) creation config.

    Worker processes reconstruct the model from the JSON config shipped with
    every job - models themselves are not sent across the pipe - so this is
    shared by the registry (thread mode, creation, resume) and the workers.
    """
    from repro.api.registry import MODELS

    return MODELS.build_filtered(
        config["model"],
        {
            "b": config["b"],
            "t": config["t"],
            "l": config["l"],
            "k": config["k"],
            "max_cells": config["max_cells"],
        },
    )


def _watch_parent(parent_pid: int) -> None:
    """Exit hard as soon as the parent daemon is gone (we were orphaned)."""
    while True:
        if os.getppid() != parent_pid:
            os._exit(1)
        time.sleep(_WATCHDOG_INTERVAL)


def _worker_main(
    connection: multiprocessing.connection.Connection,
    schema: Schema,
    parent_pid: int,
    jobs: int | None,
) -> None:
    """One publication worker: jobs in, version numbers out, publishers cached."""
    threading.Thread(
        target=_watch_parent, args=(parent_pid,), daemon=True
    ).start()
    from repro.stream import IncrementalPublisher

    cache: dict[str, Any] = {}
    tracer = Tracer()
    try:
        while True:
            try:
                job = connection.recv()
            except (EOFError, OSError):
                break
            if job is None:
                break
            shard = job["shard"]
            failure = None
            with tracer.span(
                "pool.worker",
                stream=job.get("stream"),
                shard=shard,
                pid=os.getpid(),
            ) as job_span:
                try:
                    publisher, version = IncrementalPublisher.publish_to_shard(
                        shard,
                        job["operations"],
                        schema=schema,
                        model=build_stream_model(job["config"]),
                        cached=cache.get(shard),
                        jobs=jobs,
                        tracer=tracer,
                    )
                except BaseException as error:  # noqa: BLE001 - reported to the parent
                    poisoned = bool(getattr(error, "shard_poisoned", True))
                    if poisoned:
                        # publish_to_shard already closed the broken publisher
                        # (releasing the lock); drop it from the cache too.
                        cache.pop(shard, None)
                    failure = {
                        "ok": False,
                        "poisoned": poisoned,
                        "error": f"{type(error).__name__}: {error}",
                    }
                else:
                    cache[shard] = publisher
                    job_span.annotate(version=version.version)
            root = tracer.take_root()
            if failure is not None:
                connection.send(failure)
                continue
            connection.send(
                {
                    "ok": True,
                    "version": version.version,
                    "trace": root.to_dict() if root is not None else None,
                }
            )
    finally:
        for publisher in cache.values():
            publisher.close()


class _WorkerHandle:
    """One pool slot: its process, its pipe, and the lock serializing jobs."""

    def __init__(self, context, schema: Schema, index: int, jobs: int | None):
        self._context = context
        self._schema = schema
        self._jobs = jobs
        self.index = index
        self.lock = threading.Lock()
        self.restarts = 0
        self._spawn()

    def _spawn(self) -> None:
        self.connection, child = self._context.Pipe()
        self.process = self._context.Process(
            target=_worker_main,
            args=(child, self._schema, os.getpid(), self._jobs),
            name=f"repro-serve-publish-{self.index}",
            daemon=True,
        )
        self.process.start()
        child.close()

    def respawn(self) -> None:
        """Kill whatever is left of the worker and start a fresh one."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10)
        try:
            self.connection.close()
        except OSError:
            pass
        self.restarts += 1
        self._spawn()
        _logger.warning(
            "publication worker respawned",
            extra={"slot": self.index, "restarts": self.restarts, "pid": self.process.pid},
        )


class PublicationPool:
    """N persistent publication worker processes with sticky stream affinity."""

    def __init__(
        self,
        workers: int,
        schema: Schema,
        *,
        timeout: float = 0.0,
        jobs: int | None = None,
    ):
        if workers < 1:
            raise StreamError("a publication pool requires at least one worker")
        if timeout < 0:
            raise StreamError("the publication timeout must be >= 0 (0 disables it)")
        # "spawn" keeps workers free of inherited thread/lock state (the
        # daemon is heavily threaded by the time streams are created).
        self._context = multiprocessing.get_context("spawn")
        self._timeout = float(timeout) or None
        self._assign_lock = threading.Lock()
        self._assignments: dict[str, int] = {}
        self._workers = [
            _WorkerHandle(self._context, schema, index, jobs)
            for index in range(workers)
        ]
        self._closed = False

    def __len__(self) -> int:
        return len(self._workers)

    def _worker_for(self, stream: str) -> _WorkerHandle:
        with self._assign_lock:
            index = self._assignments.get(stream)
            if index is None:
                index = len(self._assignments) % len(self._workers)
                self._assignments[stream] = index
        return self._workers[index]

    def pid_for(self, stream: str) -> int:
        """The pid of the worker a stream's jobs run on (tests, diagnostics)."""
        return self._worker_for(stream).process.pid

    def describe(self) -> dict[str, Any]:
        """JSON-able pool state for ``/metrics``."""
        return {
            "workers": len(self._workers),
            "restarts": sum(worker.restarts for worker in self._workers),
            "assignments": dict(sorted(self._assignments.items())),
        }

    def publish(
        self,
        stream: str,
        shard: str | Path,
        config: Mapping[str, Any],
        operations: Sequence[tuple[str, Any]],
    ) -> tuple[int, dict[str, Any] | None]:
        """Run one coalesced tick on the stream's worker.

        Returns ``(version number, trace)`` where ``trace`` is the worker's
        serialized publish span tree (``None`` when the worker sent none).

        Raises :class:`PublicationError` on any failure; ``poisoned`` on the
        error says whether the stream must stop (crash/timeout/poisoned
        shard) or merely failed validation.  A crashed or timed-out worker is
        respawned before the error is raised, so other streams on the same
        slot only ever see a cold publisher cache, never a dead pipe.
        """
        if self._closed:
            raise PublicationError(
                f"the publication pool is shut down (stream {stream!r})",
                poisoned=False,
            )
        worker = self._worker_for(stream)
        job = {
            "stream": stream,
            "shard": str(shard),
            "config": dict(config),
            "operations": list(operations),
        }
        with worker.lock:
            try:
                worker.connection.send(job)
                if self._timeout is not None and not worker.connection.poll(
                    self._timeout
                ):
                    _logger.error(
                        "publication worker timed out; respawning",
                        extra={
                            "stream": stream,
                            "slot": worker.index,
                            "timeout_seconds": self._timeout,
                        },
                    )
                    worker.respawn()
                    raise PublicationError(
                        f"publication of stream {stream!r} timed out after "
                        f"{self._timeout:g}s in worker process; the worker was "
                        "killed and the stream is poisoned until a restart "
                        "resumes it",
                        poisoned=True,
                    )
                result = worker.connection.recv()
            except PublicationError:
                raise
            except (EOFError, OSError, BrokenPipeError) as error:
                _logger.error(
                    "publication worker died mid-job; respawning",
                    extra={
                        "stream": stream,
                        "slot": worker.index,
                        "error": type(error).__name__,
                    },
                )
                worker.respawn()
                raise PublicationError(
                    f"the publication worker for stream {stream!r} died "
                    f"mid-job ({type(error).__name__}); the stream is "
                    "poisoned until a restart resumes it",
                    poisoned=True,
                ) from None
        if not result["ok"]:
            _logger.error(
                "publication job failed in worker",
                extra={
                    "stream": stream,
                    "slot": worker.index,
                    "poisoned": bool(result["poisoned"]),
                    "error": result["error"],
                },
            )
            raise PublicationError(result["error"], poisoned=bool(result["poisoned"]))
        return int(result["version"]), result.get("trace")

    def close(self) -> None:
        """Shut every worker down (cached publishers close, locks release)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.connection.send(None)
                except (OSError, BrokenPipeError):
                    pass
        for worker in self._workers:
            worker.process.join(timeout=10)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5)
            try:
                worker.connection.close()
            except OSError:
                pass


__all__ = ["PublicationPool", "PublicationError", "build_stream_model"]
