"""Daemon and per-stream metrics on the shared counting primitives.

Everything here is built from :class:`~repro.stats.CounterSet` and
:class:`~repro.stats.Histogram` - the same classes behind
``Session.stats`` - so the codebase has exactly one counter/histogram
implementation.  The ``/metrics`` endpoint renders these snapshots together
with live registry state (version counts, drift, queue depths).
"""

from __future__ import annotations

import time
from typing import Any

from repro.stats import CounterSet, Histogram


class StreamMetrics:
    """One stream's mutation/publish counters and publish-latency histogram."""

    COUNTERS = (
        "append_batches",
        "delete_batches",
        "update_batches",
        "publishes",
        "coalesced_operations",
        "failed_batches",
        # Mutations rejected with 429 because the bounded queue was full -
        # cumulative, so saturation stays observable after the burst passes.
        "rejected_batches",
    )

    def __init__(self) -> None:
        self.counters = CounterSet(self.COUNTERS)
        self.publish_seconds = Histogram()

    def as_dict(self) -> dict[str, Any]:
        """JSON-able snapshot of this stream's counters and latencies."""
        return {
            "counters": self.counters.as_dict(),
            "publish_seconds": self.publish_seconds.summary(),
        }


class ServeMetrics:
    """Daemon-wide request counters and per-class latency histograms."""

    COUNTERS = ("requests", "reads", "writes", "errors")

    def __init__(self) -> None:
        self.counters = CounterSet(self.COUNTERS)
        self.read_seconds = Histogram()
        self.write_seconds = Histogram()
        self._started = time.monotonic()

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the metrics (and therefore the daemon) started."""
        return time.monotonic() - self._started

    def observe_request(self, method: str, seconds: float, *, error: bool) -> None:
        """Record one handled request in the counters and the right histogram."""
        self.counters.increment("requests")
        if error:
            self.counters.increment("errors")
        if method == "GET":
            self.counters.increment("reads")
            self.read_seconds.observe(seconds)
        else:
            self.counters.increment("writes")
            self.write_seconds.observe(seconds)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able snapshot of the daemon-wide counters and latencies."""
        return {
            "uptime_seconds": self.uptime_seconds,
            "counters": self.counters.as_dict(),
            "read_seconds": self.read_seconds.summary(),
            "write_seconds": self.write_seconds.summary(),
        }
