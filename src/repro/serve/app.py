"""The asyncio HTTP daemon: sockets, framing and lifecycle around the service.

Stdlib only: :func:`asyncio.start_server` plus hand-rolled HTTP/1.1 framing
(request line, headers, ``Content-Length`` bodies, keep-alive), so the
clean-venv package install needs nothing beyond the library's own
dependencies.  One :class:`ServeApp` wires registry -> service -> router and
serves until cancelled; :meth:`ServeApp.run` is the blocking entry point the
``repro serve`` CLI command uses.

Concurrency model: the event loop parses requests and answers every read
directly from immutable published versions; writes are handed to the target
stream's worker thread and awaited, so a slow publication never blocks the
loop - readers keep streaming historical versions of *every* stream while
any number of publications are in flight.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import time
from http import HTTPStatus
from pathlib import Path
from typing import Any

from repro.data.schema import Schema
from repro.exceptions import ServeError
from repro.obs.tracing import new_trace_id
from repro.serve.errors import ApiError, PayloadTooLarge
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import DEFAULT_SLOW_PUBLISH_SECONDS, StreamRegistry
from repro.serve.router import Request, Response, Router, parse_query
from repro.serve.service import ReproService

#: Hard cap on request bodies (seed tables arrive as JSON rows).
MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADER_LINE = 64 * 1024

_logger = logging.getLogger("repro.serve.app")


class ServeApp:
    """One daemon instance: registry + service + router + asyncio server."""

    def __init__(
        self,
        data_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 8750,
        coalesce_ms: float = 50.0,
        schema: Schema | None = None,
        publish_workers: int = 0,
        publish_timeout: float = 0.0,
        jobs: int | None = None,
        max_queue_batches: int | None = None,
        max_queued_rows: int | None = None,
        slow_publish_seconds: float = DEFAULT_SLOW_PUBLISH_SECONDS,
    ):
        self.host = host
        self.port = int(port)
        self.registry = StreamRegistry(
            data_dir,
            coalesce_ms=coalesce_ms,
            schema=schema,
            publish_workers=publish_workers,
            publish_timeout=publish_timeout,
            jobs=jobs,
            max_queue_batches=max_queue_batches,
            max_queued_rows=max_queued_rows,
            slow_publish_seconds=slow_publish_seconds,
        )
        self.metrics = ServeMetrics()
        self.service = ReproService(self.registry, self.metrics)
        self.router = Router()
        self.service.register(self.router)
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ----------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (``port=0`` picks a free port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the socket and shut every stream down (locks released)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.get_running_loop().run_in_executor(None, self.registry.close)

    def run(self) -> None:
        """Serve until interrupted (the ``repro serve`` entry point)."""

        async def _main() -> None:
            await self.start()
            streams = len(self.registry)
            print(
                f"repro.serve: {streams} stream(s) resumed from "
                f"{self.registry.data_dir}; listening on "
                f"http://{self.host}:{self.port}",
                flush=True,
            )
            assert self._server is not None
            await self._server.serve_forever()

        try:
            asyncio.run(_main())
        except OSError as error:
            # Unresolvable host, port in use, ...: the CLI renders
            # ReproError subclasses as one-line errors (exit 1).
            raise ServeError(
                f"cannot serve on http://{self.host}:{self.port} ({error})"
            ) from None
        except KeyboardInterrupt:
            pass
        finally:
            self.registry.close()

    # -- HTTP framing -------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except PayloadTooLarge as exc:
                    # The oversized body was never read, so the connection
                    # cannot be reused: answer 413 and close.
                    self.metrics.counters.increment("requests")
                    self.metrics.counters.increment("errors")
                    await self._write_response(
                        writer,
                        Response(exc.status, self._error_payload(exc.reason, exc)),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                await self._write_response(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader) -> Request | None:
        """Parse one request off the wire (``None`` on a clean EOF)."""
        line = await reader.readline()
        if not line or len(line) > _MAX_HEADER_LINE:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _ = parts
        path, _, raw_query = target.partition("?")
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or len(line) > _MAX_HEADER_LINE:
                return None
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                expected = int(length)
            except ValueError:
                return None
            if expected < 0:
                return None
            if expected > MAX_BODY_BYTES:
                raise PayloadTooLarge(
                    f"the request body ({expected} bytes) exceeds "
                    f"{MAX_BODY_BYTES} bytes"
                )
            if expected:
                body = await reader.readexactly(expected)
        return Request(
            method=method,
            path=path,
            query=parse_query(raw_query),
            headers=headers,
            body=body,
        )

    async def _dispatch(self, request: Request) -> Response:
        start = time.perf_counter()
        request.trace_id = new_trace_id()
        error = False
        try:
            handler, params = self.router.resolve(request.method, request.path)
            request.params = params
            response = await handler(request)
        except ApiError as exc:
            error = True
            response = Response(
                exc.status,
                self._error_payload(exc.reason, exc),
                headers=exc.headers(),
            )
        except Exception as exc:  # noqa: BLE001 - one request must not kill the daemon
            error = True
            response = Response(
                500,
                self._error_payload(
                    "Internal Server Error", f"{type(exc).__name__}: {exc}"
                ),
            )
        seconds = time.perf_counter() - start
        response.headers.setdefault("X-Repro-Trace-Id", request.trace_id)
        self.metrics.observe_request(request.method, seconds, error=error)
        _logger.log(
            logging.WARNING if error else logging.DEBUG,
            "request handled",
            extra={
                "trace_id": request.trace_id,
                "method": request.method,
                "path": request.path,
                "status": response.status,
                "seconds": seconds,
            },
        )
        return response

    @staticmethod
    def _error_payload(reason: str, detail: Any) -> dict[str, str]:
        return {"error": reason, "message": str(detail)}

    @staticmethod
    def _head(
        response: Response, *, keep_alive: bool, body_length: int | None
    ) -> bytes:
        """The status line and headers (``body_length=None`` means chunked)."""
        try:
            reason = HTTPStatus(response.status).phrase
        except ValueError:
            reason = "Unknown"
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
        ]
        lines.extend(f"{name}: {value}" for name, value in response.headers.items())
        if body_length is None:
            lines.append("Transfer-Encoding: chunked")
        else:
            lines.append(f"Content-Length: {body_length}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        *,
        keep_alive: bool,
    ) -> None:
        """Send one response: chunked for ``stream=True``, Content-Length else.

        Streaming serializes the payload incrementally (historical versions
        and audit reports can run to many megabytes of JSON) and drains
        between chunks, so a slow client back-pressures the serialization
        instead of forcing the whole body into memory.  The chunk payloads
        concatenate to exactly the non-streaming body, so clients that decode
        the chunked framing still see byte-identical documents.
        """
        if response.stream:
            writer.write(self._head(response, keep_alive=keep_alive, body_length=None))
            for chunk in response.body_chunks():
                writer.write(
                    f"{len(chunk):X}\r\n".encode("latin-1") + chunk + b"\r\n"
                )
                await writer.drain()
            writer.write(b"0\r\n\r\n")
        else:
            body = response.body()
            writer.write(
                self._head(response, keep_alive=keep_alive, body_length=len(body))
                + body
            )
        await writer.drain()


__all__ = ["ServeApp", "MAX_BODY_BYTES"]
