"""The skyline audit engine (Definition 2, executed as one batched pass).

Auditing a release against a skyline ``{(B_1, t_1), ..., (B_p, t_p)}`` with
the per-adversary attack costs ``p`` full kernel estimations - the very cost
Figure 4(b) shows dominating the pipeline.  The engine removes the redundancy:

* **priors** for every skyline bandwidth come from one
  :class:`~repro.knowledge.prior.BatchedKernelPriorEstimator` pass, which
  shares all bandwidth-independent work (distance matrices, QI
  de-duplication, the count-tensor factorisation);
* **posteriors and risks** reuse the same vectorised
  :func:`~repro.inference.omega.posterior_for_groups` /
  :func:`~repro.privacy.disclosure.attack_result` path as the single-adversary
  attack, so the reported risks are numerically identical to looping
  :class:`~repro.privacy.disclosure.BackgroundKnowledgeAttack`;
* very large tables can bound the posterior working set with ``chunk_rows``
  and distribute adversaries over worker ``processes``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import AuditError
from repro.inference.omega import grouped_posterior
from repro.knowledge.backend import EstimatorConfig, resolve_config
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import BatchedKernelPriorEstimator, PriorBeliefs
from repro.obs.tracing import current_tracer
from repro.privacy.disclosure import (
    AttackResult,
    attack_result,
    count_vulnerable_tuples,
    max_risk,
)
from repro.privacy.measures import DistanceMeasure, sensitive_distance_measure

_TOLERANCE = 1e-12


@dataclass(frozen=True)
class SkylineAdversary:
    """One skyline point: the adversary ``Adv(B)`` and their budget ``t``."""

    bandwidth: Bandwidth
    t: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.t <= 1.0:
            raise AuditError("a skyline threshold t must lie in [0, 1]")

    @property
    def scalar_b(self) -> float:
        """The uniform bandwidth value, or ``nan`` for per-attribute bandwidths."""
        distinct = {value for _, value in self.bandwidth.items()}
        return float(next(iter(distinct))) if len(distinct) == 1 else float("nan")

    def describe(self) -> str:
        """Human-readable point description, e.g. ``"(b=0.3, t=0.2)"``."""
        return f"({self.bandwidth.describe()}, t={self.t:g})"


@dataclass
class SkylineAuditEntry:
    """The audit outcome for one skyline point."""

    adversary: SkylineAdversary
    attack: AttackResult

    @property
    def satisfied(self) -> bool:
        """Whether the release honours this point's budget."""
        return self.attack.worst_case_risk <= self.adversary.t + _TOLERANCE

    @property
    def margin(self) -> float:
        """Budget headroom ``t - worst_case_risk`` (negative when breached)."""
        return self.adversary.t - self.attack.worst_case_risk

    def as_dict(self) -> dict[str, Any]:
        """Flat, JSON-able summary of this entry."""
        return {
            "adversary": self.adversary.describe(),
            "b": None if np.isnan(self.adversary.scalar_b) else self.adversary.scalar_b,
            "t": self.adversary.t,
            "worst_case_risk": self.attack.worst_case_risk,
            "vulnerable_tuples": self.attack.vulnerable_tuples,
            "vulnerability_rate": self.attack.vulnerability_rate(),
            "satisfied": self.satisfied,
            "margin": self.margin,
        }


@dataclass
class SkylineAuditReport:
    """Everything one skyline audit produces."""

    entries: list[SkylineAuditEntry]
    n_rows: int
    n_groups: int
    timings: dict[str, float] = field(default_factory=dict)
    delta: dict[str, Any] | None = None  # set by incremental re-audits

    @property
    def satisfied(self) -> bool:
        """Whether the release honours *every* skyline point (Definition 2)."""
        return all(entry.satisfied for entry in self.entries)

    def worst_entry(self) -> SkylineAuditEntry:
        """The skyline point with the least headroom (the binding constraint)."""
        return min(self.entries, key=lambda entry: entry.margin)

    def summary(self) -> dict[str, Any]:
        """Flat, JSON-able summary of the whole audit."""
        return {
            "rows": self.n_rows,
            "groups": self.n_groups,
            "skyline_size": len(self.entries),
            "satisfied": self.satisfied,
            "worst_margin": self.worst_entry().margin,
            "prepare_seconds": self.timings.get("prepare_seconds", 0.0),
            "audit_seconds": self.timings.get("audit_seconds", 0.0),
            "adversaries": [entry.as_dict() for entry in self.entries],
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"skyline audit: {self.n_groups} groups over {self.n_rows} tuples, "
            f"{len(self.entries)} adversaries "
            f"({'SATISFIED' if self.satisfied else 'BREACHED'})",
        ]
        for entry in self.entries:
            verdict = "ok" if entry.satisfied else "BREACH"
            lines.append(
                f"  Adv{entry.adversary.describe()}: worst-case gain "
                f"{entry.attack.worst_case_risk:.4f} (margin {entry.margin:+.4f}), "
                f"{entry.attack.vulnerable_tuples} vulnerable tuples [{verdict}]"
            )
        lines.append(
            "timings: "
            + ", ".join(f"{name}={value:.3f}s" for name, value in self.timings.items())
        )
        return "\n".join(lines)


def _normalise_skyline(
    table: MicrodataTable, skyline: Iterable[tuple[float | Bandwidth, float]]
) -> list[SkylineAdversary]:
    points = []
    for b, t in skyline:
        bandwidth = (
            b if isinstance(b, Bandwidth)
            else Bandwidth.uniform(table.quasi_identifier_names, float(b))
        )
        missing = [name for name in table.quasi_identifier_names if name not in bandwidth]
        if missing:
            raise AuditError(f"skyline bandwidth does not cover attributes {missing}")
        points.append(SkylineAdversary(bandwidth=bandwidth, t=float(t)))
    if not points:
        raise AuditError("a skyline audit requires at least one (B, t) point")
    return points


class SkylineAuditEngine:
    """Audit releases of one table against a fixed skyline of adversaries.

    Parameters
    ----------
    table:
        The original microdata table (the adversary model assumes membership
        and QI values are known).
    skyline:
        ``(B_i, t_i)`` pairs; ``B_i`` is a scalar (uniform across QI
        attributes) or a full :class:`~repro.knowledge.bandwidth.Bandwidth`.
    config:
        An :class:`~repro.knowledge.backend.EstimatorConfig` carrying the
        estimation knobs (kernel, cell budget, contraction threads, batch and
        fit chunk sizes) end to end; the ``kernel``/``max_cells``/``jobs``
        keywords below are back-compat overrides layered on top of it.
    kernel:
        Kernel for prior estimation (default Epanechnikov, as in the paper).
    method:
        Posterior inference, ``"omega"`` (default) or ``"exact"``.
    measure:
        Distance measure; defaults to the paper's smoothed-JS measure.
    priors:
        Optional precomputed priors aligned with ``skyline`` (``None`` entries
        are estimated).  This is how :class:`~repro.api.session.Session`
        injects its cache.
    chunk_rows:
        Optional row cap per posterior pass (bounds memory on huge tables).
        Distinct from ``config.chunk_rows``, which chunks the estimator's
        *fit* over a table source.
    max_cells:
        Cell budget for the factored estimation backend's blocked contraction
        (see :class:`~repro.knowledge.backend.FactoredPriorBackend`; ``0``
        selects the flat reference sweep).
    jobs:
        Worker threads for the estimation backend's parallel contraction
        (``None`` resolves to ``REPRO_JOBS`` / ``os.cpu_count()``; priors are
        bitwise identical at any thread count).

    One engine may audit many releases (each :meth:`audit` call takes its own
    ``groups``); the priors are estimated once, on first use.
    """

    def __init__(
        self,
        table: MicrodataTable,
        skyline: Iterable[tuple[float | Bandwidth, float]],
        *,
        config: EstimatorConfig | None = None,
        kernel: str | None = None,
        method: str = "omega",
        measure: DistanceMeasure | None = None,
        priors: Sequence[PriorBeliefs | None] | None = None,
        chunk_rows: int | None = None,
        max_cells: int | None = None,
        jobs: int | None = None,
        distance_matrices: dict[str, np.ndarray] | None = None,
    ):
        if method not in {"omega", "exact"}:
            raise AuditError("method must be 'omega' or 'exact'")
        from repro.data.source import as_table

        self.table = as_table(table)
        table = self.table
        self.adversaries = _normalise_skyline(table, skyline)
        self.config = resolve_config(config, kernel=kernel, max_cells=max_cells, jobs=jobs)
        self.kernel = self.config.kernel
        self.method = method
        self.chunk_rows = chunk_rows
        self.max_cells = int(self.config.max_cells)
        self.jobs = self.config.jobs
        self._distance_matrices = distance_matrices
        self.measure = measure if measure is not None else sensitive_distance_measure(table)
        priors = list(priors) if priors is not None else [None] * len(self.adversaries)
        if len(priors) != len(self.adversaries):
            raise AuditError("priors must align one-to-one with the skyline points")
        self._priors: list[PriorBeliefs | None] = priors
        self.prepare_seconds = 0.0

    # -- preparation -----------------------------------------------------------------
    @property
    def prepared(self) -> bool:
        """Whether every adversary's prior is available."""
        return all(prior is not None for prior in self._priors)

    def prepare(self) -> "SkylineAuditEngine":
        """Estimate every missing prior in one batched pass (idempotent)."""
        missing = [i for i, prior in enumerate(self._priors) if prior is None]
        if not missing:
            return self
        start = time.perf_counter()
        with current_tracer().span("engine.prepare", adversaries=len(missing)):
            estimator = BatchedKernelPriorEstimator(
                config=self.config,
                distance_matrices=self._distance_matrices,
            ).fit(self.table)
            estimated = estimator.prior_for_table(
                [self.adversaries[i].bandwidth for i in missing]
            )
            for index, prior in zip(missing, estimated):
                self._priors[index] = prior
        self.prepare_seconds += time.perf_counter() - start
        return self

    @property
    def priors(self) -> list[PriorBeliefs]:
        """The per-adversary priors (estimating them on first access)."""
        self.prepare()
        return list(self._priors)

    # -- auditing --------------------------------------------------------------------
    def audit(
        self, groups: Sequence[np.ndarray], *, processes: int | None = None
    ) -> SkylineAuditReport:
        """Audit one release (a list of group index arrays) against the skyline.

        ``processes`` distributes adversaries over that many worker processes
        (sensible when the per-adversary posterior work dominates, i.e. very
        large tables); the default runs serially.
        """
        if processes is not None and processes < 1:
            raise AuditError("processes must be a positive integer")
        self.prepare()
        start = time.perf_counter()
        sensitive_codes = self.table.sensitive_codes()
        group_list = [np.asarray(group, dtype=np.int64) for group in groups]
        jobs = [
            (prior.matrix, adversary.scalar_b, adversary.t)
            for prior, adversary in zip(self._priors, self.adversaries)
        ]
        if processes is None or processes == 1 or len(jobs) == 1:
            tracer = current_tracer()
            attacks = []
            for matrix, b, t in jobs:
                with tracer.span("engine.adversary", b=b, t=t):
                    attacks.append(
                        attack_result(
                            matrix, sensitive_codes, group_list, self.measure,
                            adversary_b=b, threshold=t,
                            method=self.method, chunk_rows=self.chunk_rows,
                        )
                    )
        else:
            with multiprocessing.Pool(
                processes=min(processes, len(jobs)),
                initializer=_init_worker,
                initargs=(sensitive_codes, group_list, self.measure, self.method, self.chunk_rows),
            ) as pool:
                attacks = pool.map(_attack_in_worker, jobs)
        entries = [
            SkylineAuditEntry(adversary=adversary, attack=attack)
            for adversary, attack in zip(self.adversaries, attacks)
        ]
        timings = {
            "prepare_seconds": self.prepare_seconds,
            "audit_seconds": time.perf_counter() - start,
        }
        return SkylineAuditReport(
            entries=entries,
            n_rows=self.table.n_rows,
            n_groups=sum(1 for group in group_list if group.size),
            timings=timings,
        )

    def audit_incremental(
        self,
        groups: Sequence[np.ndarray],
        *,
        previous_groups: Sequence[np.ndarray],
        previous_report: SkylineAuditReport,
        dirty_rows: np.ndarray | Sequence[np.ndarray],
        previous_of: np.ndarray | None = None,
    ) -> SkylineAuditReport:
        """Re-audit a release after a stream batch, touching only changed groups.

        The engine's dirty-group mode for streams: only some rows are *dirty*
        - appended, corrected, or with a changed prior.  Per adversary, a
        group's member risks are copied verbatim from ``previous_report``
        when its previous-index image appeared in ``previous_groups`` and
        none of its members is dirty for that adversary; every other group
        goes through the same posterior pass as :meth:`audit`, so the
        assembled risks are numerically identical to a full re-audit.

        Parameters
        ----------
        groups:
            The current release (its groups must cover every current row).
        previous_groups:
            The previous release's groups (sorted index arrays, as released,
            in the *previous* table's index space).
        previous_report:
            The report :meth:`audit` / :meth:`audit_incremental` produced for
            ``previous_groups``; its per-tuple risks are the reuse source.
        dirty_rows:
            One boolean mask over the current table's rows - or one mask per
            skyline adversary - marking rows whose risk may have changed.
            Rows without a previous counterpart must always be marked dirty.
        previous_of:
            Optional int array mapping every current row to its position in
            the previous table (``-1`` for rows with no counterpart, e.g.
            appended rows).  Omitted, the table is assumed to have grown at
            the end (previous indices unchanged) - the append-only case.
            Deleting/updating publishers pass the surviving-row map so clean
            shrunken releases still reuse their groups' risks.
        """
        self.prepare()
        start = time.perf_counter()
        n_rows = self.table.n_rows
        sensitive_codes = self.table.sensitive_codes()
        group_list = [np.asarray(group, dtype=np.int64) for group in groups]
        if len(previous_report.entries) != len(self.adversaries):
            raise AuditError(
                "previous report does not cover the same skyline as this engine"
            )
        if isinstance(dirty_rows, np.ndarray):
            masks = [dirty_rows] * len(self.adversaries)
        else:
            masks = list(dirty_rows)
        if len(masks) != len(self.adversaries):
            raise AuditError("dirty_rows must align one-to-one with the skyline points")
        masks = [np.asarray(mask, dtype=bool) for mask in masks]
        for mask in masks:
            if mask.shape != (n_rows,):
                raise AuditError("each dirty-row mask must cover every current row")
        n_previous = previous_report.n_rows
        if previous_of is None:
            previous_of = np.arange(n_rows, dtype=np.int64)
            previous_of[n_previous:] = -1
        else:
            previous_of = np.asarray(previous_of, dtype=np.int64)
            if previous_of.shape != (n_rows,):
                raise AuditError("previous_of must map every current row")
            if previous_of.size and previous_of.max() >= n_previous:
                raise AuditError("previous_of points beyond the previous report's rows")
        surviving = previous_of >= 0
        previous_keys = {np.asarray(g, dtype=np.int64).tobytes() for g in previous_groups}

        tracer = current_tracer()
        entries: list[SkylineAuditEntry] = []
        recomputed: list[int] = []
        for prior, adversary, mask, previous_entry in zip(
            self._priors, self.adversaries, masks, previous_report.entries
        ):
            with tracer.span(
                "engine.adversary", b=adversary.scalar_b, t=adversary.t
            ) as adversary_span:
                previous_risks = previous_entry.attack.risks
                risks = np.zeros(n_rows, dtype=np.float64)
                risks[surviving] = previous_risks[previous_of[surviving]]
                stale = [
                    group
                    for group in group_list
                    if mask[group].any()
                    or not surviving[group].all()
                    or previous_of[group].tobytes() not in previous_keys
                ]
                if stale:
                    members = np.concatenate(stale)
                    offsets = np.cumsum(
                        [0] + [group.size for group in stale[:-1]], dtype=np.int64
                    )
                    prior_rows = prior.matrix[members]
                    posterior_rows = grouped_posterior(
                        prior_rows, sensitive_codes[members], offsets, method=self.method
                    )
                    risks[members] = self.measure.rowwise(prior_rows, posterior_rows)
                attack = AttackResult(
                    adversary_b=adversary.scalar_b,
                    threshold=adversary.t,
                    risks=risks,
                    vulnerable_tuples=count_vulnerable_tuples(risks, adversary.t),
                    worst_case_risk=max_risk(risks),
                )
                adversary_span.annotate(recomputed_groups=len(stale))
                entries.append(SkylineAuditEntry(adversary=adversary, attack=attack))
                recomputed.append(len(stale))
        timings = {
            "prepare_seconds": self.prepare_seconds,
            "audit_seconds": time.perf_counter() - start,
        }
        return SkylineAuditReport(
            entries=entries,
            n_rows=n_rows,
            n_groups=sum(1 for group in group_list if group.size),
            timings=timings,
            delta={
                "recomputed_groups": recomputed,
                "total_groups": len(group_list),
            },
        )


# -- multiprocessing workers ---------------------------------------------------------
#
# Workers receive the release-wide state once (pool initializer) and then one
# prior matrix per adversary, mirroring repro.api.sweep's worker scheme.

_WORKER_STATE: tuple | None = None


def _init_worker(sensitive_codes, group_list, measure, method, chunk_rows) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (sensitive_codes, group_list, measure, method, chunk_rows)


def _attack_in_worker(job: tuple[np.ndarray, float, float]) -> AttackResult:
    assert _WORKER_STATE is not None, "worker state not initialised"
    sensitive_codes, group_list, measure, method, chunk_rows = _WORKER_STATE
    matrix, b, t = job
    return attack_result(
        matrix, sensitive_codes, group_list, measure,
        adversary_b=b, threshold=t, method=method, chunk_rows=chunk_rows,
    )


def audit_skyline(
    table: MicrodataTable,
    groups: Sequence[np.ndarray],
    skyline: Iterable[tuple[float | Bandwidth, float]],
    **engine_options: Any,
) -> SkylineAuditReport:
    """One-call helper: build a :class:`SkylineAuditEngine` and audit ``groups``."""
    processes = engine_options.pop("processes", None)
    engine = SkylineAuditEngine(table, skyline, **engine_options)
    return engine.audit(groups, processes=processes)
