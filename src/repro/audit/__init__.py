"""Batched skyline auditing: one release against many adversaries at once.

The skyline (B,t)-privacy principle (Definition 2) judges a release against a
whole *set* of adversaries ``{Adv(B_1), ..., Adv(B_p)}``, each with its own
disclosure budget ``t_i``.  :class:`SkylineAuditEngine` performs that audit as
one batched computation - sharing the kernel-estimation work across
bandwidths and the group bookkeeping across adversaries - instead of looping
a :class:`~repro.privacy.disclosure.BackgroundKnowledgeAttack` per point.

See :mod:`repro.audit.engine` for the implementation and
:meth:`repro.api.session.Session.audit_skyline` /
:meth:`repro.api.pipeline.Pipeline.audit_skyline` for the cached entry points.
"""

from repro.audit.engine import (
    SkylineAdversary,
    SkylineAuditEngine,
    SkylineAuditEntry,
    SkylineAuditReport,
    audit_skyline,
)

__all__ = [
    "SkylineAdversary",
    "SkylineAuditEngine",
    "SkylineAuditEntry",
    "SkylineAuditReport",
    "audit_skyline",
]
