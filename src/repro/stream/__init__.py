"""Incremental publication of full-lifecycle microdata streams.

The paper publishes one static table; this package turns the pipeline into a
continuously running, restartable publisher:

* :mod:`repro.stream.publisher` - :class:`IncrementalPublisher`: accepts
  append, delete and update batches and republishes incrementally (exact
  additive/negative/paired prior deltas, dirty-leaf re-splits and merge-ups,
  delta skyline audits, periodic full-refine compaction of accumulated
  drift) instead of re-running estimate -> partition -> audit from scratch;
  :meth:`IncrementalPublisher.resume` reconstructs a publisher from a
  disk-backed store mid-stream;
* :mod:`repro.stream.tree` - :class:`PartitionTree`: the recorded Mondrian
  split tree that routes appended/corrected rows, supports local subtree
  surgery and round-trips through JSON for persistence;
* :mod:`repro.stream.store` - :class:`ReleaseStore` / :class:`StreamVersion`
  / :class:`StreamDelta`: version lineage with per-version audit deltas,
  optionally disk-backed (JSON-lines lineage + npz releases + restart
  state) for serving historical versions and resuming.

Entry points: :meth:`repro.api.session.Session.stream`,
:meth:`repro.api.pipeline.Pipeline.streaming`, and the CLI ``stream``
subcommand (``--delete-frac/--update-frac/--store-dir/--resume``).
"""

from repro.stream.publisher import IncrementalPublisher
from repro.stream.store import (
    DEFAULT_VERSION_CACHE_BYTES,
    ReleaseStore,
    StreamDelta,
    StreamVersion,
    VersionCache,
)
from repro.stream.tree import PartitionTree

__all__ = [
    "DEFAULT_VERSION_CACHE_BYTES",
    "IncrementalPublisher",
    "PartitionTree",
    "ReleaseStore",
    "StreamDelta",
    "StreamVersion",
    "VersionCache",
]
