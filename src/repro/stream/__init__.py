"""Incremental publication of append-only microdata streams.

The paper publishes one static table; this package turns the pipeline into a
continuously running publisher:

* :mod:`repro.stream.publisher` - :class:`IncrementalPublisher`: accepts
  append batches and republishes incrementally (additive prior updates, dirty
  leaf re-splits, delta skyline audits) instead of re-running estimate ->
  partition -> audit from scratch;
* :mod:`repro.stream.tree` - :class:`PartitionTree`: the recorded Mondrian
  split tree that routes appended rows and supports local subtree surgery;
* :mod:`repro.stream.store` - :class:`ReleaseStore` / :class:`StreamVersion`
  / :class:`StreamDelta`: version lineage with per-version audit deltas.

Entry points: :meth:`repro.api.session.Session.stream`,
:meth:`repro.api.pipeline.Pipeline.streaming`, and the CLI ``stream``
subcommand.
"""

from repro.stream.publisher import IncrementalPublisher
from repro.stream.store import ReleaseStore, StreamDelta, StreamVersion
from repro.stream.tree import PartitionTree

__all__ = [
    "IncrementalPublisher",
    "PartitionTree",
    "ReleaseStore",
    "StreamDelta",
    "StreamVersion",
]
