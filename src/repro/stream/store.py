"""Release versioning for incremental publication streams.

Every accepted batch produces one :class:`StreamVersion`: the release, its
skyline audit report, and a :class:`StreamDelta` describing exactly how much
work the incremental engine did (and skipped) relative to a full republish.
The :class:`ReleaseStore` keeps the version lineage and derives per-version
audit *deltas* - how each adversary's worst-case risk and vulnerable-tuple
count moved when the batch landed, the quantity the paper's risk-continuity
result says should move smoothly with the data.

The store is in-memory by default; constructed with ``path=...`` it becomes
**disk-backed**: every accepted version is persisted as one line of
``lineage.jsonl`` (the JSON-able version summary) plus one
``version-NNNNN.npz`` (the table's columns and domains, the released groups
and the per-adversary risk vectors), and the publisher's restart state (the
recorded split tree, accumulated compaction drift, configuration) lands in
``state.json``.  Opening a directory that already holds a lineage *loads* it
- pass the table ``schema`` so the persisted columns can be decoded - after
which the store serves historical versions and
:meth:`~repro.stream.publisher.IncrementalPublisher.resume` can continue the
stream exactly where it stopped.  Corrupt or partial directories raise
:class:`~repro.exceptions.StreamError` naming the offending file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.anonymize.partition import AnonymizedRelease
from repro.audit.engine import SkylineAdversary, SkylineAuditEntry, SkylineAuditReport
from repro.data.schema import Schema
from repro.data.table import AttributeDomain, MicrodataTable
from repro.exceptions import DataError, StreamError
from repro.knowledge.bandwidth import Bandwidth
from repro.privacy.disclosure import AttackResult, count_vulnerable_tuples, max_risk

#: Name of the exclusive publisher lock inside a disk-backed store directory.
LOCK_FILE = "store.lock"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # e.g. PermissionError: the process exists but belongs to someone else.
        return True
    return True


@dataclass
class StreamDelta:
    """What one batch changed, and what the incremental engine reused."""

    appended_rows: int
    reused_groups: int
    rechecked_leaves: int
    refined_leaves: int
    rebuilt_regions: int
    rebuild: bool = False  # full from-scratch rebuild (e.g. a domain grew)
    deleted_rows: int = 0
    updated_rows: int = 0
    compacted: bool = False  # periodic full-refine compaction of drift
    coalesced_operations: int = 1  # mutation batches folded into this version
    audit_recomputed_groups: list[int] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flat, JSON-able summary of this delta."""
        return {
            "appended_rows": self.appended_rows,
            "deleted_rows": self.deleted_rows,
            "updated_rows": self.updated_rows,
            "reused_groups": self.reused_groups,
            "rechecked_leaves": self.rechecked_leaves,
            "refined_leaves": self.refined_leaves,
            "rebuilt_regions": self.rebuilt_regions,
            "rebuild": self.rebuild,
            "compacted": self.compacted,
            "coalesced_operations": self.coalesced_operations,
            "audit_recomputed_groups": list(self.audit_recomputed_groups),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "StreamDelta":
        """Rebuild a delta from its :meth:`as_dict` payload (store round-trip)."""
        return cls(
            appended_rows=int(payload["appended_rows"]),
            reused_groups=int(payload["reused_groups"]),
            rechecked_leaves=int(payload["rechecked_leaves"]),
            refined_leaves=int(payload["refined_leaves"]),
            rebuilt_regions=int(payload["rebuilt_regions"]),
            rebuild=bool(payload.get("rebuild", False)),
            deleted_rows=int(payload.get("deleted_rows", 0)),
            updated_rows=int(payload.get("updated_rows", 0)),
            compacted=bool(payload.get("compacted", False)),
            coalesced_operations=int(payload.get("coalesced_operations", 1)),
            audit_recomputed_groups=[int(v) for v in payload.get("audit_recomputed_groups", [])],
            timings={k: float(v) for k, v in payload.get("timings", {}).items()},
        )


@dataclass
class StreamVersion:
    """One published version of the stream: release + audit + provenance."""

    version: int
    release: AnonymizedRelease
    report: SkylineAuditReport | None
    delta: StreamDelta

    @property
    def n_rows(self) -> int:
        """Rows covered by this version."""
        return self.release.table.n_rows

    @property
    def n_groups(self) -> int:
        """Groups released in this version."""
        return self.release.n_groups

    @property
    def satisfied(self) -> bool:
        """Whether this version honours its whole skyline (True when unaudited)."""
        return self.report is None or self.report.satisfied

    def as_dict(self) -> dict[str, Any]:
        """Flat, JSON-able summary of this version."""
        row: dict[str, Any] = {
            "version": self.version,
            "rows": self.n_rows,
            "groups": self.n_groups,
            "satisfied": self.satisfied,
            "delta": self.delta.as_dict(),
        }
        if self.report is not None:
            row["audit"] = self.report.summary()
        return row


class ReleaseStore:
    """The ordered lineage of a stream's published versions.

    Parameters
    ----------
    path:
        Optional directory for the disk-backed mode (see the module
        docstring).  Created when absent; a directory already holding a
        ``lineage.jsonl`` is *loaded*, which requires ``schema``.
    schema:
        The table schema used to decode persisted columns when loading.
    lock:
        Pass ``False`` to open a disk-backed directory *without* taking its
        exclusive publisher lock.  A lock-free store is a reader: it serves
        the loaded lineage and can :meth:`refresh` to pick up versions that
        another process (the holder of ``store.lock``) appends - the serving
        daemon's process-parallel mode opens every shard this way in the
        parent while the publication worker processes hold the locks.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        schema: Schema | None = None,
        lock: bool = True,
    ) -> None:
        self._versions: list[StreamVersion] = []
        self._path = Path(path) if path is not None else None
        self._schema = schema
        self._owns_lock = False
        self.state: dict[str, Any] | None = None
        if self._path is not None:
            self._path.mkdir(parents=True, exist_ok=True)
            if lock:
                self._acquire_lock()
            if (self._path / "lineage.jsonl").exists():
                if schema is None:
                    raise StreamError(
                        f"loading the release store at {self._path} requires a schema"
                    )
                self._load()

    @property
    def path(self) -> Path | None:
        """The backing directory (``None`` for in-memory stores)."""
        return self._path

    # -- the exclusive publisher lock ---------------------------------------------------
    def _acquire_lock(self) -> None:
        """Take the directory's exclusive publisher lock (pid + ``O_EXCL``).

        Two live publishers writing one directory would interleave
        ``lineage.jsonl`` appends and clobber each other's ``state.json``, so
        a disk-backed store stamps its pid into ``store.lock`` on open.  A
        lock held by a *dead* process is stale and is stolen; a lock held by
        this process is re-entrant (the same process may reopen a directory
        it is already publishing, e.g. to serve historical versions), and
        only the first opener releases the file on :meth:`close`.
        """
        lock_path = self._path / LOCK_FILE
        while True:
            try:
                descriptor = os.open(lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                holder = self._lock_holder(lock_path)
                if holder == os.getpid():
                    return
                if holder is not None and _pid_alive(holder):
                    raise StreamError(
                        f"the release store at {self._path} is locked by "
                        f"process {holder} ({LOCK_FILE}); close that "
                        "publisher (or remove the lock file if the holder "
                        "is gone) before opening the store"
                    )
                # Unparseable or dead holder: stale.  Removing it races
                # against other stealers, so loop back to the O_EXCL create -
                # exactly one contender wins, the others see the fresh lock.
                try:
                    lock_path.unlink()
                except FileNotFoundError:
                    pass
                continue
            try:
                os.write(descriptor, f"{os.getpid()}\n".encode())
            finally:
                os.close(descriptor)
            self._owns_lock = True
            return

    @staticmethod
    def _lock_holder(lock_path: Path) -> int | None:
        """The pid recorded in a lock file (``None`` when unreadable)."""
        try:
            return int(lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    def close(self) -> None:
        """Release the publisher lock (a no-op for in-memory stores).

        The store object stays readable - historical versions live in
        memory - but the directory becomes available to another publisher.
        """
        if self._path is not None and self._owns_lock:
            try:
                (self._path / LOCK_FILE).unlink()
            except FileNotFoundError:
                pass
            self._owns_lock = False

    def acquire_lock(self) -> None:
        """Take the publisher lock on a store opened with ``lock=False``.

        The explicit half of the lock handoff: a reader store that is about
        to become the publisher (e.g. a publication worker process adopting a
        shard) claims the directory before its first :meth:`add`.  Raises
        :class:`~repro.exceptions.StreamError` when another live process
        holds the lock; stale locks from dead holders are stolen.
        """
        if self._path is None or self._owns_lock:
            return
        self._acquire_lock()

    def refresh(self) -> int:
        """Re-pin the in-memory lineage to the directory's current contents.

        Loads every ``lineage.jsonl`` line beyond the versions already in
        memory (plus the current ``state.json``) and returns how many new
        versions arrived.  This is how the serving daemon's parent process
        observes publications performed by its worker processes: the workers
        append to the shard under ``store.lock``, the parent refreshes its
        lock-free reader store and keeps serving immutable versions.  The
        reload round-trips through the same decoding as a cold open, so the
        refreshed versions are byte-identical to the worker's.
        """
        if self._path is None:
            return 0
        lineage_path = self._path / "lineage.jsonl"
        if not lineage_path.exists():
            return 0
        if self._schema is None:
            raise StreamError(
                f"refreshing the release store at {self._path} requires a schema"
            )
        lines = [
            line for line in lineage_path.read_text().splitlines() if line.strip()
        ]
        added = 0
        for position in range(len(self._versions), len(lines)):
            try:
                payload = json.loads(lines[position])
            except json.JSONDecodeError as error:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"is not valid JSON ({error})"
                ) from None
            if payload.get("version") != position:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"holds version {payload.get('version')!r}, expected {position} "
                    "(the lineage must be contiguous from 0)"
                )
            self._versions.append(self._load_version(payload))
            added += 1
        if added:
            state_path = self._path / "state.json"
            if state_path.exists():
                try:
                    self.state = json.loads(state_path.read_text())
                except json.JSONDecodeError as error:
                    raise StreamError(
                        f"corrupt release store: {state_path} is not valid JSON ({error})"
                    ) from None
        return added

    def add(self, version: StreamVersion, *, state: dict[str, Any] | None = None) -> StreamVersion:
        """Append the next version (versions must be contiguous from 0).

        ``state`` is the publisher's restart payload; disk-backed stores
        persist it (latest wins) so :meth:`IncrementalPublisher.resume` can
        reconstruct the publisher mid-stream.
        """
        if version.version != len(self._versions):
            raise StreamError(
                f"version {version.version} breaks the lineage; expected {len(self._versions)}"
            )
        self._versions.append(version)
        if state is not None:
            self.state = state
        if self._path is not None:
            self._persist(version, state)
        return version

    # -- persistence -------------------------------------------------------------------
    def _version_file(self, version: int) -> Path:
        return self._path / f"version-{version:05d}.npz"

    def _persist(self, version: StreamVersion, state: dict[str, Any] | None) -> None:
        table = version.release.table
        arrays: dict[str, np.ndarray] = {
            "groups": np.concatenate(version.release.groups).astype(np.int64),
            "group_sizes": np.asarray(
                [group.size for group in version.release.groups], dtype=np.int64
            ),
        }
        for attribute in table.schema:
            name = attribute.name
            if attribute.is_numeric:
                arrays[f"col_{name}"] = table.column(name).astype(np.float64)
                arrays[f"dom_{name}"] = table.domain(name).values.astype(np.float64)
            else:
                arrays[f"col_{name}"] = np.asarray(table.column(name), dtype=np.str_)
                arrays[f"dom_{name}"] = np.asarray(
                    table.domain(name).values, dtype=np.str_
                )
        payload = version.as_dict()
        payload["release_method"] = version.release.method
        if version.report is not None:
            arrays["risks"] = np.stack(
                [entry.attack.risks for entry in version.report.entries]
            )
            payload["report"] = {
                "skyline": [
                    [list(entry.adversary.bandwidth.items()), entry.adversary.t]
                    for entry in version.report.entries
                ],
                "timings": dict(version.report.timings),
                "delta": version.report.delta,
            }
        np.savez_compressed(self._version_file(version.version), **arrays)
        with (self._path / "lineage.jsonl").open("a") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        if state is not None:
            # state.json is the only copy of the resume state: write the new
            # one beside it and atomically replace, so a crash mid-write
            # never destroys the previous good state.
            scratch = self._path / "state.json.tmp"
            scratch.write_text(json.dumps(state, sort_keys=True) + "\n")
            os.replace(scratch, self._path / "state.json")

    def _load(self) -> None:
        lineage_path = self._path / "lineage.jsonl"
        lines = [
            line for line in lineage_path.read_text().splitlines() if line.strip()
        ]
        if not lines:
            raise StreamError(f"corrupt release store: {lineage_path} holds no versions")
        for position, line in enumerate(lines):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"is not valid JSON ({error})"
                ) from None
            if payload.get("version") != position:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"holds version {payload.get('version')!r}, expected {position} "
                    "(the lineage must be contiguous from 0)"
                )
            self._versions.append(self._load_version(payload))
        state_path = self._path / "state.json"
        if state_path.exists():
            try:
                self.state = json.loads(state_path.read_text())
            except json.JSONDecodeError as error:
                raise StreamError(
                    f"corrupt release store: {state_path} is not valid JSON ({error})"
                ) from None

    def _load_version(self, payload: dict[str, Any]) -> StreamVersion:
        number = int(payload["version"])
        version_path = self._version_file(number)
        if not version_path.exists():
            raise StreamError(
                f"corrupt release store: {version_path} is missing "
                f"(version {number} is in the lineage)"
            )
        try:
            with np.load(version_path) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (OSError, ValueError) as error:
            raise StreamError(
                f"corrupt release store: {version_path} is unreadable ({error})"
            ) from None
        try:
            columns: dict[str, Any] = {}
            domains: dict[str, AttributeDomain] = {}
            for attribute in self._schema:
                name = attribute.name
                columns[name] = arrays[f"col_{name}"].tolist()
                domains[name] = AttributeDomain(
                    attribute, arrays[f"dom_{name}"].tolist()
                )
            table = MicrodataTable(self._schema, columns, domains=domains)
            boundaries = np.cumsum(arrays["group_sizes"])[:-1]
            groups = [
                np.asarray(group, dtype=np.int64)
                for group in np.split(arrays["groups"], boundaries)
            ]
            release = AnonymizedRelease(
                table, groups, method=str(payload["release_method"])
            )
            report = None
            if "report" in payload:
                risks = arrays["risks"]
                skyline = payload["report"]["skyline"]
                if risks.shape != (len(skyline), table.n_rows):
                    raise StreamError(
                        f"corrupt release store: {version_path} holds a "
                        f"{risks.shape} risks array but the lineage records "
                        f"{len(skyline)} adversaries over {table.n_rows} rows"
                    )
                report = self._load_report(
                    payload["report"], risks, table.n_rows, groups
                )
            return StreamVersion(
                version=number,
                release=release,
                report=report,
                delta=StreamDelta.from_dict(payload["delta"]),
            )
        except (KeyError, TypeError, ValueError, DataError) as error:
            raise StreamError(
                f"corrupt release store: version {number} cannot be decoded ({error})"
            ) from None

    def _load_report(
        self,
        payload: dict[str, Any],
        risks: np.ndarray,
        n_rows: int,
        groups: list[np.ndarray],
    ) -> SkylineAuditReport:
        entries = []
        for (items, t), risk_row in zip(payload["skyline"], risks):
            adversary = SkylineAdversary(
                bandwidth=Bandwidth({name: float(value) for name, value in items}),
                t=float(t),
            )
            attack = AttackResult(
                adversary_b=adversary.scalar_b,
                threshold=adversary.t,
                risks=np.asarray(risk_row, dtype=np.float64),
                vulnerable_tuples=count_vulnerable_tuples(risk_row, adversary.t),
                worst_case_risk=max_risk(risk_row),
            )
            entries.append(SkylineAuditEntry(adversary=adversary, attack=attack))
        return SkylineAuditReport(
            entries=entries,
            n_rows=n_rows,
            n_groups=sum(1 for group in groups if group.size),
            timings={k: float(v) for k, v in payload.get("timings", {}).items()},
            delta=payload.get("delta"),
        )

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[StreamVersion]:
        # Iterate a snapshot: the serving daemon reads lineages concurrently
        # with the (append-only) writer thread.
        return iter(list(self._versions))

    def __getitem__(self, version: int) -> StreamVersion:
        return self._versions[version]

    def latest(self) -> StreamVersion:
        """The most recently published version."""
        if not self._versions:
            raise StreamError("the stream has not published any version yet")
        return self._versions[-1]

    def report_delta(self, version: int) -> list[dict[str, Any]] | None:
        """Per-adversary audit movement from ``version - 1`` to ``version``.

        Returns one row per skyline point with the change in worst-case risk,
        margin and vulnerable-tuple count, or ``None`` when either version is
        unaudited (or ``version`` is the seed release).
        """
        if version <= 0 or version >= len(self._versions):
            return None
        current = self._versions[version].report
        previous = self._versions[version - 1].report
        if current is None or previous is None:
            return None
        rows = []
        for entry, before in zip(current.entries, previous.entries):
            rows.append(
                {
                    "adversary": entry.adversary.describe(),
                    "worst_case_risk": entry.attack.worst_case_risk,
                    "worst_case_risk_change": entry.attack.worst_case_risk
                    - before.attack.worst_case_risk,
                    "margin": entry.margin,
                    "vulnerable_tuples": entry.attack.vulnerable_tuples,
                    "vulnerable_tuples_change": entry.attack.vulnerable_tuples
                    - before.attack.vulnerable_tuples,
                    "satisfied": entry.satisfied,
                }
            )
        return rows

    def lineage(self) -> list[dict[str, Any]]:
        """JSON-able summaries of every version, with audit deltas attached."""
        rows = []
        for version in list(self._versions):
            row = version.as_dict()
            delta = self.report_delta(version.version)
            if delta is not None:
                row["audit_delta"] = delta
            rows.append(row)
        return rows
