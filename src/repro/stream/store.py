"""Release versioning for incremental publication streams.

Every accepted batch produces one :class:`StreamVersion`: the release, its
skyline audit report, and a :class:`StreamDelta` describing exactly how much
work the incremental engine did (and skipped) relative to a full republish.
The :class:`ReleaseStore` keeps the version lineage and derives per-version
audit *deltas* - how each adversary's worst-case risk and vulnerable-tuple
count moved when the batch landed, the quantity the paper's risk-continuity
result says should move smoothly with the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.anonymize.partition import AnonymizedRelease
from repro.audit.engine import SkylineAuditReport
from repro.exceptions import StreamError


@dataclass
class StreamDelta:
    """What one batch changed, and what the incremental engine reused."""

    appended_rows: int
    reused_groups: int
    rechecked_leaves: int
    refined_leaves: int
    rebuilt_regions: int
    rebuild: bool = False  # full from-scratch rebuild (e.g. a domain grew)
    audit_recomputed_groups: list[int] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flat, JSON-able summary of this delta."""
        return {
            "appended_rows": self.appended_rows,
            "reused_groups": self.reused_groups,
            "rechecked_leaves": self.rechecked_leaves,
            "refined_leaves": self.refined_leaves,
            "rebuilt_regions": self.rebuilt_regions,
            "rebuild": self.rebuild,
            "audit_recomputed_groups": list(self.audit_recomputed_groups),
            "timings": dict(self.timings),
        }


@dataclass
class StreamVersion:
    """One published version of the stream: release + audit + provenance."""

    version: int
    release: AnonymizedRelease
    report: SkylineAuditReport | None
    delta: StreamDelta

    @property
    def n_rows(self) -> int:
        """Rows covered by this version."""
        return self.release.table.n_rows

    @property
    def n_groups(self) -> int:
        """Groups released in this version."""
        return self.release.n_groups

    @property
    def satisfied(self) -> bool:
        """Whether this version honours its whole skyline (True when unaudited)."""
        return self.report is None or self.report.satisfied

    def as_dict(self) -> dict[str, Any]:
        """Flat, JSON-able summary of this version."""
        row: dict[str, Any] = {
            "version": self.version,
            "rows": self.n_rows,
            "groups": self.n_groups,
            "satisfied": self.satisfied,
            "delta": self.delta.as_dict(),
        }
        if self.report is not None:
            row["audit"] = self.report.summary()
        return row


class ReleaseStore:
    """The ordered lineage of a stream's published versions."""

    def __init__(self) -> None:
        self._versions: list[StreamVersion] = []

    def add(self, version: StreamVersion) -> StreamVersion:
        """Append the next version (versions must be contiguous from 0)."""
        if version.version != len(self._versions):
            raise StreamError(
                f"version {version.version} breaks the lineage; expected {len(self._versions)}"
            )
        self._versions.append(version)
        return version

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[StreamVersion]:
        return iter(self._versions)

    def __getitem__(self, version: int) -> StreamVersion:
        return self._versions[version]

    def latest(self) -> StreamVersion:
        """The most recently published version."""
        if not self._versions:
            raise StreamError("the stream has not published any version yet")
        return self._versions[-1]

    def report_delta(self, version: int) -> list[dict[str, Any]] | None:
        """Per-adversary audit movement from ``version - 1`` to ``version``.

        Returns one row per skyline point with the change in worst-case risk,
        margin and vulnerable-tuple count, or ``None`` when either version is
        unaudited (or ``version`` is the seed release).
        """
        if version <= 0 or version >= len(self._versions):
            return None
        current = self._versions[version].report
        previous = self._versions[version - 1].report
        if current is None or previous is None:
            return None
        rows = []
        for entry, before in zip(current.entries, previous.entries):
            rows.append(
                {
                    "adversary": entry.adversary.describe(),
                    "worst_case_risk": entry.attack.worst_case_risk,
                    "worst_case_risk_change": entry.attack.worst_case_risk
                    - before.attack.worst_case_risk,
                    "margin": entry.margin,
                    "vulnerable_tuples": entry.attack.vulnerable_tuples,
                    "vulnerable_tuples_change": entry.attack.vulnerable_tuples
                    - before.attack.vulnerable_tuples,
                    "satisfied": entry.satisfied,
                }
            )
        return rows

    def lineage(self) -> list[dict[str, Any]]:
        """JSON-able summaries of every version, with audit deltas attached."""
        rows = []
        for version in self._versions:
            row = version.as_dict()
            delta = self.report_delta(version.version)
            if delta is not None:
                row["audit_delta"] = delta
            rows.append(row)
        return rows
