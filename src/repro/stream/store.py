"""Release versioning for incremental publication streams.

Every accepted batch produces one :class:`StreamVersion`: the release, its
skyline audit report, and a :class:`StreamDelta` describing exactly how much
work the incremental engine did (and skipped) relative to a full republish.
The :class:`ReleaseStore` keeps the version lineage and derives per-version
audit *deltas* - how each adversary's worst-case risk and vulnerable-tuple
count moved when the batch landed, the quantity the paper's risk-continuity
result says should move smoothly with the data.

The store is in-memory by default; constructed with ``path=...`` it becomes
**disk-backed**: every accepted version is persisted as one line of
``lineage.jsonl`` (the JSON-able version summary) plus one
``version-NNNNN.npz`` (the table's ``int32`` code columns and domains, the
released groups and the per-adversary risk vectors - written *uncompressed*
so the large members can be memory-mapped back), and the publisher's restart
state (the recorded split tree, accumulated compaction drift, configuration)
lands in ``state.json``.  Opening a directory that already holds a lineage
*loads the lineage only* - pass the table ``schema`` so the persisted
columns can be decoded - version archives stay on disk as lazy stubs and
are decoded on first access through a byte-bounded :class:`VersionCache`
LRU, so a store holding hundreds of million-row versions opens in
milliseconds and serves ``lineage()`` / ``report_delta()`` straight from
the persisted audit summaries without touching a single archive.  Legacy
compressed archives (the pre-v2 ``col_<name>`` value format) still decode.
Corrupt or partial directories raise
:class:`~repro.exceptions.StreamError` naming the offending file.
"""

from __future__ import annotations

import json
import os
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.anonymize.partition import AnonymizedRelease
from repro.audit.engine import SkylineAdversary, SkylineAuditEntry, SkylineAuditReport
from repro.data.schema import Schema
from repro.data.table import AttributeDomain, MicrodataTable
from repro.exceptions import DataError, StreamError
from repro.knowledge.bandwidth import Bandwidth
from repro.privacy.disclosure import AttackResult, count_vulnerable_tuples, max_risk

#: Name of the exclusive publisher lock inside a disk-backed store directory.
LOCK_FILE = "store.lock"

#: Default byte budget for the decoded-version LRU of a disk-backed store.
DEFAULT_VERSION_CACHE_BYTES = 256 * 1024 * 1024


class VersionCache:
    """A thread-safe, byte-bounded LRU of decoded :class:`StreamVersion` objects.

    Lazy stores decode a version archive only when the version is actually
    accessed; the decoded object (table, groups, risk vectors) is parked
    here so repeated reads of a hot version - the serving daemon answering
    ``GET /streams/<s>/versions/<v>`` - pay the npz decode once, not per
    request.  Entries are keyed by ``(store, version, file identity)`` and
    evicted least-recently-used once the decoded bytes exceed ``max_bytes``;
    the most recent entry always survives so one oversized version can still
    be served.  A single cache may be shared across stores (the serving
    registry hands every shard the same instance, making the budget global).
    """

    def __init__(self, max_bytes: int = DEFAULT_VERSION_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise StreamError("the version cache budget must be non-negative")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple, tuple[StreamVersion, int]] = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> "StreamVersion | None":
        """The cached version under ``key``, refreshed to most-recent, or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: tuple, version: "StreamVersion", nbytes: int) -> None:
        """Park a decoded version, evicting LRU entries past the byte budget."""
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous[1]
            self._entries[key] = (version, int(nbytes))
            self._bytes += int(nbytes)
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._bytes -= evicted
                self.evictions += 1

    @property
    def current_bytes(self) -> int:
        """Decoded bytes currently parked in the cache."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters and the current footprint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # e.g. PermissionError: the process exists but belongs to someone else.
        return True
    return True


@dataclass
class StreamDelta:
    """What one batch changed, and what the incremental engine reused."""

    appended_rows: int
    reused_groups: int
    rechecked_leaves: int
    refined_leaves: int
    rebuilt_regions: int
    rebuild: bool = False  # full from-scratch rebuild (e.g. a domain grew)
    deleted_rows: int = 0
    updated_rows: int = 0
    compacted: bool = False  # periodic full-refine compaction of drift
    coalesced_operations: int = 1  # mutation batches folded into this version
    audit_recomputed_groups: list[int] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flat, JSON-able summary of this delta."""
        return {
            "appended_rows": self.appended_rows,
            "deleted_rows": self.deleted_rows,
            "updated_rows": self.updated_rows,
            "reused_groups": self.reused_groups,
            "rechecked_leaves": self.rechecked_leaves,
            "refined_leaves": self.refined_leaves,
            "rebuilt_regions": self.rebuilt_regions,
            "rebuild": self.rebuild,
            "compacted": self.compacted,
            "coalesced_operations": self.coalesced_operations,
            "audit_recomputed_groups": list(self.audit_recomputed_groups),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "StreamDelta":
        """Rebuild a delta from its :meth:`as_dict` payload (store round-trip)."""
        return cls(
            appended_rows=int(payload["appended_rows"]),
            reused_groups=int(payload["reused_groups"]),
            rechecked_leaves=int(payload["rechecked_leaves"]),
            refined_leaves=int(payload["refined_leaves"]),
            rebuilt_regions=int(payload["rebuilt_regions"]),
            rebuild=bool(payload.get("rebuild", False)),
            deleted_rows=int(payload.get("deleted_rows", 0)),
            updated_rows=int(payload.get("updated_rows", 0)),
            compacted=bool(payload.get("compacted", False)),
            coalesced_operations=int(payload.get("coalesced_operations", 1)),
            audit_recomputed_groups=[int(v) for v in payload.get("audit_recomputed_groups", [])],
            timings={k: float(v) for k, v in payload.get("timings", {}).items()},
        )


@dataclass
class StreamVersion:
    """One published version of the stream: release + audit + provenance."""

    version: int
    release: AnonymizedRelease
    report: SkylineAuditReport | None
    delta: StreamDelta

    @property
    def n_rows(self) -> int:
        """Rows covered by this version."""
        return self.release.table.n_rows

    @property
    def n_groups(self) -> int:
        """Groups released in this version."""
        return self.release.n_groups

    @property
    def satisfied(self) -> bool:
        """Whether this version honours its whole skyline (True when unaudited)."""
        return self.report is None or self.report.satisfied

    def as_dict(self) -> dict[str, Any]:
        """Flat, JSON-able summary of this version."""
        row: dict[str, Any] = {
            "version": self.version,
            "rows": self.n_rows,
            "groups": self.n_groups,
            "satisfied": self.satisfied,
            "delta": self.delta.as_dict(),
        }
        if self.report is not None:
            row["audit"] = self.report.summary()
        return row


class ReleaseStore:
    """The ordered lineage of a stream's published versions.

    Parameters
    ----------
    path:
        Optional directory for the disk-backed mode (see the module
        docstring).  Created when absent; a directory already holding a
        ``lineage.jsonl`` is *loaded*, which requires ``schema``.
    schema:
        The table schema used to decode persisted columns when loading.
    lock:
        Pass ``False`` to open a disk-backed directory *without* taking its
        exclusive publisher lock.  A lock-free store is a reader: it serves
        the loaded lineage and can :meth:`refresh` to pick up versions that
        another process (the holder of ``store.lock``) appends - the serving
        daemon's process-parallel mode opens every shard this way in the
        parent while the publication worker processes hold the locks.
    version_cache:
        The byte-bounded LRU that holds lazily decoded versions.  Defaults
        to a private :class:`VersionCache` with
        :data:`DEFAULT_VERSION_CACHE_BYTES`; pass a shared instance to bound
        the decoded footprint across many stores (the serving registry does).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        schema: Schema | None = None,
        lock: bool = True,
        version_cache: VersionCache | None = None,
    ) -> None:
        # Versions appended live stay resident; versions discovered on disk
        # are lazy stubs (None here, their lineage payload in _payloads) and
        # decode on demand through the version cache.
        self._versions: list[StreamVersion | None] = []
        self._payloads: list[dict[str, Any] | None] = []
        self._path = Path(path) if path is not None else None
        self._schema = schema
        self._owns_lock = False
        self._cache = version_cache if version_cache is not None else VersionCache()
        self.state: dict[str, Any] | None = None
        if self._path is not None:
            self._path.mkdir(parents=True, exist_ok=True)
            if lock:
                self._acquire_lock()
            if (self._path / "lineage.jsonl").exists():
                if schema is None:
                    raise StreamError(
                        f"loading the release store at {self._path} requires a schema"
                    )
                self._load()

    @property
    def path(self) -> Path | None:
        """The backing directory (``None`` for in-memory stores)."""
        return self._path

    # -- the exclusive publisher lock ---------------------------------------------------
    def _acquire_lock(self) -> None:
        """Take the directory's exclusive publisher lock (pid + ``O_EXCL``).

        Two live publishers writing one directory would interleave
        ``lineage.jsonl`` appends and clobber each other's ``state.json``, so
        a disk-backed store stamps its pid into ``store.lock`` on open.  A
        lock held by a *dead* process is stale and is stolen; a lock held by
        this process is re-entrant (the same process may reopen a directory
        it is already publishing, e.g. to serve historical versions), and
        only the first opener releases the file on :meth:`close`.
        """
        lock_path = self._path / LOCK_FILE
        while True:
            try:
                descriptor = os.open(lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                holder = self._lock_holder(lock_path)
                if holder == os.getpid():
                    return
                if holder is not None and _pid_alive(holder):
                    raise StreamError(
                        f"the release store at {self._path} is locked by "
                        f"process {holder} ({LOCK_FILE}); close that "
                        "publisher (or remove the lock file if the holder "
                        "is gone) before opening the store"
                    )
                # Unparseable or dead holder: stale.  Removing it races
                # against other stealers, so loop back to the O_EXCL create -
                # exactly one contender wins, the others see the fresh lock.
                try:
                    lock_path.unlink()
                except FileNotFoundError:
                    pass
                continue
            try:
                os.write(descriptor, f"{os.getpid()}\n".encode())
            finally:
                os.close(descriptor)
            self._owns_lock = True
            return

    @staticmethod
    def _lock_holder(lock_path: Path) -> int | None:
        """The pid recorded in a lock file (``None`` when unreadable)."""
        try:
            return int(lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    def close(self) -> None:
        """Release the publisher lock (a no-op for in-memory stores).

        The store object stays readable - historical versions live in
        memory - but the directory becomes available to another publisher.
        """
        if self._path is not None and self._owns_lock:
            try:
                (self._path / LOCK_FILE).unlink()
            except FileNotFoundError:
                pass
            self._owns_lock = False

    def acquire_lock(self) -> None:
        """Take the publisher lock on a store opened with ``lock=False``.

        The explicit half of the lock handoff: a reader store that is about
        to become the publisher (e.g. a publication worker process adopting a
        shard) claims the directory before its first :meth:`add`.  Raises
        :class:`~repro.exceptions.StreamError` when another live process
        holds the lock; stale locks from dead holders are stolen.
        """
        if self._path is None or self._owns_lock:
            return
        self._acquire_lock()

    def refresh(self) -> int:
        """Re-pin the in-memory lineage to the directory's current contents.

        Loads every ``lineage.jsonl`` line beyond the versions already in
        memory (plus the current ``state.json``) and returns how many new
        versions arrived.  This is how the serving daemon's parent process
        observes publications performed by its worker processes: the workers
        append to the shard under ``store.lock``, the parent refreshes its
        lock-free reader store and keeps serving immutable versions.  New
        versions arrive as lazy stubs (only the archive's existence is
        checked here); the first access decodes through the same path as a
        cold open, so refreshed versions are byte-identical to the worker's.
        """
        if self._path is None:
            return 0
        lineage_path = self._path / "lineage.jsonl"
        if not lineage_path.exists():
            return 0
        if self._schema is None:
            raise StreamError(
                f"refreshing the release store at {self._path} requires a schema"
            )
        lines = [
            line for line in lineage_path.read_text().splitlines() if line.strip()
        ]
        added = 0
        for position in range(len(self._versions), len(lines)):
            try:
                payload = json.loads(lines[position])
            except json.JSONDecodeError as error:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"is not valid JSON ({error})"
                ) from None
            if payload.get("version") != position:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"holds version {payload.get('version')!r}, expected {position} "
                    "(the lineage must be contiguous from 0)"
                )
            self._append_lazy(payload)
            added += 1
        if added:
            state_path = self._path / "state.json"
            if state_path.exists():
                try:
                    self.state = json.loads(state_path.read_text())
                except json.JSONDecodeError as error:
                    raise StreamError(
                        f"corrupt release store: {state_path} is not valid JSON ({error})"
                    ) from None
        return added

    def add(self, version: StreamVersion, *, state: dict[str, Any] | None = None) -> StreamVersion:
        """Append the next version (versions must be contiguous from 0).

        ``state`` is the publisher's restart payload; disk-backed stores
        persist it (latest wins) so :meth:`IncrementalPublisher.resume` can
        reconstruct the publisher mid-stream.
        """
        if version.version != len(self._versions):
            raise StreamError(
                f"version {version.version} breaks the lineage; expected {len(self._versions)}"
            )
        self._versions.append(version)
        self._payloads.append(None)
        if state is not None:
            self.state = state
        if self._path is not None:
            self._persist(version, state)
        return version

    # -- persistence -------------------------------------------------------------------
    def _version_file(self, version: int) -> Path:
        return self._path / f"version-{version:05d}.npz"

    def _persist(self, version: StreamVersion, state: dict[str, Any] | None) -> None:
        table = version.release.table
        arrays: dict[str, np.ndarray] = {
            "groups": np.concatenate(version.release.groups).astype(np.int64),
            "group_sizes": np.asarray(
                [group.size for group in version.release.groups], dtype=np.int64
            ),
        }
        # v2 format: int32 code columns plus their domains.  The codes are
        # the compact on-disk dual of the values (a million-row column is
        # 4 MB instead of per-row strings), and writing them *uncompressed*
        # (np.savez, not savez_compressed) lets the loader memory-map the
        # members straight out of the archive.
        for attribute in table.schema:
            name = attribute.name
            arrays[f"codes_{name}"] = table.codes(name)
            if attribute.is_numeric:
                arrays[f"dom_{name}"] = table.domain(name).values.astype(np.float64)
            else:
                arrays[f"dom_{name}"] = np.asarray(
                    table.domain(name).values, dtype=np.str_
                )
        payload = version.as_dict()
        payload["release_method"] = version.release.method
        if version.report is not None:
            arrays["risks"] = np.stack(
                [entry.attack.risks for entry in version.report.entries]
            )
            payload["report"] = {
                "skyline": [
                    [list(entry.adversary.bandwidth.items()), entry.adversary.t]
                    for entry in version.report.entries
                ],
                "timings": dict(version.report.timings),
                "delta": version.report.delta,
            }
        np.savez(self._version_file(version.version), **arrays)
        with (self._path / "lineage.jsonl").open("a") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        if state is not None:
            # state.json is the only copy of the resume state: write the new
            # one beside it and atomically replace, so a crash mid-write
            # never destroys the previous good state.
            scratch = self._path / "state.json.tmp"
            scratch.write_text(json.dumps(state, sort_keys=True) + "\n")
            os.replace(scratch, self._path / "state.json")

    def _load(self) -> None:
        lineage_path = self._path / "lineage.jsonl"
        lines = [
            line for line in lineage_path.read_text().splitlines() if line.strip()
        ]
        if not lines:
            raise StreamError(f"corrupt release store: {lineage_path} holds no versions")
        for position, line in enumerate(lines):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"is not valid JSON ({error})"
                ) from None
            if payload.get("version") != position:
                raise StreamError(
                    f"corrupt release store: {lineage_path} line {position + 1} "
                    f"holds version {payload.get('version')!r}, expected {position} "
                    "(the lineage must be contiguous from 0)"
                )
            self._append_lazy(payload)
        state_path = self._path / "state.json"
        if state_path.exists():
            try:
                self.state = json.loads(state_path.read_text())
            except json.JSONDecodeError as error:
                raise StreamError(
                    f"corrupt release store: {state_path} is not valid JSON ({error})"
                ) from None

    def _append_lazy(self, payload: dict[str, Any]) -> None:
        """Record a persisted version as a lazy stub (archive checked, not read)."""
        number = int(payload["version"])
        version_path = self._version_file(number)
        if not version_path.exists():
            raise StreamError(
                f"corrupt release store: {version_path} is missing "
                f"(version {number} is in the lineage)"
            )
        self._versions.append(None)
        self._payloads.append(payload)

    def _resolve(self, position: int) -> StreamVersion:
        """The version at ``position``, decoding a lazy stub via the cache."""
        version = self._versions[position]
        if version is not None:
            return version
        version_path = self._version_file(position)
        try:
            stamp = os.stat(version_path)
        except OSError:
            raise StreamError(
                f"corrupt release store: {version_path} is missing "
                f"(version {position} is in the lineage)"
            ) from None
        # Keyed by path *and* file identity: a directory rebuilt in place
        # never serves another run's decoded versions from a shared cache.
        key = (str(version_path.resolve()), position, stamp.st_size, stamp.st_mtime_ns)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        version, nbytes = self._load_version(self._payloads[position])
        self._cache.put(key, version, nbytes)
        return version

    def _load_version(self, payload: dict[str, Any]) -> tuple[StreamVersion, int]:
        """Decode one persisted version; returns it with its decoded byte count.

        Understands both archive formats: the current v2 layout
        (``codes_<name>`` int32 columns, memory-mapped straight out of the
        uncompressed archive) and the legacy compressed ``col_<name>`` value
        layout from older stores.
        """
        number = int(payload["version"])
        version_path = self._version_file(number)
        if not version_path.exists():
            raise StreamError(
                f"corrupt release store: {version_path} is missing "
                f"(version {number} is in the lineage)"
            )
        from repro.data.source import mmap_npz_member, read_npz_member

        try:
            with zipfile.ZipFile(version_path) as archive:
                members = set(archive.namelist())
        except (OSError, zipfile.BadZipFile) as error:
            raise StreamError(
                f"corrupt release store: {version_path} is unreadable ({error})"
            ) from None
        nbytes = 0
        try:
            domains: dict[str, AttributeDomain] = {}
            if any(name.startswith("codes_") for name in members):
                # v2: big members are memory-mapped, only domains are read.
                codes: dict[str, np.ndarray] = {}
                for attribute in self._schema:
                    name = attribute.name
                    codes[name] = mmap_npz_member(version_path, f"codes_{name}.npy")
                    domain_values = read_npz_member(version_path, f"dom_{name}.npy")
                    domains[name] = AttributeDomain(attribute, domain_values.tolist())
                    nbytes += codes[name].nbytes + domain_values.nbytes
                table = MicrodataTable.from_codes(self._schema, codes, domains)
                groups_flat = mmap_npz_member(version_path, "groups.npy")
                group_sizes = read_npz_member(version_path, "group_sizes.npy")
                risks = (
                    mmap_npz_member(version_path, "risks.npy")
                    if "risks.npy" in members
                    else None
                )
            else:
                try:
                    with np.load(version_path) as archive:
                        arrays = {key: archive[key] for key in archive.files}
                except (OSError, ValueError) as error:
                    raise StreamError(
                        f"corrupt release store: {version_path} is unreadable ({error})"
                    ) from None
                columns: dict[str, Any] = {}
                for attribute in self._schema:
                    name = attribute.name
                    columns[name] = arrays[f"col_{name}"].tolist()
                    domains[name] = AttributeDomain(
                        attribute, arrays[f"dom_{name}"].tolist()
                    )
                    nbytes += arrays[f"col_{name}"].nbytes + arrays[f"dom_{name}"].nbytes
                table = MicrodataTable(self._schema, columns, domains=domains)
                groups_flat = arrays["groups"]
                group_sizes = arrays["group_sizes"]
                risks = arrays.get("risks")
            nbytes += int(groups_flat.nbytes) + int(group_sizes.nbytes)
            boundaries = np.cumsum(group_sizes)[:-1]
            groups = [
                np.asarray(group, dtype=np.int64)
                for group in np.split(np.asarray(groups_flat, dtype=np.int64), boundaries)
            ]
            release = AnonymizedRelease(
                table, groups, method=str(payload["release_method"])
            )
            report = None
            if "report" in payload:
                if risks is None:
                    raise StreamError(
                        f"corrupt release store: {version_path} holds no risks "
                        "array but the lineage records an audit report"
                    )
                skyline = payload["report"]["skyline"]
                if risks.shape != (len(skyline), table.n_rows):
                    raise StreamError(
                        f"corrupt release store: {version_path} holds a "
                        f"{risks.shape} risks array but the lineage records "
                        f"{len(skyline)} adversaries over {table.n_rows} rows"
                    )
                nbytes += int(risks.nbytes)
                report = self._load_report(
                    payload["report"], risks, table.n_rows, groups
                )
            version = StreamVersion(
                version=number,
                release=release,
                report=report,
                delta=StreamDelta.from_dict(payload["delta"]),
            )
            return version, nbytes
        except (KeyError, TypeError, ValueError, DataError) as error:
            raise StreamError(
                f"corrupt release store: version {number} cannot be decoded ({error})"
            ) from None

    def _load_report(
        self,
        payload: dict[str, Any],
        risks: np.ndarray,
        n_rows: int,
        groups: list[np.ndarray],
    ) -> SkylineAuditReport:
        entries = []
        for (items, t), risk_row in zip(payload["skyline"], risks):
            adversary = SkylineAdversary(
                bandwidth=Bandwidth({name: float(value) for name, value in items}),
                t=float(t),
            )
            attack = AttackResult(
                adversary_b=adversary.scalar_b,
                threshold=adversary.t,
                risks=np.asarray(risk_row, dtype=np.float64),
                vulnerable_tuples=count_vulnerable_tuples(risk_row, adversary.t),
                worst_case_risk=max_risk(risk_row),
            )
            entries.append(SkylineAuditEntry(adversary=adversary, attack=attack))
        return SkylineAuditReport(
            entries=entries,
            n_rows=n_rows,
            n_groups=sum(1 for group in groups if group.size),
            timings={k: float(v) for k, v in payload.get("timings", {}).items()},
            delta=payload.get("delta"),
        )

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[StreamVersion]:
        # Iterate a snapshot of positions: the serving daemon reads lineages
        # concurrently with the (append-only) writer thread.
        return iter([self._resolve(position) for position in range(len(self._versions))])

    def __getitem__(self, version: int) -> StreamVersion:
        position = version if version >= 0 else len(self._versions) + version
        if position < 0 or position >= len(self._versions):
            raise IndexError(f"version {version} is not in the lineage")
        return self._resolve(position)

    def latest(self) -> StreamVersion:
        """The most recently published version."""
        if not self._versions:
            raise StreamError("the stream has not published any version yet")
        return self._resolve(len(self._versions) - 1)

    @property
    def version_cache(self) -> VersionCache:
        """The LRU holding this store's lazily decoded versions."""
        return self._cache

    def _audit_rows(self, position: int) -> list[dict[str, Any]] | None:
        """Per-adversary summary rows for one version, without decoding stubs.

        Resident versions summarise their in-memory report; lazy stubs are
        served straight from the ``audit`` block persisted in the lineage
        (the same :meth:`SkylineAuditEntry.as_dict` rows), so lineage-level
        queries never touch a version archive.
        """
        version = self._versions[position]
        if version is not None:
            if version.report is None:
                return None
            return [entry.as_dict() for entry in version.report.entries]
        audit = self._payloads[position].get("audit")
        if audit is None:
            return None
        return audit.get("adversaries")

    def report_delta(self, version: int) -> list[dict[str, Any]] | None:
        """Per-adversary audit movement from ``version - 1`` to ``version``.

        Returns one row per skyline point with the change in worst-case risk,
        margin and vulnerable-tuple count, or ``None`` when either version is
        unaudited (or ``version`` is the seed release).
        """
        if version <= 0 or version >= len(self._versions):
            return None
        current = self._audit_rows(version)
        previous = self._audit_rows(version - 1)
        if current is None or previous is None:
            return None
        rows = []
        for entry, before in zip(current, previous):
            rows.append(
                {
                    "adversary": entry["adversary"],
                    "worst_case_risk": entry["worst_case_risk"],
                    "worst_case_risk_change": entry["worst_case_risk"]
                    - before["worst_case_risk"],
                    "margin": entry["margin"],
                    "vulnerable_tuples": entry["vulnerable_tuples"],
                    "vulnerable_tuples_change": entry["vulnerable_tuples"]
                    - before["vulnerable_tuples"],
                    "satisfied": entry["satisfied"],
                }
            )
        return rows

    def lineage(self) -> list[dict[str, Any]]:
        """JSON-able summaries of every version, with audit deltas attached.

        Lazy stubs contribute their persisted lineage payload directly, so
        this never decodes an archive - a store holding hundreds of
        million-row versions lists its history from JSON alone.
        """
        rows = []
        for position in range(len(self._versions)):
            version = self._versions[position]
            if version is not None:
                row = version.as_dict()
            else:
                row = {
                    key: value
                    for key, value in self._payloads[position].items()
                    if key not in ("release_method", "report")
                }
            delta = self.report_delta(position)
            if delta is not None:
                row["audit_delta"] = delta
            rows.append(row)
        return rows
