"""Versioned partition trees: routing appended rows and local subtree surgery.

A :class:`PartitionTree` wraps the :class:`~repro.anonymize.mondrian.MondrianNode`
tree recorded by ``MondrianAnonymizer.partition_forest`` and adds what the
incremental publisher needs between batches:

* **routing** - every appended row descends the recorded
  :class:`~repro.anonymize.mondrian.MondrianSplit` predicates to the leaf
  (released group) whose region contains it;
* **parent links** - a failing leaf merges *up*: the publisher climbs towards
  the root until the enclosing region satisfies the privacy model again;
* **replacement** - a dirty leaf (or a merged region's subtree) is swapped for
  a freshly partitioned subtree, leaving every untouched subtree - and hence
  every untouched released group - byte-for-byte intact.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

import numpy as np

from repro.anonymize.mondrian import MondrianLeaf, MondrianNode, MondrianSplit
from repro.data.table import MicrodataTable
from repro.exceptions import StreamError


class PartitionTree:
    """A mutable view over one recorded Mondrian tree (see module docstring)."""

    def __init__(self, root: MondrianNode | MondrianLeaf):
        self.root = root
        self._parents: dict[int, tuple[MondrianNode, str]] = {}
        self._reindex()

    # -- structure --------------------------------------------------------------------
    def reindex(self) -> None:
        """Rebuild the parent links (after deferred :meth:`replace` calls)."""
        self._reindex()

    def _reindex(self) -> None:
        self._parents = {}
        stack: list[MondrianNode | MondrianLeaf] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, MondrianNode):
                for side, child in (("left", node.left), ("right", node.right)):
                    self._parents[id(child)] = (node, side)
                    stack.append(child)

    def leaves(self) -> list[MondrianLeaf]:
        """All leaves in deterministic left-to-right order."""
        return list(self.root.leaves())

    def iter_nodes(self) -> Iterator[MondrianNode | MondrianLeaf]:
        """Every node of the tree (pre-order)."""
        stack: list[MondrianNode | MondrianLeaf] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, MondrianNode):
                stack.append(node.right)
                stack.append(node.left)

    def parent_of(
        self, node: MondrianNode | MondrianLeaf
    ) -> tuple[MondrianNode, str] | None:
        """``(parent, side)`` of a node, or ``None`` for the root."""
        return self._parents.get(id(node))

    def replace(
        self,
        old: MondrianNode | MondrianLeaf,
        new: MondrianNode | MondrianLeaf,
        *,
        reindex: bool = True,
    ) -> None:
        """Swap ``old`` (a node of this tree) for ``new`` in place.

        Batched surgery can pass ``reindex=False`` for every swap and call
        :meth:`reindex` once afterwards - valid as long as the replaced nodes
        are disjoint (none is a descendant of another), which is what the
        publisher's maximal-region selection guarantees.
        """
        link = self._parents.get(id(old))
        if link is None:
            if old is not self.root:
                raise StreamError("cannot replace a node that is not part of this tree")
            self.root = new
        else:
            parent, side = link
            if side == "left":
                parent.left = new
            else:
                parent.right = new
        if reindex:
            self._reindex()

    def contains(self, node: MondrianNode | MondrianLeaf) -> bool:
        """Whether ``node`` is part of this tree."""
        return node is self.root or id(node) in self._parents

    # -- (de)serialization -------------------------------------------------------------
    @staticmethod
    def to_jsonable(node: MondrianNode | MondrianLeaf) -> dict[str, Any]:
        """A plain-JSON representation of a recorded tree (disk-backed stores)."""
        if isinstance(node, MondrianLeaf):
            return {
                "leaf": True,
                "indices": node.indices.tolist(),
                "depth": int(node.depth),
                "searched_size": int(node.searched_size),
            }
        return {
            "leaf": False,
            "depth": int(node.depth),
            "split": {
                "attribute": node.split.attribute,
                "threshold": float(node.split.threshold),
                "inclusive": bool(node.split.inclusive),
            },
            "left": PartitionTree.to_jsonable(node.left),
            "right": PartitionTree.to_jsonable(node.right),
        }

    @staticmethod
    def from_jsonable(payload: Mapping[str, Any]) -> MondrianNode | MondrianLeaf:
        """Rebuild a recorded tree from its :meth:`to_jsonable` representation."""
        try:
            if payload["leaf"]:
                return MondrianLeaf(
                    indices=np.asarray(payload["indices"], dtype=np.int64),
                    depth=int(payload["depth"]),
                    searched_size=int(payload["searched_size"]),
                )
            split = payload["split"]
            return MondrianNode(
                split=MondrianSplit(
                    attribute=str(split["attribute"]),
                    threshold=float(split["threshold"]),
                    inclusive=bool(split["inclusive"]),
                ),
                left=PartitionTree.from_jsonable(payload["left"]),
                right=PartitionTree.from_jsonable(payload["right"]),
                depth=int(payload["depth"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StreamError(f"malformed partition-tree payload: {error}") from None

    # -- routing ----------------------------------------------------------------------
    @staticmethod
    def _routing_values(table: MicrodataTable, attribute: str) -> np.ndarray:
        """Raw values (numeric) / domain codes (categorical) - split coordinates."""
        if table.schema[attribute].is_numeric:
            return table.column(attribute)
        return table.codes(attribute).astype(np.float64)

    def route(
        self, table: MicrodataTable, indices: np.ndarray
    ) -> dict[int, np.ndarray]:
        """Descend ``indices`` (row ids of ``table``) to their leaves.

        Returns a mapping from ``id(leaf)`` to the sorted row indices routed
        into that leaf; leaves receiving no rows are absent.  Routing uses the
        recorded split predicates, so it places rows exactly where the splits
        that produced the release would have placed them - table domains must
        therefore match the domains the tree was built against.
        """
        routed: dict[int, np.ndarray] = {}
        columns: dict[str, np.ndarray] = {}
        stack: list[tuple[MondrianNode | MondrianLeaf, np.ndarray]] = [
            (self.root, np.asarray(indices, dtype=np.int64))
        ]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if isinstance(node, MondrianLeaf):
                routed[id(node)] = np.sort(rows)
                continue
            name = node.split.attribute
            if name not in columns:
                columns[name] = self._routing_values(table, name)
            left_mask = node.split.goes_left(columns[name][rows])
            stack.append((node.left, rows[left_mask]))
            stack.append((node.right, rows[~left_mask]))
        return routed

    # -- membership -------------------------------------------------------------------
    @staticmethod
    def current_members(
        node: MondrianNode | MondrianLeaf, routed: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """All rows currently inside ``node``'s region: leaf members plus routed rows."""
        parts: list[np.ndarray] = []
        for leaf in node.leaves():
            parts.append(leaf.indices)
            addition = routed.get(id(leaf))
            if addition is not None:
                parts.append(addition)
        return np.sort(np.concatenate(parts))
