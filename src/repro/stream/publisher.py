"""The incremental publication engine for full-lifecycle microdata streams.

A production publisher does not receive its table once: rows keep arriving,
rows are *retracted* (GDPR-style erasure) and rows are *corrected* (late
fixes).  Re-running the whole estimate -> partition -> audit pipeline per
mutation throws away almost everything the previous run computed.  The
paper's risk-continuity result (worst-case disclosure risk varies
continuously with the background-knowledge bandwidth ``B``, Section V-C)
has an exact finite-sample counterpart that this engine exploits: with the
paper's compact-support kernels, changing rows changes the estimated prior
belief only at quasi-identifier combinations within kernel range of a
changed row, so a previously satisfied release is only *threatened where
counts actually changed*.

:class:`IncrementalPublisher` holds a versioned release and, per
:meth:`append` / :meth:`delete` / :meth:`update` batch:

1. folds the batch into the factored kernel-prior state as **exact**
   count-tensor deltas (additive for appends, negative for retractions,
   paired for corrections - no ``O(n^2 d)`` re-sweep; see
   :mod:`repro.knowledge.backend`);
2. computes the exact set of **dirty rows** - rows without a previous
   counterpart plus rows whose prior distribution or sensitive code changed
   for some configured adversary (a bitwise comparison, so no false "clean"
   verdicts);
3. routes appended/corrected rows down the recorded Mondrian split tree to
   their leaf groups (a corrected QI value may cross a split boundary),
   shrinks leaves that lost retracted rows, re-checks only dirty leaves
   (one batched ``is_satisfied_batch`` call, reusing the (B,t) model's
   surviving - and, after deletions, index-remapped - risk memos), locally
   re-splits leaves that grew and merges-up/rebuilds regions around leaves
   that now violate the requirement (or emptied entirely) - every untouched
   subtree is reused verbatim;
4. re-audits the release in the skyline engine's dirty-group mode, copying
   the risks of clean surviving groups from the previous version's report
   through the row remap.

Deferred maintenance - rows joining grown groups below the
``refine_factor`` trigger, retracted rows shrinking groups, corrected rows
re-routed in place - accumulates **drift**; once it reaches
``compact_drift`` of the current table the next version publishes through a
full-refine **compaction** (a fresh partition; priors and audits stay
incremental) and the drift resets.

The published groups therefore always satisfy the privacy requirement under
priors estimated from the *current* table, and the maintained audit risks are
numerically identical to a from-scratch audit of the same release (the
equivalence the stream tests pin to ``<= 1e-12``).

The partition itself is maintained, not recomputed: it is a valid Mondrian
refinement lineage, generally *not* the same tree a from-scratch run on the
current table would cut (medians move with the data), which is the usual -
and here explicit, ``compact_drift``-bounded - trade-off of incremental
Mondrian publishing.

With ``store_path=...`` every version persists to a disk-backed
:class:`~repro.stream.store.ReleaseStore` and :meth:`IncrementalPublisher.resume`
reconstructs a publisher mid-stream (identical continuation, historical
version serving).
"""

from __future__ import annotations

import contextlib
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.anonymize.mondrian import MondrianAnonymizer
from repro.anonymize.partition import AnonymizedRelease
from repro.audit.engine import SkylineAuditEngine, SkylineAuditReport
from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError, DataError, StreamError
from repro.knowledge.backend import EstimatorConfig, resolve_config
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import BatchedKernelPriorEstimator, PriorBeliefs
from repro.obs.tracing import Tracer
from repro.privacy.measures import DistanceMeasure, sensitive_distance_measure
from repro.privacy.models import BTPrivacy, CompositeModel, KAnonymity, PrivacyModel
from repro.stream.store import ReleaseStore, StreamDelta, StreamVersion, VersionCache
from repro.stream.tree import PartitionTree

#: The mutation kinds :meth:`IncrementalPublisher.publish_coalesced` accepts.
OPERATION_KINDS = ("append", "delete", "update")


class _CoalescingStore:
    """A write buffer standing in for the real store during one coalesced tick.

    :meth:`IncrementalPublisher.publish_coalesced` applies a tick's operations
    through the normal :meth:`~IncrementalPublisher.append` /
    :meth:`~IncrementalPublisher.delete` / :meth:`~IncrementalPublisher.update`
    paths, each of which records a version.  Buffering those intermediates
    keeps version numbering and ``latest()`` consistent for the mutation code
    while nothing hits the real lineage (``path`` is ``None``, so no
    intermediate state payload is even built); only the final state of the
    tick is then published to the real store.
    """

    # The publisher persists resume state only for disk-backed stores;
    # intermediates must never reach disk.
    path = None

    def __init__(self, real: ReleaseStore):
        self._real = real
        self.versions: list[StreamVersion] = []
        self.state: dict[str, Any] | None = real.state

    def __len__(self) -> int:
        return len(self._real) + len(self.versions)

    def add(self, version: StreamVersion, *, state: dict[str, Any] | None = None) -> StreamVersion:
        if version.version != len(self):
            raise StreamError(
                f"version {version.version} breaks the lineage; expected {len(self)}"
            )
        self.versions.append(version)
        return version

    def latest(self) -> StreamVersion:
        if self.versions:
            return self.versions[-1]
        return self._real.latest()


class IncrementalPublisher:
    """Publish an append-only microdata stream under one privacy requirement.

    Parameters
    ----------
    table:
        The seed table (version 0 is published from it by :meth:`publish`).
    model:
        The attribute-disclosure requirement (a
        :class:`~repro.privacy.models.PrivacyModel` instance; name resolution
        lives in :meth:`repro.api.session.Session.stream`).
    skyline:
        ``(B_i, t_i)`` audit adversaries.  Defaults to the ``(b, t)`` pairs of
        the model's (B,t) components; pass an empty list to skip auditing.
    k:
        Optional k-anonymity requirement conjoined with ``model`` (as the
        paper does against identity disclosure).
    kernel / method / split_strategy / max_cells:
        Passed through to the prior estimator, the audit engine and Mondrian.
    jobs:
        Worker threads for the estimation backend's parallel contraction
        (``None`` resolves to ``REPRO_JOBS`` / ``os.cpu_count()``).  A
        runtime knob, deliberately *not* persisted in the stream state:
        resuming a shard at a different thread count produces bitwise
        identical versions.
    refine_factor:
        Utility/throughput dial for grown groups.  A group that satisfies the
        requirement after an append re-enters the (expensive) split search
        only once it holds at least ``refine_factor`` times the rows it had
        when the search last declared it unsplittable; until then the rows
        simply join the group.  ``1.0`` re-searches every grown group on every
        batch; the default amortises the search so a group is never more than
        ~``refine_factor`` times coarser than a fresh run would leave it.
        Privacy is unaffected - grown groups are always re-checked.
    compact_drift:
        Periodic full-refine compaction threshold.  Deferred maintenance
        (rows joining grown groups below the ``refine_factor`` trigger,
        retracted rows shrinking groups, corrected rows re-routed in place)
        accumulates *drift* - utility the maintained partition leaves on the
        table relative to a fresh run.  Once the accumulated drifted-row
        count reaches ``compact_drift`` times the current table size, the
        next batch is published through a full re-partition (priors and
        audits stay incremental), resetting the drift.  ``float("inf")``
        disables compaction.
    measure:
        Audit distance measure (defaults to the paper's smoothed-JS measure).
    distance_matrices:
        Optional precomputed attribute distance matrices to share (e.g. from a
        :class:`~repro.api.session.Session`).
    store_path:
        Optional directory for a disk-backed :class:`ReleaseStore`: every
        published version is persisted (JSON-lines lineage + one ``.npz``
        per release), and :meth:`resume` can reconstruct the publisher from
        the directory to continue the stream or serve historical versions.
    tracer:
        An :class:`~repro.obs.tracing.Tracer`.  Every publication runs under
        a root span (``publish.append``, ``publish.full``, ...) with one
        child span per stage, and the recorded ``StreamDelta.timings`` are
        *derived from those spans* - the span tree is the source of truth,
        the flat dict its byte-compatible projection.  Defaults to an
        always-on tracer (span overhead is gated at <= 5% of publish time in
        ``BENCH_stream.json``); pass ``Tracer(enabled=False)`` to disable
        tree retention - stage timings are then taken from detached timers,
        so published versions and lineage keep the exact same shape.

    Appended batches with values outside the seed domains force a full
    rebuild (codes, distance matrices and priors all shift); batches inside
    the domains take the incremental path.  The same holds for corrections
    that introduce values outside the current domains.
    """

    def __init__(
        self,
        table: MicrodataTable,
        model: PrivacyModel,
        *,
        skyline: Iterable[tuple[float | Bandwidth, float]] | None = None,
        k: int | None = None,
        config: EstimatorConfig | None = None,
        kernel: str | None = None,
        method: str = "omega",
        split_strategy: str = "widest",
        max_cells: int | None = None,
        jobs: int | None = None,
        refine_factor: float = 1.5,
        compact_drift: float = 0.5,
        measure: DistanceMeasure | None = None,
        distance_matrices: dict[str, np.ndarray] | None = None,
        store_path: str | Path | None = None,
        version_cache: VersionCache | None = None,
        tracer: Tracer | None = None,
    ):
        if method not in {"omega", "exact"}:
            raise StreamError("method must be 'omega' or 'exact'")
        if refine_factor < 1.0:
            raise StreamError("refine_factor must be at least 1.0")
        if not compact_drift > 0.0:
            raise StreamError("compact_drift must be positive (inf disables compaction)")
        self.refine_factor = float(refine_factor)
        self.compact_drift = float(compact_drift)
        self._table = table
        self.model = model
        # One EstimatorConfig carries every estimation knob end to end; the
        # kernel/max_cells/jobs keywords are back-compat overrides on top.
        self.config = resolve_config(config, kernel=kernel, max_cells=max_cells, jobs=jobs)
        self.kernel = self.config.kernel
        self.method = method
        self.max_cells = int(self.config.max_cells)
        self.jobs = self.config.jobs
        self._k = k
        self._requirement: PrivacyModel = (
            CompositeModel([KAnonymity(k), model]) if k is not None else model
        )
        self._bt_components = [
            component
            for component in self._requirement.components()
            if isinstance(component, BTPrivacy)
        ]
        if skyline is None:
            points = [(component.b, component.t) for component in self._bt_components]
        else:
            points = list(skyline)
        self._points: list[tuple[Bandwidth, float]] = [
            (self._bandwidth(b), float(t)) for b, t in points
        ]
        self._measure = measure
        self._mondrian = MondrianAnonymizer(
            self._requirement, split_strategy=split_strategy
        )
        self._estimator = BatchedKernelPriorEstimator(
            config=self.config,
            distance_matrices=distance_matrices,
            incremental=True,
        )
        self.split_strategy = split_strategy
        self.tracer = tracer if tracer is not None else Tracer()
        self.store = (
            ReleaseStore(path=store_path, schema=table.schema, version_cache=version_cache)
            if store_path is not None
            else ReleaseStore(version_cache=version_cache)
        )
        self._tree: PartitionTree | None = None
        self._audit_matrices: list[np.ndarray] = []
        self._drift_rows = 0
        # Set while a mutation is in flight and cleared when its version is
        # recorded: a raise mid-mutation (e.g. the documented
        # AnonymizationError when the whole table fails) leaves the
        # maintained state half-updated, so further publishing must refuse
        # loudly instead of silently emitting a wrong version.
        self._inconsistent = False

    # -- small helpers ----------------------------------------------------------------
    @contextlib.contextmanager
    def _publish_span(self, kind: str, **attributes: Any):
        """The root span of one publication, with the tracer made ambient.

        Activation lets instrumentation too deep to thread a tracer through
        (the prior backend's contractions, the audit engine's per-adversary
        loop) nest under this publication via
        :func:`repro.obs.tracing.current_tracer`.
        """
        with self.tracer.activate():
            with self.tracer.timed(f"publish.{kind}", **attributes) as span:
                yield span

    def _bandwidth(self, b: float | Bandwidth) -> Bandwidth:
        if isinstance(b, Bandwidth):
            return b
        return Bandwidth.uniform(self._table.quasi_identifier_names, float(b))

    @property
    def table(self) -> MicrodataTable:
        """The current (grown) table."""
        return self._table

    @property
    def latest(self) -> StreamVersion:
        """The most recently published version."""
        return self.store.latest()

    @property
    def skyline(self) -> list[tuple[Bandwidth, float]]:
        """The audit skyline (empty when auditing is disabled)."""
        return list(self._points)

    @property
    def drift_rows(self) -> int:
        """Deferred-maintenance drift accumulated since the last full refine."""
        return self._drift_rows

    @property
    def poisoned(self) -> bool:
        """Whether a previous batch failed mid-publication (state between versions).

        A poisoned publisher refuses further mutations (see
        :meth:`_begin_mutation`); its store still serves every published
        version, and a disk-backed stream continues via :meth:`resume`.
        """
        return self._inconsistent

    def close(self) -> None:
        """Release the store's publisher lock (see :meth:`ReleaseStore.close`)."""
        self.store.close()

    def describe(self) -> str:
        """One-line description of the configured stream."""
        skyline = "; ".join(f"({b.describe()}, t={t:g})" for b, t in self._points)
        return f"{self._requirement.describe()} | skyline [{skyline or 'none'}]"

    def _unique_bandwidths(self) -> list[Bandwidth]:
        seen: dict[tuple, Bandwidth] = {}
        for component in self._bt_components:
            bandwidth = self._bandwidth(component.b)
            seen.setdefault(bandwidth.items(), bandwidth)
        for bandwidth, _ in self._points:
            seen.setdefault(bandwidth.items(), bandwidth)
        return list(seen.values())

    def _priors_by_bandwidth(self) -> dict[tuple, PriorBeliefs]:
        bandwidths = self._unique_bandwidths()
        if not bandwidths:
            return {}
        priors = self._estimator.prior_for_table(bandwidths)
        return {b.items(): p for b, p in zip(bandwidths, priors)}

    # -- resuming from a disk-backed store ---------------------------------------------
    @classmethod
    def resume(
        cls,
        path: str | Path,
        *,
        schema,
        model: PrivacyModel,
        config: EstimatorConfig | None = None,
        measure: DistanceMeasure | None = None,
        distance_matrices: dict[str, np.ndarray] | None = None,
        jobs: int | None = None,
        version_cache: VersionCache | None = None,
        tracer: Tracer | None = None,
    ) -> "IncrementalPublisher":
        """Reconstruct a publisher from a disk-backed store and continue the stream.

        ``schema`` decodes the persisted tables; ``model`` must be (a fresh
        instance of) the attribute-disclosure model the stream was created
        with - the store records the full requirement's description and
        refuses a mismatch.  The returned publisher holds the loaded version
        lineage (so it can serve every historical release), the recorded
        split tree and accumulated compaction drift, and freshly refit
        priors; subsequent :meth:`append` / :meth:`delete` / :meth:`update`
        calls continue the stream where it stopped, producing versions
        identical to an uninterrupted publisher.
        """
        store = ReleaseStore(path=path, schema=schema, version_cache=version_cache)
        if not len(store):
            raise StreamError(f"the release store at {path} holds no versions")
        if store.state is None:
            raise StreamError(
                f"the release store at {path} holds no publisher state (state.json)"
            )
        state = store.state
        table = store.latest().release.table
        try:
            skyline = [
                (Bandwidth({name: float(value) for name, value in items}), float(t))
                for items, t in state["skyline"]
            ]
            publisher = cls(
                table,
                model,
                skyline=skyline,
                k=state["k"],
                config=config,
                kernel=state["kernel"],
                method=state["method"],
                split_strategy=state["split_strategy"],
                max_cells=int(state["max_cells"]),
                jobs=jobs,
                refine_factor=float(state["refine_factor"]),
                compact_drift=float(state["compact_drift"]),
                measure=measure,
                distance_matrices=distance_matrices,
                tracer=tracer,
            )
            recorded_model = state["model"]
            tree_payload = state["tree"]
            drift_rows = int(state["drift_rows"])
        except (KeyError, TypeError, ValueError) as error:
            raise StreamError(
                f"corrupt release store: state.json cannot be decoded ({error})"
            ) from None
        if publisher._requirement.describe() != recorded_model:
            raise StreamError(
                f"model mismatch: the store was published under {recorded_model!r}, "
                f"resume() was given {publisher._requirement.describe()!r}"
            )
        if tree_payload is None:
            raise StreamError("corrupt release store: state.json records no partition tree")
        tree = PartitionTree(PartitionTree.from_jsonable(tree_payload))
        # The recorded tree's leaves must be exactly the latest release's
        # groups: a crash between the lineage append and the state.json
        # replace leaves the two files one version apart, and continuing
        # from a stale tree would publish wrong (or out-of-range) groups.
        latest_groups = store.latest().release.groups
        leaves = tree.leaves()
        if len(leaves) != len(latest_groups) or not all(
            np.array_equal(leaf.indices, group)
            for leaf, group in zip(leaves, latest_groups)
        ):
            raise StreamError(
                f"the release store at {path} was interrupted mid-persist: "
                "state.json's partition tree does not match the latest "
                "version's groups, so the stream cannot be continued "
                "(historical versions remain servable via ReleaseStore)"
            )
        publisher.store = store
        publisher._tree = tree
        publisher._drift_rows = drift_rows
        # Rebuild the estimation state the incremental paths maintain: a
        # fresh fit on the current table (the maintained state it replaces
        # matches a from-scratch fit to round-off).
        if publisher._measure is None and publisher._points:
            publisher._measure = sensitive_distance_measure(table)
        publisher._estimator.fit(table)
        prior_map = publisher._priors_by_bandwidth()
        codes = table.sensitive_codes()
        domain_size = table.sensitive_domain().size
        for component in publisher._bt_components:
            component.set_priors(
                prior_map[publisher._bandwidth(component.b).items()], codes, domain_size
            )
        publisher._requirement.prepare(table)
        if publisher._points:
            publisher._audit_matrices = [
                prior_map[bandwidth.items()].matrix for bandwidth, _ in publisher._points
            ]
        return publisher

    @classmethod
    def publish_to_shard(
        cls,
        path: str | Path,
        operations: Sequence[tuple[str, Any]],
        *,
        schema,
        model: PrivacyModel,
        cached: "IncrementalPublisher | None" = None,
        measure: DistanceMeasure | None = None,
        distance_matrices: dict[str, np.ndarray] | None = None,
        jobs: int | None = None,
        tracer: Tracer | None = None,
    ) -> tuple["IncrementalPublisher", StreamVersion]:
        """Process-safe publish entrypoint: adopt a shard and publish one tick.

        This is the unit of work the serving daemon dispatches to publication
        worker processes: given a disk shard, one coalesced tick's operations
        and the stream's model, it :meth:`resume`\\ s the shard (taking
        ``store.lock``; a stale lock left by a dead worker is stolen),
        publishes the tick with :meth:`publish_coalesced` and returns
        ``(publisher, version)``.  Pass the publisher back as ``cached`` on
        the next call for the same shard to skip the resume - it is reused
        while healthy and closed (releasing the lock) when poisoned or bound
        to a different shard.

        On failure the lock is never left behind by an unusable publisher: a
        poisoned publisher - and any publisher resumed inside this call - is
        closed before the error propagates, while a still-healthy ``cached``
        publisher stays open for reuse.  The raised exception carries a
        ``shard_poisoned`` attribute (``True`` when the shard's maintained
        state advanced past its published lineage, i.e. the same condition
        that poisons an in-process stream) so the dispatching host can decide
        whether to poison the stream.
        """
        path = Path(path)
        publisher = cached
        if publisher is not None and (
            publisher.poisoned or publisher.store.path != path
        ):
            publisher.close()
            publisher = None
        fresh = publisher is None
        if fresh:
            try:
                publisher = cls.resume(
                    path,
                    schema=schema,
                    model=model,
                    measure=measure,
                    distance_matrices=distance_matrices,
                    jobs=jobs,
                    tracer=tracer,
                )
            except BaseException as error:
                error.shard_poisoned = True
                raise
        try:
            version = publisher.publish_coalesced(list(operations))
        except BaseException as error:
            error.shard_poisoned = publisher.poisoned
            if publisher.poisoned or fresh:
                publisher.close()
            raise
        return publisher, version

    # -- initial publication ----------------------------------------------------------
    def publish(self) -> StreamVersion:
        """Publish version 0 from the seed table."""
        if len(self.store):
            raise StreamError(
                "the stream is already published; use append()/delete()/update() "
                "(or IncrementalPublisher.resume to continue a stored stream)"
            )
        self._begin_mutation()
        return self._publish_full(self._table, appended=0, rebuild=False)

    def _publish_full(
        self,
        table: MicrodataTable,
        *,
        appended: int,
        rebuild: bool,
        deleted: int = 0,
        updated: int = 0,
        table_seconds: float | None = None,
    ) -> StreamVersion:
        with self._publish_span("full", rebuild=rebuild) as publish_span:
            self._table = table
            self._drift_rows = 0  # a fresh partition leaves no deferred maintenance
            if rebuild:
                # Domains changed: every code-indexed artefact is stale.
                self._estimator = BatchedKernelPriorEstimator(
                    config=self.config,
                    incremental=True,
                )
                self._measure = None
                for component in self._bt_components:
                    component.measure = None
            if self._measure is None and self._points:
                self._measure = sensitive_distance_measure(table)
            with self.tracer.timed("prior", rows=table.n_rows) as prior_span:
                self._estimator.fit(table)
                prior_map = self._priors_by_bandwidth()
                codes = table.sensitive_codes()
                domain_size = table.sensitive_domain().size
                for component in self._bt_components:
                    component.set_priors(
                        prior_map[self._bandwidth(component.b).items()],
                        codes,
                        domain_size,
                    )
                self._requirement.prepare(table)

            with self.tracer.timed("partition") as partition_span:
                tree_root = self._mondrian.partition_tree(table, prepare=False)
                self._tree = PartitionTree(tree_root)
                groups = [leaf.indices for leaf in self._tree.leaves()]
                release = AnonymizedRelease(
                    table, groups, method=f"stream[{self._requirement.describe()}]"
                )
            partition_span.annotate(groups=len(groups))

            with self.tracer.timed("audit", adversaries=len(self._points)) as audit_span:
                report = None
                if self._points:
                    engine = self._engine(table, prior_map)
                    report = engine.audit(groups)
                    self._audit_matrices = [
                        prior_map[bandwidth.items()].matrix
                        for bandwidth, _ in self._points
                    ]
            timings = {
                "prior_seconds": prior_span.duration_s,
                "partition_seconds": partition_span.duration_s,
                "audit_seconds": audit_span.duration_s,
            }
            if table_seconds is not None:
                # Recorded before persisting, so the disk lineage and the
                # in-memory version agree byte for byte.
                timings["table_seconds"] = table_seconds
            timings["total_seconds"] = time.perf_counter() - publish_span.start_s
            delta = StreamDelta(
                appended_rows=appended,
                deleted_rows=deleted,
                updated_rows=updated,
                reused_groups=0,
                rechecked_leaves=len(groups),
                refined_leaves=0,
                rebuilt_regions=1,
                rebuild=rebuild,
                audit_recomputed_groups=[len(groups)] * len(self._points),
                timings=timings,
            )
            version = self._add_version(release, report, delta)
            publish_span.annotate(version=version.version, rows=table.n_rows)
            return version

    def _add_version(
        self, release: AnonymizedRelease, report: SkylineAuditReport | None, delta: StreamDelta
    ) -> StreamVersion:
        """Record the next version in the store (persisting publisher state)."""
        version = self.store.add(
            StreamVersion(
                version=len(self.store), release=release, report=report, delta=delta
            ),
            # The state payload exists for disk-backed resume; serialising
            # the whole tree per version is wasted work on in-memory stores.
            state=self._state_payload() if self.store.path is not None else None,
        )
        self._inconsistent = False
        return version

    def _begin_mutation(self) -> None:
        """Refuse to mutate a publisher whose last batch failed mid-flight.

        The maintained state (table, priors, tree) updates in stages; when a
        batch raises after the first stage - most notably the documented
        :class:`~repro.exceptions.AnonymizationError` when even the whole
        table no longer satisfies the requirement - the publisher is left
        between versions.  The store still serves every published version,
        but further publishing requires a reconstructed publisher
        (:meth:`resume` from a disk-backed store, or a fresh one).
        """
        if self._inconsistent:
            raise StreamError(
                "a previous batch failed mid-publication and the maintained "
                "state is inconsistent; the store still serves published "
                "versions, but continue the stream from a reconstructed "
                "publisher (IncrementalPublisher.resume) instead"
            )
        self._inconsistent = True

    def _state_payload(self) -> dict[str, Any]:
        """Everything :meth:`resume` needs beyond the versions themselves."""
        return {
            "model": self._requirement.describe(),
            "skyline": [[list(b.items()), t] for b, t in self._points],
            "k": self._k,
            "kernel": self.kernel,
            "method": self.method,
            "split_strategy": self.split_strategy,
            "max_cells": self.max_cells,
            "refine_factor": self.refine_factor,
            "compact_drift": self.compact_drift,
            "drift_rows": self._drift_rows,
            "tree": PartitionTree.to_jsonable(self._tree.root) if self._tree else None,
        }

    def _engine(
        self, table: MicrodataTable, prior_map: dict[tuple, PriorBeliefs]
    ) -> SkylineAuditEngine:
        return SkylineAuditEngine(
            table,
            self._points,
            kernel=self.kernel,
            method=self.method,
            jobs=self.jobs,
            measure=self._measure,
            priors=[prior_map[bandwidth.items()] for bandwidth, _ in self._points],
        )

    # -- appending --------------------------------------------------------------------
    def _concatenate(
        self, batch: MicrodataTable | Sequence[Mapping[str, Any]]
    ) -> tuple[MicrodataTable, int, bool]:
        """The grown table, the number of appended rows, and a rebuild flag."""
        schema = self._table.schema
        if isinstance(batch, MicrodataTable):
            if tuple(batch.schema.names) != tuple(schema.names):
                raise StreamError("batch schema does not match the stream's schema")
            fresh = {name: batch.column(name) for name in schema.names}
        else:
            rows = list(batch)
            if not rows:
                raise StreamError("an append batch requires at least one row")
            fresh = {name: [row[name] for row in rows] for name in schema.names}
        appended = len(next(iter(fresh.values())))
        if appended == 0:
            raise StreamError("an append batch requires at least one row")
        try:
            return self._table.extend(fresh), appended, False
        except DataError:
            # A value outside the current domains: codes shift, full rebuild.
            columns = {
                name: np.concatenate(
                    [
                        self._table.column(name),
                        np.asarray(
                            fresh[name],
                            dtype=np.float64 if schema[name].is_numeric else object,
                        ),
                    ]
                )
                for name in schema.names
            }
            return MicrodataTable(schema, columns), appended, True

    def _component_dirty(
        self,
        component: PrivacyModel,
        table: MicrodataTable,
        n_previous: int,
        prior_map: dict[tuple, PriorBeliefs],
    ) -> np.ndarray:
        """Dirty-row mask of one requirement component (True = risk may change).

        (B,t) components are refreshed with the publisher's re-estimated
        priors; every other model declares its own invalidation semantics
        through :meth:`~repro.privacy.models.PrivacyModel.stream_update`
        (conservative all-dirty by default).
        """
        if isinstance(component, BTPrivacy):
            priors = prior_map[self._bandwidth(component.b).items()]
            return component.update_priors(
                priors, table.sensitive_codes(), table.sensitive_domain().size
            )
        return component.stream_update(table, n_previous)

    def _component_replace_dirty(
        self,
        component: PrivacyModel,
        table: MicrodataTable,
        previous_of: np.ndarray,
        prior_map: dict[tuple, PriorBeliefs],
    ) -> np.ndarray:
        """Dirty-row mask of one component after a delete/update batch.

        ``previous_of`` maps every current row to its previous position
        (``-1`` for rows with no counterpart); (B,t) components remap their
        risk memos through it, every other model answers through
        :meth:`~repro.privacy.models.PrivacyModel.stream_replace`.
        """
        if isinstance(component, BTPrivacy):
            priors = prior_map[self._bandwidth(component.b).items()]
            return component.update_priors(
                priors,
                table.sensitive_codes(),
                table.sensitive_domain().size,
                previous_of=previous_of,
            )
        return component.stream_replace(table, previous_of)

    def _compaction_due(self) -> bool:
        """Whether accumulated drift warrants a full-refine compaction."""
        return self._drift_rows >= self.compact_drift * self._table.n_rows

    def _audit_step(
        self,
        table: MicrodataTable,
        prior_map: dict[tuple, PriorBeliefs],
        groups: list[np.ndarray],
        previous: StreamVersion,
        previous_of: np.ndarray,
    ) -> tuple[SkylineAuditReport | None, list[int], float]:
        """Dirty-group re-audit: clean surviving groups keep their risks.

        A current row is dirty for an adversary when it has no previous
        counterpart, its sensitive code changed, or its prior row for that
        adversary changed (a bitwise comparison, so no false "clean"
        verdicts).
        """
        with self.tracer.timed("audit", adversaries=len(self._points)) as span:
            report: SkylineAuditReport | None = None
            audit_recomputed: list[int] = []
            if self._points:
                priors_list = [
                    prior_map[bandwidth.items()] for bandwidth, _ in self._points
                ]
                surviving = previous_of >= 0
                survivors_previous = previous_of[surviving]
                previous_codes = previous.release.table.sensitive_codes()
                codes = table.sensitive_codes()
                code_changed = np.ones(table.n_rows, dtype=bool)
                code_changed[surviving] = (
                    codes[surviving] != previous_codes[survivors_previous]
                )
                masks = []
                for previous_matrix, priors in zip(self._audit_matrices, priors_list):
                    mask = np.ones(table.n_rows, dtype=bool)
                    mask[surviving] = (
                        priors.matrix[surviving] != previous_matrix[survivors_previous]
                    ).any(axis=1)
                    masks.append(mask | code_changed)
                engine = self._engine(table, prior_map)
                report = engine.audit_incremental(
                    groups,
                    previous_groups=previous.release.groups,
                    previous_report=previous.report,
                    dirty_rows=masks,
                    previous_of=previous_of,
                )
                audit_recomputed = list(report.delta["recomputed_groups"])
                self._audit_matrices = [priors.matrix for priors in priors_list]
                span.annotate(recomputed_groups=audit_recomputed)
        return report, audit_recomputed, span.duration_s

    def _maintain_partition(
        self,
        table: MicrodataTable,
        dirty_leaves: list,
        members: Mapping[int, np.ndarray],
        routed: dict[int, np.ndarray],
    ) -> tuple[list, list, list, set, float, float]:
        """The shared local-surgery step of every incremental mutation.

        Re-checks the dirty leaves (one batched model call; empty members are
        unconditionally failing), merges-up/rebuilds regions around violated
        leaves, and locally re-splits or rejoins leaves that received routed
        rows (the ``refine_factor`` amortisation).  Returns ``(rebuild_nodes,
        refine, rejoined, under_rebuild, recheck_seconds,
        repartition_seconds)``; drift accounting stays with the callers
        (appends count rejoined routed rows, deletions/corrections count
        their batch size up front).
        """
        with self.tracer.timed("recheck", leaves=len(dirty_leaves)) as recheck_span:
            checkable = [leaf for leaf in dirty_leaves if members[id(leaf)].size]
            verdicts = dict(
                zip(
                    (id(leaf) for leaf in checkable),
                    self._requirement.is_satisfied_batch(
                        [members[id(leaf)] for leaf in checkable]
                    ),
                )
            )

        with self.tracer.timed("repartition") as repartition_span:
            failing = [
                leaf for leaf in dirty_leaves if not verdicts.get(id(leaf), False)
            ]
            rebuild_nodes = self._merge_up(failing, routed)
            under_rebuild = {
                id(leaf) for node in rebuild_nodes for leaf in node.leaves()
            }
            refine = []
            rejoined = []
            for leaf in dirty_leaves:
                if (
                    not verdicts.get(id(leaf), False)
                    or id(leaf) not in routed
                    or id(leaf) in under_rebuild
                ):
                    continue
                if members[id(leaf)].size >= self.refine_factor * leaf.searched_size:
                    refine.append(leaf)
                else:
                    # Satisfied and still close to its searched size: the routed
                    # rows simply join the group (deferred refinement).
                    rejoined.append(leaf)
            for leaf in rejoined:
                leaf.indices = members[id(leaf)]
            regions = [
                PartitionTree.current_members(node, routed) for node in rebuild_nodes
            ] + [members[id(leaf)] for leaf in refine]
            depths = [node.depth for node in rebuild_nodes] + [
                leaf.depth for leaf in refine
            ]
            if regions:
                subtrees = self._mondrian.partition_forest(table, regions, depths=depths)
                for node, subtree in zip(list(rebuild_nodes) + list(refine), subtrees):
                    self._tree.replace(node, subtree, reindex=False)
                self._tree.reindex()
            repartition_span.annotate(
                rebuilt_regions=len(rebuild_nodes), refined_leaves=len(refine)
            )
        return (
            rebuild_nodes,
            refine,
            rejoined,
            under_rebuild,
            recheck_span.duration_s,
            repartition_span.duration_s,
        )

    def _publish_compacted(
        self,
        table: MicrodataTable,
        prior_map: dict[tuple, PriorBeliefs],
        previous: StreamVersion,
        previous_of: np.ndarray,
        *,
        start: float,
        timings: dict[str, float],
        appended: int = 0,
        deleted: int = 0,
        updated: int = 0,
    ) -> StreamVersion:
        """Publish this batch through a full-refine compaction.

        The maintained partition is discarded and the current table is
        re-partitioned from scratch (priors and the skyline audit stay
        incremental), resetting the accumulated drift.  Raises
        :class:`~repro.exceptions.AnonymizationError` when even the whole
        table fails the requirement, as a from-scratch run would.
        """
        with self.tracer.timed("partition", compacted=True) as partition_span:
            tree_root = self._mondrian.partition_tree(table, prepare=False)
            self._tree = PartitionTree(tree_root)
            self._drift_rows = 0
            groups = [leaf.indices for leaf in self._tree.leaves()]
            release = AnonymizedRelease(
                table, groups, method=f"stream[{self._requirement.describe()}]"
            )
        partition_span.annotate(groups=len(groups))
        report, audit_recomputed, audit_seconds = self._audit_step(
            table, prior_map, groups, previous, previous_of
        )
        delta = StreamDelta(
            appended_rows=appended,
            deleted_rows=deleted,
            updated_rows=updated,
            reused_groups=0,
            rechecked_leaves=len(groups),
            refined_leaves=0,
            rebuilt_regions=1,
            compacted=True,
            audit_recomputed_groups=audit_recomputed,
            timings={
                **timings,
                "partition_seconds": partition_span.duration_s,
                "audit_seconds": audit_seconds,
                "total_seconds": time.perf_counter() - start,
            },
        )
        return self._add_version(release, report, delta)

    def append(
        self, batch: MicrodataTable | Sequence[Mapping[str, Any]]
    ) -> StreamVersion:
        """Fold one batch of appended rows into the stream and publish a version.

        ``batch`` is either a :class:`~repro.data.table.MicrodataTable` with
        the stream's schema or a sequence of ``{attribute: value}`` rows.
        """
        if not len(self.store):
            raise StreamError("publish() the seed release before appending batches")
        with self._publish_span("append") as publish_span:
            with self.tracer.timed("table") as table_span:
                previous = self.store.latest()
                n_previous = self._table.n_rows
                table, appended, rebuild = self._concatenate(batch)
                self._begin_mutation()
            table_seconds = table_span.duration_s
            publish_span.annotate(appended_rows=appended)
            if rebuild:
                return self._publish_full(
                    table, appended=appended, rebuild=True, table_seconds=table_seconds
                )

            # 1. Fold the batch into the factored prior state; find dirty rows.
            with self.tracer.timed("prior", rows=table.n_rows) as prior_span:
                self._estimator.append_rows(table)
                prior_map = self._priors_by_bandwidth()
                appended_indices = np.arange(n_previous, table.n_rows, dtype=np.int64)
                dirty_model = np.ones(table.n_rows, dtype=bool)
                dirty_model[:n_previous] = False
                for component in self._requirement.components():
                    dirty_model |= self._component_dirty(
                        component, table, n_previous, prior_map
                    )
                self._table = table
            prior_seconds = prior_span.duration_s

            if self._compaction_due():
                previous_of = np.full(table.n_rows, -1, dtype=np.int64)
                previous_of[:n_previous] = np.arange(n_previous, dtype=np.int64)
                return self._publish_compacted(
                    table, prior_map, previous, previous_of,
                    appended=appended, start=publish_span.start_s,
                    timings={"table_seconds": table_seconds, "prior_seconds": prior_seconds},
                )

            # 2. Route appended rows to their leaves; re-check only dirty leaves.
            with self.tracer.timed("route") as route_span:
                leaves = self._tree.leaves()
                routed = self._tree.route(table, appended_indices)
                members: dict[int, np.ndarray] = {}
                dirty_leaves = []
                for leaf in leaves:
                    addition = routed.get(id(leaf))
                    if addition is not None:
                        members[id(leaf)] = np.sort(
                            np.concatenate([leaf.indices, addition])
                        )
                        dirty_leaves.append(leaf)
                    else:
                        members[id(leaf)] = leaf.indices
                        if dirty_model[leaf.indices].any():
                            dirty_leaves.append(leaf)

            # 3. Merge-up around violated leaves, re-split grown leaves, locally;
            #    rows joining grown groups in place count as compaction drift.
            (
                rebuild_nodes,
                refine,
                rejoined,
                under_rebuild,
                recheck_seconds,
                repartition_seconds,
            ) = self._maintain_partition(table, dirty_leaves, members, routed)
            self._drift_rows += sum(int(routed[id(leaf)].size) for leaf in rejoined)

            touched = (
                under_rebuild
                | {id(leaf) for leaf in refine}
                | {id(leaf) for leaf in rejoined}
            )
            reused = sum(1 for leaf in leaves if id(leaf) not in touched)
            groups = [leaf.indices for leaf in self._tree.leaves()]
            release = AnonymizedRelease(
                table, groups, method=f"stream[{self._requirement.describe()}]"
            )

            # 4. Dirty-group re-audit: clean byte-identical groups keep their risks.
            previous_of = np.full(table.n_rows, -1, dtype=np.int64)
            previous_of[:n_previous] = np.arange(n_previous, dtype=np.int64)
            report, audit_recomputed, audit_seconds = self._audit_step(
                table, prior_map, groups, previous, previous_of
            )

            delta = StreamDelta(
                appended_rows=appended,
                reused_groups=reused,
                rechecked_leaves=len(dirty_leaves),
                refined_leaves=len(refine),
                rebuilt_regions=len(rebuild_nodes),
                rebuild=False,
                audit_recomputed_groups=audit_recomputed,
                timings={
                    "table_seconds": table_seconds,
                    "prior_seconds": prior_seconds,
                    "route_seconds": route_span.duration_s,
                    "recheck_seconds": recheck_seconds,
                    "repartition_seconds": repartition_seconds,
                    "audit_seconds": audit_seconds,
                    "total_seconds": time.perf_counter() - publish_span.start_s,
                },
            )
            version = self._add_version(release, report, delta)
            publish_span.annotate(version=version.version)
            return version

    # -- deleting ---------------------------------------------------------------------
    def delete(self, rows: Sequence[int] | np.ndarray) -> StreamVersion:
        """Retract rows (positions in the current table) and publish a version.

        The GDPR-style erasure path: the rows vanish from the maintained
        table, their counts leave the factored prior state as exact negative
        count-tensor deltas, the leaves that held them shrink in place, and
        regions whose shrunken groups no longer satisfy the requirement
        (e.g. fall below ``k``) merge up exactly like violated leaves after
        an append.  Deleting every remaining row raises
        :class:`~repro.exceptions.StreamError` (an empty table cannot be
        released); a deletion under which even the whole table fails the
        requirement raises :class:`~repro.exceptions.AnonymizationError`, as
        a from-scratch run would.
        """
        if not len(self.store):
            raise StreamError("publish() the seed release before deleting rows")
        with self._publish_span("delete") as publish_span:
            with self.tracer.timed("table") as table_span:
                previous = self.store.latest()
                n_previous = self._table.n_rows
                removed = np.unique(np.asarray(rows, dtype=np.int64))
                if removed.size == 0:
                    raise StreamError("a delete batch requires at least one row")
                if removed[0] < 0 or removed[-1] >= n_previous:
                    raise StreamError("delete positions fall outside the current table")
                if removed.size >= n_previous:
                    raise StreamError("cannot delete every remaining row of the stream")
                self._begin_mutation()
                keep = np.ones(n_previous, dtype=bool)
                keep[removed] = False
                kept = np.flatnonzero(keep)
                table = self._table.select(kept)
            table_seconds = table_span.duration_s
            publish_span.annotate(deleted_rows=int(removed.size))

            # 1. Fold the removals out of the factored prior state; find dirty rows.
            with self.tracer.timed("prior", rows=table.n_rows) as prior_span:
                self._estimator.remove_rows(table, removed)
                prior_map = self._priors_by_bandwidth()
                dirty_model = np.zeros(table.n_rows, dtype=bool)
                for component in self._requirement.components():
                    dirty_model |= self._component_replace_dirty(
                        component, table, kept, prior_map
                    )
                self._table = table
                self._drift_rows += int(removed.size)
            prior_seconds = prior_span.duration_s

            if self._compaction_due():
                return self._publish_compacted(
                    table, prior_map, previous, kept,
                    deleted=int(removed.size), start=publish_span.start_s,
                    timings={"table_seconds": table_seconds, "prior_seconds": prior_seconds},
                )

            # 2. Shrink the leaves in place; only shrunken or prior-dirty leaves
            #    are re-checked.
            with self.tracer.timed("route") as route_span:
                current_of = np.full(n_previous, -1, dtype=np.int64)
                current_of[kept] = np.arange(kept.size, dtype=np.int64)
                leaves = self._tree.leaves()
                shrunk: set[int] = set()
                for leaf in leaves:
                    mapped = current_of[leaf.indices]
                    survivors = mapped >= 0
                    if not survivors.all():
                        shrunk.add(id(leaf))
                        mapped = mapped[survivors]
                    leaf.indices = mapped  # the old -> new map is monotone: still sorted
                dirty_leaves = [
                    leaf
                    for leaf in leaves
                    if id(leaf) in shrunk
                    or (leaf.indices.size and dirty_model[leaf.indices].any())
                ]

            # 3. Merge-up around violated (or emptied) leaves; nothing was
            #    routed, so no leaf can refine or rejoin.
            members = {id(leaf): leaf.indices for leaf in leaves}
            (
                rebuild_nodes,
                _,
                _,
                under_rebuild,
                recheck_seconds,
                repartition_seconds,
            ) = self._maintain_partition(table, dirty_leaves, members, {})

            touched = under_rebuild | shrunk
            reused = sum(1 for leaf in leaves if id(leaf) not in touched)
            groups = [leaf.indices for leaf in self._tree.leaves()]
            release = AnonymizedRelease(
                table, groups, method=f"stream[{self._requirement.describe()}]"
            )

            report, audit_recomputed, audit_seconds = self._audit_step(
                table, prior_map, groups, previous, kept
            )
            delta = StreamDelta(
                appended_rows=0,
                deleted_rows=int(removed.size),
                reused_groups=reused,
                rechecked_leaves=len(dirty_leaves),
                refined_leaves=0,
                rebuilt_regions=len(rebuild_nodes),
                audit_recomputed_groups=audit_recomputed,
                timings={
                    "table_seconds": table_seconds,
                    "prior_seconds": prior_seconds,
                    "route_seconds": route_span.duration_s,
                    "recheck_seconds": recheck_seconds,
                    "repartition_seconds": repartition_seconds,
                    "audit_seconds": audit_seconds,
                    "total_seconds": time.perf_counter() - publish_span.start_s,
                },
            )
            version = self._add_version(release, report, delta)
            publish_span.annotate(version=version.version)
            return version

    # -- updating ---------------------------------------------------------------------
    def update(
        self,
        rows: Sequence[int] | np.ndarray,
        batch: MicrodataTable | Sequence[Mapping[str, Any]],
    ) -> StreamVersion:
        """Correct rows in place (late-arriving fixes) and publish a version.

        ``rows`` are positions in the current table; ``batch`` supplies the
        replacement rows (a :class:`~repro.data.table.MicrodataTable` with
        the stream's schema or a sequence of ``{attribute: value}`` rows)
        aligned one-to-one with ``rows``.  Corrections within the current
        domains are folded into the prior state as paired negative/positive
        count deltas, and the corrected rows are re-routed down the recorded
        split tree (a corrected QI value may cross a split boundary).  A
        correction introducing values outside the current domains forces a
        full rebuild, exactly like an out-of-domain append.
        """
        if not len(self.store):
            raise StreamError("publish() the seed release before updating rows")
        with self._publish_span("update") as publish_span:
            with self.tracer.timed("table") as table_span:
                previous = self.store.latest()
                n_rows = self._table.n_rows
                positions = np.asarray(rows, dtype=np.int64)
                if positions.size == 0:
                    raise StreamError("an update batch requires at least one row")
                if np.unique(positions).size != positions.size:
                    raise StreamError("update positions must be distinct")
                if positions.min() < 0 or positions.max() >= n_rows:
                    raise StreamError("update positions fall outside the current table")
                schema = self._table.schema
                if isinstance(batch, MicrodataTable):
                    if tuple(batch.schema.names) != tuple(schema.names):
                        raise StreamError("batch schema does not match the stream's schema")
                    fresh = {name: batch.column(name) for name in schema.names}
                else:
                    replacement_rows = list(batch)
                    fresh = {
                        name: [row[name] for row in replacement_rows] for name in schema.names
                    }
                if any(len(column) != positions.size for column in fresh.values()):
                    raise StreamError("update values must align one-to-one with the updated rows")
                self._begin_mutation()
                order = np.argsort(positions)
                positions = positions[order]
                fresh = {
                    name: [fresh[name][int(i)] for i in order] for name in schema.names
                }
                rebuild_table = None
                try:
                    table = self._table.replace_rows(positions, fresh)
                except DataError:
                    # A corrected value outside the current domains: codes shift,
                    # full rebuild - exactly like an out-of-domain append.
                    columns = {}
                    for name in schema.names:
                        column = np.array(self._table.column(name), copy=True)
                        column[positions] = np.asarray(
                            fresh[name],
                            dtype=np.float64 if schema[name].is_numeric else object,
                        )
                        columns[name] = column
                    rebuild_table = MicrodataTable(schema, columns)
            publish_span.annotate(updated_rows=int(positions.size))
            if rebuild_table is not None:
                return self._publish_full(
                    rebuild_table,
                    appended=0, rebuild=True, updated=int(positions.size),
                    table_seconds=time.perf_counter() - publish_span.start_s,
                )
            table_seconds = table_span.duration_s

            # 1. Fold the paired correction deltas into the prior state.
            with self.tracer.timed("prior", rows=table.n_rows) as prior_span:
                self._estimator.update_rows(table, positions)
                prior_map = self._priors_by_bandwidth()
                identity = np.arange(n_rows, dtype=np.int64)
                dirty_model = np.zeros(n_rows, dtype=bool)
                for component in self._requirement.components():
                    dirty_model |= self._component_replace_dirty(
                        component, table, identity, prior_map
                    )
                self._table = table
                self._drift_rows += int(positions.size)
            prior_seconds = prior_span.duration_s

            if self._compaction_due():
                return self._publish_compacted(
                    table, prior_map, previous, identity,
                    updated=int(positions.size), start=publish_span.start_s,
                    timings={"table_seconds": table_seconds, "prior_seconds": prior_seconds},
                )

            # 2. Pull the corrected rows out of their leaves and re-route them
            #    (a corrected QI value may belong to a different region now).
            with self.tracer.timed("route") as route_span:
                leaves = self._tree.leaves()
                updated_mask = np.zeros(n_rows, dtype=bool)
                updated_mask[positions] = True
                lost: set[int] = set()
                for leaf in leaves:
                    member_updated = updated_mask[leaf.indices]
                    if member_updated.any():
                        leaf.indices = leaf.indices[~member_updated]
                        lost.add(id(leaf))
                routed = self._tree.route(table, positions)
                members: dict[int, np.ndarray] = {}
                dirty_leaves = []
                for leaf in leaves:
                    addition = routed.get(id(leaf))
                    if addition is not None:
                        members[id(leaf)] = np.sort(np.concatenate([leaf.indices, addition]))
                        dirty_leaves.append(leaf)
                    else:
                        members[id(leaf)] = leaf.indices
                        if id(leaf) in lost or (
                            leaf.indices.size and dirty_model[leaf.indices].any()
                        ):
                            dirty_leaves.append(leaf)

            # 3. Merge-up around violated (or emptied) leaves; locally re-split
            #    leaves the re-routing grew past the refine trigger.  Drift was
            #    counted once for the whole batch above, so rejoined leaves add
            #    nothing here.
            (
                rebuild_nodes,
                refine,
                rejoined,
                under_rebuild,
                recheck_seconds,
                repartition_seconds,
            ) = self._maintain_partition(table, dirty_leaves, members, routed)

            touched = (
                under_rebuild
                | lost
                | {id(leaf) for leaf in refine}
                | {id(leaf) for leaf in rejoined}
            )
            reused = sum(1 for leaf in leaves if id(leaf) not in touched)
            groups = [leaf.indices for leaf in self._tree.leaves()]
            release = AnonymizedRelease(
                table, groups, method=f"stream[{self._requirement.describe()}]"
            )

            report, audit_recomputed, audit_seconds = self._audit_step(
                table, prior_map, groups, previous, identity
            )
            delta = StreamDelta(
                appended_rows=0,
                updated_rows=int(positions.size),
                reused_groups=reused,
                rechecked_leaves=len(dirty_leaves),
                refined_leaves=len(refine),
                rebuilt_regions=len(rebuild_nodes),
                audit_recomputed_groups=audit_recomputed,
                timings={
                    "table_seconds": table_seconds,
                    "prior_seconds": prior_seconds,
                    "route_seconds": route_span.duration_s,
                    "recheck_seconds": recheck_seconds,
                    "repartition_seconds": repartition_seconds,
                    "audit_seconds": audit_seconds,
                    "total_seconds": time.perf_counter() - publish_span.start_s,
                },
            )
            version = self._add_version(release, report, delta)
            publish_span.annotate(version=version.version)
            return version

    # -- coalescing ---------------------------------------------------------------------
    def _apply(self, operation: tuple[str, Any]) -> StreamVersion:
        """Dispatch one ``(kind, payload)`` mutation tuple."""
        kind, payload = operation
        if kind == "append":
            return self.append(payload)
        if kind == "delete":
            return self.delete(payload)
        if kind == "update":
            rows, batch = payload
            return self.update(rows, batch)
        raise StreamError(
            f"unknown stream operation {kind!r}; expected one of {OPERATION_KINDS}"
        )

    def publish_coalesced(
        self, operations: Sequence[tuple[str, Any]]
    ) -> StreamVersion:
        """Apply one tick's worth of mutations and publish a *single* version.

        ``operations`` is a non-empty sequence of ``("append", batch)``,
        ``("delete", rows)`` and ``("update", (rows, batch))`` tuples - the
        unit the serving daemon's per-stream worker drains from its queue per
        tick.  The operations run through the ordinary sequential mutation
        paths against a write buffer, so the published release, audit risks
        and resume state are *identical* to publishing them one version at a
        time (the serving tests pin the audit identity to ``<= 1e-12``; it is
        bitwise by construction); only the intermediate versions are
        dropped.  The recorded :class:`~repro.stream.store.StreamDelta`
        aggregates the whole tick and counts the folded batches in
        ``coalesced_operations``.

        Failure semantics match the sequential paths: once any operation of
        the tick has advanced the maintained state (a buffered version
        exists, or the failing operation itself got past validation), the
        publisher is poisoned - the real store never saw the intermediate
        versions, so the state is ahead of the published lineage.  A tick
        whose *first* operation fails pure validation leaves the publisher
        consistent.
        """
        operations = list(operations)
        if not operations:
            raise StreamError("a coalesced tick requires at least one operation")
        if len(operations) == 1:
            return self._apply(operations[0])
        if not len(self.store):
            raise StreamError("publish() the seed release before coalescing mutations")
        self._begin_mutation()
        self._inconsistent = False  # re-armed per operation below
        with self._publish_span("coalesced", operations=len(operations)) as publish_span:
            real = self.store
            buffer = _CoalescingStore(real)
            self.store = buffer
            try:
                for operation in operations:
                    self._apply(operation)
            except BaseException:
                if buffer.versions:
                    self._inconsistent = True
                raise
            finally:
                self.store = real
            delta = self._merge_deltas(
                [version.delta for version in buffer.versions],
                time.perf_counter() - publish_span.start_s,
            )
            final = buffer.versions[-1]
            self._inconsistent = True  # cleared when the merged version lands
            version = self._add_version(final.release, final.report, delta)
            publish_span.annotate(version=version.version)
            return version

    @staticmethod
    def _merge_deltas(deltas: list[StreamDelta], total_seconds: float) -> StreamDelta:
        """One tick-wide delta: volumes sum, the final publication's shape wins."""
        timings: dict[str, float] = {}
        for delta in deltas:
            for key, value in delta.timings.items():
                timings[key] = timings.get(key, 0.0) + value
        timings["total_seconds"] = total_seconds
        last = deltas[-1]
        return StreamDelta(
            appended_rows=sum(delta.appended_rows for delta in deltas),
            deleted_rows=sum(delta.deleted_rows for delta in deltas),
            updated_rows=sum(delta.updated_rows for delta in deltas),
            reused_groups=last.reused_groups,
            rechecked_leaves=sum(delta.rechecked_leaves for delta in deltas),
            refined_leaves=sum(delta.refined_leaves for delta in deltas),
            rebuilt_regions=sum(delta.rebuilt_regions for delta in deltas),
            rebuild=any(delta.rebuild for delta in deltas),
            compacted=any(delta.compacted for delta in deltas),
            coalesced_operations=len(deltas),
            audit_recomputed_groups=list(last.audit_recomputed_groups),
            timings=timings,
        )

    def _merge_up(self, failing: list, routed: dict[int, np.ndarray]) -> list:
        """Climb from each violated leaf to the nearest satisfiable region.

        Returns the (deduplicated, maximal) nodes whose regions must be
        re-partitioned.  Raises when even the whole table fails - exactly the
        condition under which a from-scratch run would refuse to release.
        """
        chosen: dict[int, Any] = {}
        for leaf in failing:
            node = leaf
            while True:
                link = self._tree.parent_of(node)
                if link is None:
                    region = PartitionTree.current_members(node, routed)
                    if not self._requirement.is_satisfied(region):
                        raise AnonymizationError(
                            "the whole table no longer satisfies the privacy "
                            "requirement after this batch; no release is possible"
                        )
                    chosen[id(node)] = node
                    break
                parent = link[0]
                region = PartitionTree.current_members(parent, routed)
                # An empty region (every member deleted or re-routed away)
                # cannot satisfy anything: keep climbing.
                if region.size and self._requirement.is_satisfied(region):
                    chosen[id(parent)] = parent
                    break
                node = parent
        # Keep only maximal regions (drop nodes nested under another choice).
        maximal = []
        for node in chosen.values():
            ancestor = node
            nested = False
            while (link := self._tree.parent_of(ancestor)) is not None:
                ancestor = link[0]
                if id(ancestor) in chosen:
                    nested = True
                    break
            if not nested:
                maximal.append(node)
        return maximal
