"""The incremental publication engine for append-only microdata streams.

A production publisher does not receive its table once: rows keep arriving,
and re-running the whole estimate -> partition -> audit pipeline per batch
throws away almost everything the previous run computed.  The paper's
risk-continuity result (worst-case disclosure risk varies continuously with
the background-knowledge bandwidth ``B``, Section V-C) has an exact
finite-sample counterpart that this engine exploits: with the paper's
compact-support kernels, appending rows changes the estimated prior belief
only at quasi-identifier combinations within kernel range of an appended row,
so a previously satisfied release is only *threatened where counts actually
changed*.

:class:`IncrementalPublisher` holds a versioned release and, per
:meth:`append` batch:

1. folds the batch into the factored kernel-prior state
   (:meth:`~repro.knowledge.prior.BatchedKernelPriorEstimator.append_rows` -
   additive count-tensor update, no ``O(n^2 d)`` re-sweep);
2. computes the exact set of **dirty rows** - appended rows plus rows whose
   prior distribution changed for some configured adversary (a bitwise
   comparison, so no false "clean" verdicts);
3. routes appended rows down the recorded Mondrian split tree to their leaf
   groups, re-checks only dirty leaves (one batched ``is_satisfied_batch``
   call, reusing the (B,t) model's surviving risk memos), locally re-splits
   leaves that grew and merges-up/rebuilds regions around leaves that now
   violate the requirement - every untouched subtree is reused verbatim;
4. re-audits the release in the skyline engine's dirty-group mode, copying
   the risks of byte-identical clean groups from the previous version's
   report.

The published groups therefore always satisfy the privacy requirement under
priors estimated from the *current* table, and the maintained audit risks are
numerically identical to a from-scratch audit of the same release (the
equivalence the stream tests pin to ``<= 1e-12``).

The partition itself is maintained, not recomputed: it is a valid Mondrian
refinement lineage, generally *not* the same tree a from-scratch run on the
grown table would cut (medians move with the data), which is the usual - and
here explicit - trade-off of incremental Mondrian publishing.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.anonymize.mondrian import MondrianAnonymizer
from repro.anonymize.partition import AnonymizedRelease
from repro.audit.engine import SkylineAuditEngine, SkylineAuditReport
from repro.data.table import MicrodataTable
from repro.exceptions import AnonymizationError, DataError, StreamError
from repro.knowledge.backend import DEFAULT_MAX_CELLS
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import BatchedKernelPriorEstimator, PriorBeliefs
from repro.privacy.measures import DistanceMeasure, sensitive_distance_measure
from repro.privacy.models import BTPrivacy, CompositeModel, KAnonymity, PrivacyModel
from repro.stream.store import ReleaseStore, StreamDelta, StreamVersion
from repro.stream.tree import PartitionTree


class IncrementalPublisher:
    """Publish an append-only microdata stream under one privacy requirement.

    Parameters
    ----------
    table:
        The seed table (version 0 is published from it by :meth:`publish`).
    model:
        The attribute-disclosure requirement (a
        :class:`~repro.privacy.models.PrivacyModel` instance; name resolution
        lives in :meth:`repro.api.session.Session.stream`).
    skyline:
        ``(B_i, t_i)`` audit adversaries.  Defaults to the ``(b, t)`` pairs of
        the model's (B,t) components; pass an empty list to skip auditing.
    k:
        Optional k-anonymity requirement conjoined with ``model`` (as the
        paper does against identity disclosure).
    kernel / method / split_strategy / max_cells:
        Passed through to the prior estimator, the audit engine and Mondrian.
    refine_factor:
        Utility/throughput dial for grown groups.  A group that satisfies the
        requirement after an append re-enters the (expensive) split search
        only once it holds at least ``refine_factor`` times the rows it had
        when the search last declared it unsplittable; until then the rows
        simply join the group.  ``1.0`` re-searches every grown group on every
        batch; the default amortises the search so a group is never more than
        ~``refine_factor`` times coarser than a fresh run would leave it.
        Privacy is unaffected - grown groups are always re-checked.
    measure:
        Audit distance measure (defaults to the paper's smoothed-JS measure).
    distance_matrices:
        Optional precomputed attribute distance matrices to share (e.g. from a
        :class:`~repro.api.session.Session`).

    Appended batches with values outside the seed domains force a full
    rebuild (codes, distance matrices and priors all shift); batches inside
    the domains take the incremental path.
    """

    def __init__(
        self,
        table: MicrodataTable,
        model: PrivacyModel,
        *,
        skyline: Iterable[tuple[float | Bandwidth, float]] | None = None,
        k: int | None = None,
        kernel: str = "epanechnikov",
        method: str = "omega",
        split_strategy: str = "widest",
        max_cells: int = DEFAULT_MAX_CELLS,
        refine_factor: float = 1.5,
        measure: DistanceMeasure | None = None,
        distance_matrices: dict[str, np.ndarray] | None = None,
    ):
        if method not in {"omega", "exact"}:
            raise StreamError("method must be 'omega' or 'exact'")
        if refine_factor < 1.0:
            raise StreamError("refine_factor must be at least 1.0")
        self.refine_factor = float(refine_factor)
        self._table = table
        self.model = model
        self.kernel = kernel
        self.method = method
        self.max_cells = int(max_cells)
        self._requirement: PrivacyModel = (
            CompositeModel([KAnonymity(k), model]) if k is not None else model
        )
        self._bt_components = [
            component
            for component in self._requirement.components()
            if isinstance(component, BTPrivacy)
        ]
        if skyline is None:
            points = [(component.b, component.t) for component in self._bt_components]
        else:
            points = list(skyline)
        self._points: list[tuple[Bandwidth, float]] = [
            (self._bandwidth(b), float(t)) for b, t in points
        ]
        self._measure = measure
        self._mondrian = MondrianAnonymizer(
            self._requirement, split_strategy=split_strategy
        )
        self._estimator = BatchedKernelPriorEstimator(
            kernel=kernel,
            max_cells=max_cells,
            distance_matrices=distance_matrices,
            incremental=True,
        )
        self.store = ReleaseStore()
        self._tree: PartitionTree | None = None
        self._audit_matrices: list[np.ndarray] = []

    # -- small helpers ----------------------------------------------------------------
    def _bandwidth(self, b: float | Bandwidth) -> Bandwidth:
        if isinstance(b, Bandwidth):
            return b
        return Bandwidth.uniform(self._table.quasi_identifier_names, float(b))

    @property
    def table(self) -> MicrodataTable:
        """The current (grown) table."""
        return self._table

    @property
    def latest(self) -> StreamVersion:
        """The most recently published version."""
        return self.store.latest()

    @property
    def skyline(self) -> list[tuple[Bandwidth, float]]:
        """The audit skyline (empty when auditing is disabled)."""
        return list(self._points)

    def describe(self) -> str:
        """One-line description of the configured stream."""
        skyline = "; ".join(f"({b.describe()}, t={t:g})" for b, t in self._points)
        return f"{self._requirement.describe()} | skyline [{skyline or 'none'}]"

    def _unique_bandwidths(self) -> list[Bandwidth]:
        seen: dict[tuple, Bandwidth] = {}
        for component in self._bt_components:
            bandwidth = self._bandwidth(component.b)
            seen.setdefault(bandwidth.items(), bandwidth)
        for bandwidth, _ in self._points:
            seen.setdefault(bandwidth.items(), bandwidth)
        return list(seen.values())

    def _priors_by_bandwidth(self) -> dict[tuple, PriorBeliefs]:
        bandwidths = self._unique_bandwidths()
        if not bandwidths:
            return {}
        priors = self._estimator.prior_for_table(bandwidths)
        return {b.items(): p for b, p in zip(bandwidths, priors)}

    # -- initial publication ----------------------------------------------------------
    def publish(self) -> StreamVersion:
        """Publish version 0 from the seed table."""
        if len(self.store):
            raise StreamError("the stream is already published; use append()")
        return self._publish_full(self._table, appended=0, rebuild=False)

    def _publish_full(
        self, table: MicrodataTable, *, appended: int, rebuild: bool
    ) -> StreamVersion:
        start = time.perf_counter()
        self._table = table
        if rebuild:
            # Domains changed: every code-indexed artefact is stale.
            self._estimator = BatchedKernelPriorEstimator(
                kernel=self.kernel, max_cells=self.max_cells, incremental=True
            )
            self._measure = None
            for component in self._bt_components:
                component.measure = None
        if self._measure is None and self._points:
            self._measure = sensitive_distance_measure(table)
        prior_start = time.perf_counter()
        self._estimator.fit(table)
        prior_map = self._priors_by_bandwidth()
        codes = table.sensitive_codes()
        domain_size = table.sensitive_domain().size
        for component in self._bt_components:
            component.set_priors(
                prior_map[self._bandwidth(component.b).items()], codes, domain_size
            )
        self._requirement.prepare(table)
        prior_seconds = time.perf_counter() - prior_start

        partition_start = time.perf_counter()
        root = self._mondrian.partition_tree(table, prepare=False)
        self._tree = PartitionTree(root)
        groups = [leaf.indices for leaf in self._tree.leaves()]
        release = AnonymizedRelease(
            table, groups, method=f"stream[{self._requirement.describe()}]"
        )
        partition_seconds = time.perf_counter() - partition_start

        audit_start = time.perf_counter()
        report = None
        if self._points:
            engine = self._engine(table, prior_map)
            report = engine.audit(groups)
            self._audit_matrices = [
                prior_map[bandwidth.items()].matrix for bandwidth, _ in self._points
            ]
        delta = StreamDelta(
            appended_rows=appended,
            reused_groups=0,
            rechecked_leaves=len(groups),
            refined_leaves=0,
            rebuilt_regions=1,
            rebuild=rebuild,
            audit_recomputed_groups=[len(groups)] * len(self._points),
            timings={
                "prior_seconds": prior_seconds,
                "partition_seconds": partition_seconds,
                "audit_seconds": time.perf_counter() - audit_start,
                "total_seconds": time.perf_counter() - start,
            },
        )
        return self.store.add(
            StreamVersion(
                version=len(self.store), release=release, report=report, delta=delta
            )
        )

    def _engine(
        self, table: MicrodataTable, prior_map: dict[tuple, PriorBeliefs]
    ) -> SkylineAuditEngine:
        return SkylineAuditEngine(
            table,
            self._points,
            kernel=self.kernel,
            method=self.method,
            measure=self._measure,
            priors=[prior_map[bandwidth.items()] for bandwidth, _ in self._points],
        )

    # -- appending --------------------------------------------------------------------
    def _concatenate(
        self, batch: MicrodataTable | Sequence[Mapping[str, Any]]
    ) -> tuple[MicrodataTable, int, bool]:
        """The grown table, the number of appended rows, and a rebuild flag."""
        schema = self._table.schema
        if isinstance(batch, MicrodataTable):
            if tuple(batch.schema.names) != tuple(schema.names):
                raise StreamError("batch schema does not match the stream's schema")
            fresh = {name: batch.column(name) for name in schema.names}
        else:
            rows = list(batch)
            if not rows:
                raise StreamError("an append batch requires at least one row")
            fresh = {name: [row[name] for row in rows] for name in schema.names}
        appended = len(next(iter(fresh.values())))
        if appended == 0:
            raise StreamError("an append batch requires at least one row")
        try:
            return self._table.extend(fresh), appended, False
        except DataError:
            # A value outside the current domains: codes shift, full rebuild.
            columns = {
                name: np.concatenate(
                    [
                        self._table.column(name),
                        np.asarray(
                            fresh[name],
                            dtype=np.float64 if schema[name].is_numeric else object,
                        ),
                    ]
                )
                for name in schema.names
            }
            return MicrodataTable(schema, columns), appended, True

    def _component_dirty(
        self,
        component: PrivacyModel,
        table: MicrodataTable,
        n_previous: int,
        prior_map: dict[tuple, PriorBeliefs],
    ) -> np.ndarray:
        """Dirty-row mask of one requirement component (True = risk may change).

        (B,t) components are refreshed with the publisher's re-estimated
        priors; every other model declares its own invalidation semantics
        through :meth:`~repro.privacy.models.PrivacyModel.stream_update`
        (conservative all-dirty by default).
        """
        if isinstance(component, BTPrivacy):
            priors = prior_map[self._bandwidth(component.b).items()]
            return component.update_priors(
                priors, table.sensitive_codes(), table.sensitive_domain().size
            )
        return component.stream_update(table, n_previous)

    def append(
        self, batch: MicrodataTable | Sequence[Mapping[str, Any]]
    ) -> StreamVersion:
        """Fold one batch of appended rows into the stream and publish a version.

        ``batch`` is either a :class:`~repro.data.table.MicrodataTable` with
        the stream's schema or a sequence of ``{attribute: value}`` rows.
        """
        if not len(self.store):
            raise StreamError("publish() the seed release before appending batches")
        start = time.perf_counter()
        previous = self.store.latest()
        n_previous = self._table.n_rows
        table, appended, rebuild = self._concatenate(batch)
        table_seconds = time.perf_counter() - start
        if rebuild:
            version = self._publish_full(table, appended=appended, rebuild=True)
            version.delta.timings["table_seconds"] = table_seconds
            return version

        # 1. Fold the batch into the factored prior state; find dirty rows.
        prior_start = time.perf_counter()
        self._estimator.append_rows(table)
        prior_map = self._priors_by_bandwidth()
        appended_indices = np.arange(n_previous, table.n_rows, dtype=np.int64)
        dirty_model = np.ones(table.n_rows, dtype=bool)
        dirty_model[:n_previous] = False
        for component in self._requirement.components():
            dirty_model |= self._component_dirty(
                component, table, n_previous, prior_map
            )
        self._table = table
        prior_seconds = time.perf_counter() - prior_start

        # 2. Route appended rows to their leaves; re-check only dirty leaves.
        route_start = time.perf_counter()
        leaves = self._tree.leaves()
        routed = self._tree.route(table, appended_indices)
        members: dict[int, np.ndarray] = {}
        dirty_leaves = []
        for leaf in leaves:
            addition = routed.get(id(leaf))
            if addition is not None:
                members[id(leaf)] = np.sort(
                    np.concatenate([leaf.indices, addition])
                )
                dirty_leaves.append(leaf)
            else:
                members[id(leaf)] = leaf.indices
                if dirty_model[leaf.indices].any():
                    dirty_leaves.append(leaf)
        route_seconds = time.perf_counter() - route_start

        recheck_start = time.perf_counter()
        verdicts = self._requirement.is_satisfied_batch(
            [members[id(leaf)] for leaf in dirty_leaves]
        )
        recheck_seconds = time.perf_counter() - recheck_start

        # 3. Merge-up around violated leaves, re-split grown leaves, locally.
        repartition_start = time.perf_counter()
        failing = [leaf for leaf, ok in zip(dirty_leaves, verdicts) if not ok]
        rebuild_nodes = self._merge_up(failing, routed)
        under_rebuild = {
            id(leaf) for node in rebuild_nodes for leaf in node.leaves()
        }
        refine = []
        grown_in_place = []
        for leaf, ok in zip(dirty_leaves, verdicts):
            if not ok or id(leaf) not in routed or id(leaf) in under_rebuild:
                continue
            if members[id(leaf)].size >= self.refine_factor * leaf.searched_size:
                refine.append(leaf)
            else:
                grown_in_place.append(leaf)
        for leaf in grown_in_place:
            # Satisfied and still close to its searched size: the appended
            # rows simply join the group (deferred refinement).
            leaf.indices = members[id(leaf)]
        regions = [
            PartitionTree.current_members(node, routed) for node in rebuild_nodes
        ] + [members[id(leaf)] for leaf in refine]
        depths = [node.depth for node in rebuild_nodes] + [leaf.depth for leaf in refine]
        if regions:
            subtrees = self._mondrian.partition_forest(table, regions, depths=depths)
            for node, subtree in zip(list(rebuild_nodes) + list(refine), subtrees):
                self._tree.replace(node, subtree, reindex=False)
            self._tree.reindex()
        repartition_seconds = time.perf_counter() - repartition_start

        touched = (
            under_rebuild
            | {id(leaf) for leaf in refine}
            | {id(leaf) for leaf in grown_in_place}
        )
        reused = sum(1 for leaf in leaves if id(leaf) not in touched)
        groups = [leaf.indices for leaf in self._tree.leaves()]
        release = AnonymizedRelease(
            table, groups, method=f"stream[{self._requirement.describe()}]"
        )

        # 4. Dirty-group re-audit: clean byte-identical groups keep their risks.
        audit_start = time.perf_counter()
        report: SkylineAuditReport | None = None
        audit_recomputed: list[int] = []
        if self._points:
            priors_list = [
                prior_map[bandwidth.items()] for bandwidth, _ in self._points
            ]
            masks = []
            for previous_matrix, priors in zip(self._audit_matrices, priors_list):
                mask = np.ones(table.n_rows, dtype=bool)
                mask[:n_previous] = (
                    priors.matrix[:n_previous] != previous_matrix
                ).any(axis=1)
                masks.append(mask)
            engine = self._engine(table, prior_map)
            report = engine.audit_incremental(
                groups,
                previous_groups=previous.release.groups,
                previous_report=previous.report,
                dirty_rows=masks,
            )
            audit_recomputed = list(report.delta["recomputed_groups"])
            self._audit_matrices = [priors.matrix for priors in priors_list]
        audit_seconds = time.perf_counter() - audit_start

        delta = StreamDelta(
            appended_rows=appended,
            reused_groups=reused,
            rechecked_leaves=len(dirty_leaves),
            refined_leaves=len(refine),
            rebuilt_regions=len(rebuild_nodes),
            rebuild=False,
            audit_recomputed_groups=audit_recomputed,
            timings={
                "table_seconds": table_seconds,
                "prior_seconds": prior_seconds,
                "route_seconds": route_seconds,
                "recheck_seconds": recheck_seconds,
                "repartition_seconds": repartition_seconds,
                "audit_seconds": audit_seconds,
                "total_seconds": time.perf_counter() - start,
            },
        )
        return self.store.add(
            StreamVersion(
                version=len(self.store), release=release, report=report, delta=delta
            )
        )

    def _merge_up(self, failing: list, routed: dict[int, np.ndarray]) -> list:
        """Climb from each violated leaf to the nearest satisfiable region.

        Returns the (deduplicated, maximal) nodes whose regions must be
        re-partitioned.  Raises when even the whole table fails - exactly the
        condition under which a from-scratch run would refuse to release.
        """
        chosen: dict[int, Any] = {}
        for leaf in failing:
            node = leaf
            while True:
                link = self._tree.parent_of(node)
                if link is None:
                    region = PartitionTree.current_members(node, routed)
                    if not self._requirement.is_satisfied(region):
                        raise AnonymizationError(
                            "the whole table no longer satisfies the privacy "
                            "requirement after this batch; no release is possible"
                        )
                    chosen[id(node)] = node
                    break
                parent = link[0]
                region = PartitionTree.current_members(parent, routed)
                if self._requirement.is_satisfied(region):
                    chosen[id(parent)] = parent
                    break
                node = parent
        # Keep only maximal regions (drop nodes nested under another choice).
        maximal = []
        for node in chosen.values():
            ancestor = node
            nested = False
            while (link := self._tree.parent_of(ancestor)) is not None:
                ancestor = link[0]
                if id(ancestor) in chosen:
                    nested = True
                    break
            if not nested:
                maximal.append(node)
        return maximal
